//! Aceso: efficient fault tolerance for memory-disaggregated KV stores.
//!
//! This is the facade crate of the workspace, re-exporting the public API of
//! every subsystem. Reproduction of Hu et al., *"Aceso: Achieving Efficient
//! Fault Tolerance in Memory-Disaggregated Key-Value Stores"*, SOSP 2024.
//!
//! # Quickstart
//!
//! ```
//! use aceso::core::{AcesoConfig, AcesoStore};
//!
//! let store = AcesoStore::launch(AcesoConfig::small()).unwrap();
//! let mut client = store.client().unwrap();
//! client.insert(b"greeting", b"hello, disaggregated world").unwrap();
//! assert_eq!(
//!     client.search(b"greeting").unwrap().as_deref(),
//!     Some(&b"hello, disaggregated world"[..])
//! );
//! store.shutdown();
//! ```

#![forbid(unsafe_code)]

pub use aceso_blockalloc as blockalloc;
pub use aceso_codec as codec;
pub use aceso_core as core;
pub use aceso_erasure as erasure;
pub use aceso_fusee as fusee;
pub use aceso_index as index;
pub use aceso_obs as obs;
pub use aceso_rdma as rdma;
pub use aceso_workloads as workloads;
