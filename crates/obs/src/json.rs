//! A minimal deterministic JSON writer.
//!
//! The workspace has no serde (offline build); this hand-rolled writer is
//! enough for metric snapshots and bench trajectories, and guarantees the
//! byte-stability the `BENCH_*.json` files need: callers control key order,
//! and floats always format through the same fixed-precision rule.

/// Incrementally builds a JSON document with deterministic output.
///
/// Objects and arrays are opened/closed explicitly; the writer tracks
/// comma placement. Floats are rendered with [`JsonWriter::fmt_f64`]
/// (fixed 6-decimal precision, trailing zeros trimmed) so equal inputs
/// always produce identical bytes.
#[derive(Default)]
pub struct JsonWriter {
    out: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Deterministic float formatting: fixed 6-decimal, trailing zeros
    /// (and a bare trailing point) trimmed; non-finite values become 0.
    pub fn fmt_f64(v: f64) -> String {
        if !v.is_finite() {
            return "0".to_string();
        }
        let mut s = format!("{v:.6}");
        if s.contains('.') {
            while s.ends_with('0') {
                s.pop();
            }
            if s.ends_with('.') {
                s.pop();
            }
        }
        if s == "-0" {
            s = "0".to_string();
        }
        s
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\t' => self.out.push_str("\\t"),
                '\r' => self.out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Opens the root object or an array element object.
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    /// Opens an object under `key`.
    pub fn begin_object_key(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push('}');
        self
    }

    /// Opens an array under `key`.
    pub fn begin_array_key(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.out.push('[');
        self.need_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push(']');
        self
    }

    fn key(&mut self, key: &str) {
        self.pre_value(); // Emits the separating comma; the value follows.
        self.push_escaped(key);
        self.out.push(':');
    }

    /// Writes `key: "value"`.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.push_escaped(value);
        self
    }

    /// Writes `key: value` for an unsigned integer.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.out.push_str(&value.to_string());
        self
    }

    /// Writes `key: value` for a float via [`JsonWriter::fmt_f64`].
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        self.out.push_str(&Self::fmt_f64(value));
        self
    }

    /// Writes a bare float array element.
    pub fn f64_elem(&mut self, value: f64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&Self::fmt_f64(value));
        self
    }

    /// Finishes and returns the document (callers add a trailing newline
    /// when writing files).
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .str_field("name", "quick")
            .u64_field("ops", 42)
            .begin_object_key("lat")
            .f64_field("p50", 3.25)
            .f64_field("p99", 10.0)
            .end_object()
            .begin_array_key("xs");
        w.f64_elem(1.0).f64_elem(2.5);
        w.end_array().end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"quick","ops":42,"lat":{"p50":3.25,"p99":10},"xs":[1,2.5]}"#
        );
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(JsonWriter::fmt_f64(0.1 + 0.2), "0.3");
        assert_eq!(JsonWriter::fmt_f64(1.0), "1");
        assert_eq!(JsonWriter::fmt_f64(-0.0), "0");
        assert_eq!(JsonWriter::fmt_f64(f64::NAN), "0");
        assert_eq!(JsonWriter::fmt_f64(1234.567891), "1234.567891");
    }

    #[test]
    fn escapes_strings() {
        let mut w = JsonWriter::new();
        w.begin_object().str_field("k", "a\"b\\c\nd").end_object();
        assert_eq!(w.finish(), r#"{"k":"a\"b\\c\nd"}"#);
    }
}
