//! Log-bucketed latency histograms.
//!
//! 64 power-of-two octaves × 4 linear sub-buckets = 256 atomic buckets over
//! the full `u64` range (values are recorded in integer nanoseconds, exposed
//! in microseconds). This is the classic HDR-lite layout: constant-time
//! lock-free recording, ≤ 25 % relative quantile error, and a fixed-size
//! snapshot that serializes deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const SUB: u32 = 4; // Linear sub-buckets per octave (power of two).
const BUCKETS: usize = 64 * SUB as usize;

/// Bucket index for a nanosecond value. Values below `2*SUB` map linearly;
/// above that, the top `log2(SUB)+1` significant bits select the bucket.
fn bucket_of(ns: u64) -> usize {
    if ns < 2 * SUB as u64 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros(); // ≥ 3 here
    let shift = msb - SUB.trailing_zeros(); // low bits dropped
    let sub = ((ns >> shift) & (SUB as u64 - 1)) as u32;
    ((msb - SUB.trailing_zeros()) * SUB + sub + SUB) as usize
}

/// Lower bound (ns) of bucket `i` — the deterministic representative value
/// used for quantile estimation.
fn bucket_floor(i: usize) -> u64 {
    let i = i as u64;
    let sub = SUB as u64;
    if i < 2 * sub {
        return i;
    }
    let octave = (i - sub) / sub + sub.trailing_zeros() as u64;
    let within = (i - sub) % sub;
    (1u64 << octave) + (within << (octave - sub.trailing_zeros() as u64))
}

/// A shareable, lock-free latency histogram (values in microseconds).
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: [const { AtomicU64::new(0) }; BUCKETS],
                count: AtomicU64::new(0),
                sum_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Records a microsecond observation (negative values clamp to zero).
    pub fn record(&self, us: f64) {
        let ns = (us.max(0.0) * 1e3).round() as u64;
        let h = &self.inner;
        h.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum_ns.fetch_add(ns, Ordering::Relaxed);
        h.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Starts a wall-clock timer that records elapsed µs on drop.
    pub fn start_timer(&self) -> HistTimer {
        HistTimer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// A consistent-enough copy of the current state (individual bucket
    /// reads are relaxed; exact consistency is not needed for reporting).
    pub fn snapshot(&self) -> HistSnapshot {
        let h = &self.inner;
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(h.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistSnapshot {
            count: buckets.iter().sum(),
            sum_ns: h.sum_ns.load(Ordering::Relaxed),
            max_ns: h.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Span guard: records the elapsed wall time (µs) into its histogram when
/// dropped. Obtain one via [`Histogram::start_timer`] or
/// [`crate::Obs::span`].
pub struct HistTimer {
    hist: Histogram,
    start: Instant,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_secs_f64() * 1e6);
    }
}

/// An immutable copy of a histogram's state, in microseconds.
#[derive(Clone)]
pub struct HistSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations, in nanoseconds.
    pub sum_ns: u64,
    /// Largest observation, in nanoseconds.
    pub max_ns: u64,
    buckets: [u64; BUCKETS],
}

impl HistSnapshot {
    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e3
        }
    }

    /// Largest observation in microseconds.
    pub fn max_us(&self) -> f64 {
        self.max_ns as f64 / 1e3
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in microseconds, estimated as the
    /// lower bound of the bucket containing the rank — deterministic for a
    /// given set of observations.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i) as f64 / 1e3;
            }
        }
        self.max_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_consistent() {
        let mut last = 0usize;
        for ns in [0u64, 1, 5, 7, 8, 9, 100, 1000, 12345, 1 << 30, u64::MAX] {
            let b = bucket_of(ns);
            assert!(b >= last, "bucket order broke at {ns}");
            assert!(bucket_floor(b) <= ns, "floor({b}) > {ns}");
            last = b;
        }
        // Every reachable bucket's floor maps back to that bucket (the
        // top msb=63 octave ends at index 251; 252..256 are never hit).
        assert_eq!(bucket_of(u64::MAX), 251);
        for i in 0..=251 {
            assert_eq!(bucket_of(bucket_floor(i)), i, "roundtrip bucket {i}");
        }
    }

    #[test]
    fn quantiles_track_percentiles() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i as f64); // 1..=1000 µs
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.quantile_us(0.50);
        let p99 = s.quantile_us(0.99);
        let p999 = s.quantile_us(0.999);
        assert!((400.0..=500.0).contains(&p50), "p50={p50}");
        assert!((800.0..=990.0).contains(&p99), "p99={p99}");
        assert!(p999 >= p99, "p999={p999} < p99={p99}");
        assert!((s.mean_us() - 500.5).abs() < 1.0);
        assert_eq!(s.max_us(), 1000.0);
    }

    #[test]
    fn timer_records_once() {
        let h = Histogram::new();
        drop(h.start_timer());
        assert_eq!(h.snapshot().count, 1);
    }
}
