//! `aceso-obs`: a zero-overhead-when-off observability layer.
//!
//! The Aceso paper's headline claims are quantitative — ~1 s index-first
//! recovery, IOPS-bound client throughput, checkpoint and reclamation
//! overheads — so the reproduction needs first-class instrumentation to keep
//! those numbers honest PR over PR. This crate provides the three primitives
//! the rest of the workspace threads through its hot paths:
//!
//! 1. **A metrics [`Registry`]** of named [`Counter`]s, [`Gauge`]s and
//!    log-bucketed latency [`Histogram`]s (p50/p99/p999 from 256
//!    power-of-two buckets with 4 linear sub-buckets per octave).
//! 2. **Lightweight spans** ([`Histogram::start_timer`]) over client
//!    operations (SEARCH/INSERT/UPDATE/DELETE, CAS-retry loops, degraded
//!    search) and every tiered-recovery phase (Meta → Index → Block →
//!    background parity).
//! 3. **Stable snapshots**: [`Snapshot`] renders either a human text table
//!    or a deterministic JSON document (sorted keys, fixed float
//!    formatting) that benches persist as `BENCH_*.json` trajectories.
//!
//! # Zero overhead when off
//!
//! Instrumented code holds an [`Obs`] handle. When no recorder is
//! installed the handle is `Obs::off()`: every accessor returns `None`
//! before any clock is read or any name is hashed, so the instrumented
//! hot paths compile down to a single well-predicted branch — the same
//! shape as `aceso-rdma`'s trace-sink fast path. Call sites that run per
//! operation pre-resolve their handles once at client creation, so even
//! the enabled path never does a map lookup per op.
//!
//! # Example
//!
//! ```
//! use aceso_obs::{Obs, Registry};
//!
//! let registry = Registry::new();
//! let obs = Obs::on(registry.clone());
//!
//! // Pre-resolve handles once, outside the hot path.
//! let searches = obs.registry().unwrap().counter("client.search.count");
//! let lat = obs.registry().unwrap().histogram("client.search.us");
//!
//! // Hot path.
//! searches.inc();
//! lat.record(12.5);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("client.search.count"), Some(1));
//! assert!(snap.to_json().contains("\"client.search.count\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod json;
mod registry;
mod snapshot;

pub use hist::{HistSnapshot, HistTimer, Histogram};
pub use json::JsonWriter;
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::Snapshot;

use std::sync::Arc;

/// A cheap, cloneable handle to an optional recorder.
///
/// Instrumented components store one of these; the `Off` state is the
/// default and makes every probe a no-op before any work (clock reads,
/// name hashing) happens.
#[derive(Clone, Default)]
pub struct Obs {
    registry: Option<Arc<Registry>>,
}

impl Obs {
    /// A disabled handle: all probes are no-ops.
    pub fn off() -> Self {
        Obs { registry: None }
    }

    /// An enabled handle backed by `registry`.
    pub fn on(registry: Arc<Registry>) -> Self {
        Obs {
            registry: Some(registry),
        }
    }

    /// Whether a recorder is installed.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, if enabled. Call sites use this once at
    /// setup time to pre-resolve [`Counter`]/[`Histogram`] handles.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Starts a wall-clock span that records its duration (µs) into the
    /// histogram `name` when dropped. Returns `None` — without reading
    /// the clock — when disabled.
    pub fn span(&self, name: &str) -> Option<HistTimer> {
        self.registry
            .as_ref()
            .map(|r| r.histogram(name).start_timer())
    }

    /// Adds `n` to counter `name` if enabled. Prefer pre-resolved
    /// [`Counter`] handles on per-op paths; this convenience is for
    /// rare events (recovery phases, scrub results).
    pub fn add(&self, name: &str, n: u64) {
        if let Some(r) = &self.registry {
            r.counter(name).add(n);
        }
    }

    /// Sets gauge `name` to `v` if enabled.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(r) = &self.registry {
            r.gauge(name).set(v);
        }
    }

    /// Records `us` into histogram `name` if enabled.
    pub fn observe(&self, name: &str, us: f64) {
        if let Some(r) = &self.registry {
            r.histogram(name).record(us);
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.is_enabled());
        assert!(obs.span("x").is_none());
        obs.add("x", 1);
        obs.gauge_set("g", 1.0);
        obs.observe("h", 1.0);
    }

    #[test]
    fn on_handle_records() {
        let reg = Registry::new();
        let obs = Obs::on(reg.clone());
        obs.add("ops", 3);
        obs.gauge_set("depth", 2.5);
        obs.observe("lat.us", 40.0);
        drop(obs.span("span.us"));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ops"), Some(3));
        assert_eq!(snap.gauge("depth"), Some(2.5));
        assert_eq!(snap.histogram("lat.us").map(|h| h.count), Some(1));
        assert_eq!(snap.histogram("span.us").map(|h| h.count), Some(1));
    }
}
