//! Point-in-time metric snapshots: text table and stable JSON rendering.

use crate::hist::HistSnapshot;
use crate::json::JsonWriter;
use std::collections::BTreeMap;

/// A point-in-time copy of a [`crate::Registry`], taken by
/// [`crate::Registry::snapshot`]. Maps are `BTreeMap`s so both renderings
/// enumerate metrics in sorted-name order, deterministically.
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// The value of counter `name`, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of gauge `name`, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The state of histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.get(name)
    }

    /// A human-readable table: one section per metric kind, names sorted.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<42} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!(
                    "  {name:<42} {:>14}\n",
                    JsonWriter::fmt_f64(*v)
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "histograms (µs) {:>32} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "count", "mean", "p50", "p99", "p999", "max"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<46} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                    h.count,
                    h.mean_us(),
                    h.quantile_us(0.50),
                    h.quantile_us(0.99),
                    h.quantile_us(0.999),
                    h.max_us(),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// A deterministic JSON document:
    ///
    /// ```json
    /// {"counters":{...},"gauges":{...},
    ///  "histograms":{"name":{"count":n,"mean_us":..,"p50_us":..,
    ///                        "p99_us":..,"p999_us":..,"max_us":..}}}
    /// ```
    ///
    /// Keys are sorted and floats format through
    /// [`JsonWriter::fmt_f64`], so equal metric states always serialize
    /// to identical bytes.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.begin_object_key("counters");
        for (name, v) in &self.counters {
            w.u64_field(name, *v);
        }
        w.end_object();
        w.begin_object_key("gauges");
        for (name, v) in &self.gauges {
            w.f64_field(name, *v);
        }
        w.end_object();
        w.begin_object_key("histograms");
        for (name, h) in &self.histograms {
            w.begin_object_key(name)
                .u64_field("count", h.count)
                .f64_field("mean_us", h.mean_us())
                .f64_field("p50_us", h.quantile_us(0.50))
                .f64_field("p99_us", h.quantile_us(0.99))
                .f64_field("p999_us", h.quantile_us(0.999))
                .f64_field("max_us", h.max_us())
                .end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn renderings_are_deterministic() {
        let mk = || {
            let reg = Registry::new();
            reg.counter("ops").add(7);
            reg.gauge("util").set(0.5);
            reg.histogram("lat.us").record(12.0);
            reg.histogram("lat.us").record(30.0);
            reg.snapshot()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_table(), b.render_table());
        assert!(a.to_json().starts_with(r#"{"counters":{"ops":7}"#));
        assert!(a.render_table().contains("lat.us"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = Registry::new().snapshot();
        assert_eq!(snap.to_json(), r#"{"counters":{},"gauges":{},"histograms":{}}"#);
        assert_eq!(snap.render_table(), "(no metrics recorded)\n");
    }
}
