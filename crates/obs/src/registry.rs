//! The named-metric registry.

use crate::hist::Histogram;
use crate::snapshot::Snapshot;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shareable last-value-wins gauge (an `f64` stored as bits).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A registry of named counters, gauges and histograms.
///
/// Metric names are dotted paths (`client.search.us`,
/// `recovery.index.net_bytes`); see DESIGN.md for the workspace glossary.
/// Handle lookup takes a lock — resolve handles once at setup time and
/// clone them into hot paths (handles are lock-free afterwards).
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Registry::default())
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, created on first use (initially 0.0).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock();
        map.entry(name.to_string())
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// A point-in-time copy of every metric, ready for rendering.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);

        let g = reg.gauge("g");
        g.set(-1.25);
        assert_eq!(reg.gauge("g").get(), -1.25);

        reg.histogram("h").record(10.0);
        assert_eq!(reg.histogram("h").snapshot().count, 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").inc();
        let snap = reg.snapshot();
        let names: Vec<_> = snap.counters.keys().collect();
        assert_eq!(names, ["a", "b"]);
    }
}
