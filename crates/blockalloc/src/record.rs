//! The per-block metadata record (paper Figure 5).
//!
//! Every block of the Block Area — DATA, PARITY or DELTA — has one
//! fixed-size record in the Meta Area. The Meta Area is fault-tolerant by
//! plain replication to the neighbouring MN (§3.1), so records must be
//! serializable to raw bytes; this module defines that layout:
//!
//! ```text
//! offset  field
//! 0       Role (u8: 0 free, 1 data, 2 parity, 3 delta)
//! 1       Valid (u8)
//! 2       XOR ID (u8) — row of the cell within its column
//! 3       slot len (u8, 64 B units) — the block's KV size class
//! 4..8    CLI ID (u32) — owning client
//! 8..16   Index Version (u64), stamped when the block fills (§3.2.3)
//! 16..24  stripe array index (u64)
//! 24..26  XOR Map (u16) — parity blocks: bit k set ⇔ the k-th data
//!         position of this parity's equation has been encoded
//! 32..160 Delta Addr (16 × u64) — parity blocks: packed global address of
//!         the DELTA block covering the k-th data position (0 = none)
//! 256..   Free Bitmap (1024 B) — data blocks: obsolete-KV bits
//! ```
//!
//! Record size is 1280 B, bounding KV slots per block at 8192 — i.e. the
//! smallest supported size class is `block_size / 8192` (256 B at the
//! default 2 MB block, matching the paper's footnote that extremely small
//! KVs are out of scope).

use crate::bitmap::Bitmap;

/// Serialized record size in bytes.
pub const RECORD_BYTES: u64 = 1280;
/// Byte offset of the Free Bitmap inside a record.
const BITMAP_OFF: usize = 256;
/// Maximum KV slots per block (bitmap width).
pub const MAX_SLOTS: usize = 8192;
/// Maximum data positions per parity equation (X-Code `n − 2 ≤ 16`).
pub const MAX_POSITIONS: usize = 16;

/// The Role field (paper Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Role {
    /// Unallocated.
    #[default]
    Free = 0,
    /// Holds KV pairs.
    Data = 1,
    /// Holds erasure parity.
    Parity = 2,
    /// Temporary delta placeholder for an unfilled DATA block.
    Delta = 3,
}

impl Role {
    fn from_u8(v: u8) -> Role {
        match v {
            1 => Role::Data,
            2 => Role::Parity,
            3 => Role::Delta,
            _ => Role::Free,
        }
    }
}

/// Decoded form of one block's metadata record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockRecord {
    /// Block type.
    pub role: Role,
    /// Whether the block's bytes are currently trustworthy (may be false
    /// transiently during failures, §3.3.1).
    pub valid: bool,
    /// Row of the cell within its column (`XOR ID`).
    pub xor_id: u8,
    /// KV slot size in 64 B units (the block's size class); 0 when unset.
    pub slot_len64: u8,
    /// Owning client id (`CLI ID`).
    pub cli_id: u32,
    /// Index Version stamped when the block filled; 0 = unfilled (§3.2.3).
    pub index_version: u64,
    /// Stripe array this cell belongs to.
    pub stripe_array: u64,
    /// Parity blocks: bit `k` set ⇔ data position `k` encoded (`XOR Map`).
    pub xor_map: u16,
    /// Parity blocks: packed address of the DELTA block per data position
    /// (`Delta Addr`); 0 = none.
    pub delta_addr: [u64; MAX_POSITIONS],
    /// Data blocks: obsolete-KV bits (`Free Bitmap`).
    pub bitmap: Bitmap,
}

impl BlockRecord {
    /// A fresh FREE record (bitmap width 0 until a size class is assigned).
    pub fn free() -> Self {
        BlockRecord {
            role: Role::Free,
            valid: true,
            xor_id: 0,
            slot_len64: 0,
            cli_id: 0,
            index_version: 0,
            stripe_array: 0,
            xor_map: 0,
            delta_addr: [0; MAX_POSITIONS],
            bitmap: Bitmap::new(0),
        }
    }

    /// Number of KV slots a block of `block_size` has in this size class.
    pub fn slots(&self, block_size: u64) -> usize {
        if self.slot_len64 == 0 {
            0
        } else {
            (block_size / (self.slot_len64 as u64 * 64)) as usize
        }
    }

    /// Serializes into `RECORD_BYTES` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; RECORD_BYTES as usize];
        b[0] = self.role as u8;
        b[1] = self.valid as u8;
        b[2] = self.xor_id;
        b[3] = self.slot_len64;
        b[4..8].copy_from_slice(&self.cli_id.to_le_bytes());
        b[8..16].copy_from_slice(&self.index_version.to_le_bytes());
        b[16..24].copy_from_slice(&self.stripe_array.to_le_bytes());
        b[24..26].copy_from_slice(&self.xor_map.to_le_bytes());
        for (k, a) in self.delta_addr.iter().enumerate() {
            b[32 + k * 8..40 + k * 8].copy_from_slice(&a.to_le_bytes());
        }
        let bm = self.bitmap.as_bytes();
        assert!(bm.len() <= RECORD_BYTES as usize - BITMAP_OFF);
        b[BITMAP_OFF..BITMAP_OFF + bm.len()].copy_from_slice(bm);
        b
    }

    /// Deserializes from record bytes; `block_size` fixes the bitmap width.
    pub fn decode(bytes: &[u8], block_size: u64) -> Self {
        assert!(bytes.len() >= RECORD_BYTES as usize);
        let slot_len64 = bytes[3];
        let slots = if slot_len64 == 0 {
            0
        } else {
            (block_size / (slot_len64 as u64 * 64)) as usize
        };
        let mut delta_addr = [0u64; MAX_POSITIONS];
        for (k, a) in delta_addr.iter_mut().enumerate() {
            *a = u64::from_le_bytes(bytes[32 + k * 8..40 + k * 8].try_into().unwrap());
        }
        BlockRecord {
            role: Role::from_u8(bytes[0]),
            valid: bytes[1] != 0,
            xor_id: bytes[2],
            slot_len64,
            cli_id: u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            index_version: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            stripe_array: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
            xor_map: u16::from_le_bytes(bytes[24..26].try_into().unwrap()),
            delta_addr,
            bitmap: Bitmap::from_bytes(slots.min(MAX_SLOTS), &bytes[BITMAP_OFF..]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_data_record() {
        let mut r = BlockRecord::free();
        r.role = Role::Data;
        r.xor_id = 2;
        r.slot_len64 = 16; // 1024 B KVs.
        r.cli_id = 42;
        r.index_version = 7;
        r.stripe_array = 3;
        r.bitmap = Bitmap::new(64);
        r.bitmap.set(5, true);
        r.bitmap.set(63, true);
        let bytes = r.encode();
        assert_eq!(bytes.len() as u64, RECORD_BYTES);
        let d = BlockRecord::decode(&bytes, 64 * 1024);
        assert_eq!(d, r);
        assert_eq!(d.slots(64 * 1024), 64);
    }

    #[test]
    fn roundtrip_parity_record() {
        let mut r = BlockRecord::free();
        r.role = Role::Parity;
        r.xor_map = 0b101;
        r.delta_addr[0] = 0xABCD;
        r.delta_addr[2] = 0x1234;
        let d = BlockRecord::decode(&r.encode(), 2 << 20);
        assert_eq!(d.role, Role::Parity);
        assert_eq!(d.xor_map, 0b101);
        assert_eq!(d.delta_addr[0], 0xABCD);
        assert_eq!(d.delta_addr[1], 0);
        assert_eq!(d.delta_addr[2], 0x1234);
    }

    #[test]
    fn free_record_is_all_default() {
        let d = BlockRecord::decode(&BlockRecord::free().encode(), 2 << 20);
        assert_eq!(d.role, Role::Free);
        assert!(d.valid);
        assert_eq!(d.index_version, 0);
        assert_eq!(d.slots(2 << 20), 0);
    }

    #[test]
    fn bitmap_width_follows_size_class() {
        let mut r = BlockRecord::free();
        r.role = Role::Data;
        r.slot_len64 = 4; // 256 B KVs.
        r.bitmap = Bitmap::new((2 << 20) / 256);
        assert_eq!(r.bitmap.len(), 8192);
        let d = BlockRecord::decode(&r.encode(), 2 << 20);
        assert_eq!(d.bitmap.len(), 8192);
    }
}
