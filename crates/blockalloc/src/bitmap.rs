//! The Free Bitmap: one bit per KV slot of a DATA block (paper §3.3.3).
//!
//! Bit semantics follow the paper: 0 = live (or never written), 1 =
//! obsolete. Clients accumulate obsolete bits locally and flush them to the
//! MN server by RPC in bulk; the server folds them into the block's record
//! and uses the count to pick reclamation candidates.

/// A fixed-width bitmap backed by bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bitmap {
    bits: usize,
    bytes: Vec<u8>,
}

impl Bitmap {
    /// Creates an all-zero bitmap of `bits` bits.
    pub fn new(bits: usize) -> Self {
        Bitmap {
            bits,
            bytes: vec![0u8; bits.div_ceil(8)],
        }
    }

    /// Restores a bitmap from its byte serialization.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `bits` requires.
    pub fn from_bytes(bits: usize, bytes: &[u8]) -> Self {
        assert!(bytes.len() >= bits.div_ceil(8));
        Bitmap {
            bits,
            bytes: bytes[..bits.div_ceil(8)].to_vec(),
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// The backing bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Gets bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.bits, "bit {i} out of {}", self.bits);
        self.bytes[i / 8] & (1 << (i % 8)) != 0
    }

    /// Sets bit `i` to `v`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.bits, "bit {i} out of {}", self.bits);
        if v {
            self.bytes[i / 8] |= 1 << (i % 8);
        } else {
            self.bytes[i / 8] &= !(1 << (i % 8));
        }
    }

    /// Number of set (obsolete) bits.
    pub fn count_ones(&self) -> usize {
        self.bytes.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// ORs another bitmap of the same width into this one (bulk flush).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn or_with(&mut self, other: &Bitmap) {
        assert_eq!(self.bits, other.bits);
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a |= b;
        }
    }

    /// Clears every bit (block reuse resets the bitmap, §3.3.3).
    pub fn clear(&mut self) {
        self.bytes.fill(0);
    }

    /// Iterator over indices of set bits.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.bits).filter(move |&i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::new(20);
        assert_eq!(b.count_ones(), 0);
        b.set(0, true);
        b.set(7, true);
        b.set(8, true);
        b.set(19, true);
        assert_eq!(b.count_ones(), 4);
        assert!(b.get(19));
        assert!(!b.get(18));
        b.set(19, false);
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![0, 7, 8]);
    }

    #[test]
    fn or_accumulates() {
        let mut a = Bitmap::new(16);
        let mut b = Bitmap::new(16);
        a.set(1, true);
        b.set(2, true);
        b.set(1, true);
        a.or_with(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut a = Bitmap::new(13);
        a.set(12, true);
        a.set(3, true);
        let b = Bitmap::from_bytes(13, a.as_bytes());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        Bitmap::new(8).get(8);
    }

    proptest! {
        #[test]
        fn proptest_count_matches_sets(idx in proptest::collection::btree_set(0usize..200, 0..50)) {
            let mut b = Bitmap::new(200);
            for &i in &idx { b.set(i, true); }
            prop_assert_eq!(b.count_ones(), idx.len());
            prop_assert_eq!(b.ones().collect::<Vec<_>>(), idx.into_iter().collect::<Vec<_>>());
        }
    }
}
