//! The MN server's block allocator.
//!
//! Clients manage their own coarse-grained memory blocks, allocated from
//! MN servers by RPC when space runs out (§3.2.3). The server hands out
//! its column's DATA cells first; once fresh cells are exhausted it starts
//! reusing reclamation candidates (§3.3.3) — DATA blocks whose obsolete-KV
//! ratio crossed the threshold. DELTA blocks come from a separate pool and
//! are physically freed as soon as they are encoded into their PARITY
//! block.

use crate::layout::{BlockId, BlockLayout, CellKind};
use std::collections::VecDeque;

/// Outcome of a DATA block allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataAlloc {
    /// The allocated block.
    pub id: BlockId,
    /// `true` if this is a reclaimed (reused) block whose obsolete slots
    /// must be overwritten via the delta protocol.
    pub reused: bool,
}

/// Free lists for one MN's Block Area.
pub struct Allocator {
    layout: BlockLayout,
    free_data: VecDeque<BlockId>,
    free_delta: VecDeque<BlockId>,
    reuse: VecDeque<BlockId>,
}

impl Allocator {
    /// Builds the initial free lists from the layout: every DATA cell of
    /// every stripe array, and the whole DELTA pool.
    pub fn new(layout: BlockLayout) -> Self {
        let mut free_data = VecDeque::new();
        let mut free_delta = VecDeque::new();
        for id in 0..layout.blocks_per_node() as BlockId {
            match layout.kind_of(id) {
                CellKind::Data { .. } => free_data.push_back(id),
                CellKind::Delta { .. } => free_delta.push_back(id),
                CellKind::Parity { .. } => {}
            }
        }
        Allocator {
            layout,
            free_data,
            free_delta,
            reuse: VecDeque::new(),
        }
    }

    /// The layout this allocator serves.
    pub fn layout(&self) -> &BlockLayout {
        &self.layout
    }

    /// Rebuilds free lists from restored metadata records (MN recovery):
    /// a block is free iff its record's role byte says so.
    ///
    /// `role_of(id)` returns the record's role byte (0 free, 1 data,
    /// 2 parity, 3 delta).
    pub fn rebuild(layout: BlockLayout, role_of: impl Fn(BlockId) -> u8) -> Self {
        let mut free_data = VecDeque::new();
        let mut free_delta = VecDeque::new();
        for id in 0..layout.blocks_per_node() as BlockId {
            match layout.kind_of(id) {
                CellKind::Data { .. } if role_of(id) == 0 => free_data.push_back(id),
                CellKind::Delta { .. } if role_of(id) == 0 || role_of(id) == 1 => {
                    // Role 1 (data) is impossible for a pool block; treat
                    // anything but an in-use delta as free.
                    free_delta.push_back(id)
                }
                _ => {}
            }
        }
        Allocator {
            layout,
            free_data,
            free_delta,
            reuse: VecDeque::new(),
        }
    }

    /// Allocates a DATA block: fresh cells first, then reuse candidates.
    pub fn alloc_data(&mut self) -> Option<DataAlloc> {
        if let Some(id) = self.free_data.pop_front() {
            return Some(DataAlloc { id, reused: false });
        }
        self.reuse
            .pop_front()
            .map(|id| DataAlloc { id, reused: true })
    }

    /// Allocates a DELTA block.
    pub fn alloc_delta(&mut self) -> Option<BlockId> {
        self.free_delta.pop_front()
    }

    /// Returns a DELTA block to the pool (after encoding into parity).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a delta-pool block — freeing a stripe cell into
    /// the delta pool would corrupt the geometry.
    pub fn free_delta(&mut self, id: BlockId) {
        assert!(
            matches!(self.layout.kind_of(id), CellKind::Delta { .. }),
            "block {id} is not a delta block"
        );
        debug_assert!(!self.free_delta.contains(&id), "double free of delta {id}");
        self.free_delta.push_back(id);
    }

    /// Registers a DATA block as a reclamation candidate (obsolete ratio
    /// crossed the threshold). Idempotent.
    pub fn push_reuse_candidate(&mut self, id: BlockId) {
        assert!(
            matches!(self.layout.kind_of(id), CellKind::Data { .. }),
            "block {id} is not a data block"
        );
        if !self.reuse.contains(&id) {
            self.reuse.push_back(id);
        }
    }

    /// Fresh DATA blocks remaining.
    pub fn free_data_count(&self) -> usize {
        self.free_data.len()
    }

    /// DELTA blocks remaining.
    pub fn free_delta_count(&self) -> usize {
        self.free_delta.len()
    }

    /// Reuse candidates queued.
    pub fn reuse_count(&self) -> usize {
        self.reuse.len()
    }

    /// Fraction of this node's DATA cells still on the fresh free list —
    /// the "free space below threshold" input of the reclamation trigger.
    pub fn free_data_ratio(&self) -> f64 {
        let total = self.layout.data_blocks_per_node().max(1) as f64;
        self.free_data.len() as f64 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> BlockLayout {
        BlockLayout {
            n: 5,
            block_size: 1 << 16,
            num_arrays: 2,
            num_delta: 3,
            meta_base: 0,
            block_base: 1 << 20,
        }
    }

    #[test]
    fn initial_lists() {
        let a = Allocator::new(layout());
        assert_eq!(a.free_data_count(), 6); // 2 arrays × 3 data rows.
        assert_eq!(a.free_delta_count(), 3);
        assert_eq!(a.reuse_count(), 0);
        assert!((a.free_data_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alloc_exhaust_then_reuse() {
        let mut a = Allocator::new(layout());
        let mut fresh = Vec::new();
        while let Some(d) = a.alloc_data() {
            if d.reused {
                panic!("no reuse candidates yet");
            }
            fresh.push(d.id);
        }
        assert_eq!(fresh.len(), 6);
        // Register a candidate and allocate again.
        a.push_reuse_candidate(fresh[2]);
        a.push_reuse_candidate(fresh[2]); // Idempotent.
        assert_eq!(a.reuse_count(), 1);
        let d = a.alloc_data().unwrap();
        assert!(d.reused);
        assert_eq!(d.id, fresh[2]);
        assert!(a.alloc_data().is_none());
    }

    #[test]
    fn delta_pool_cycles() {
        let mut a = Allocator::new(layout());
        let d1 = a.alloc_delta().unwrap();
        let d2 = a.alloc_delta().unwrap();
        assert_ne!(d1, d2);
        a.free_delta(d1);
        let d3 = a.alloc_delta().unwrap();
        let d4 = a.alloc_delta().unwrap();
        assert_eq!(d4, d1); // Recycled.
        let _ = d3;
        assert!(a.alloc_delta().is_none());
    }

    #[test]
    #[should_panic]
    fn freeing_data_as_delta_panics() {
        let mut a = Allocator::new(layout());
        let d = a.alloc_data().unwrap();
        a.free_delta(d.id);
    }

    #[test]
    fn allocations_are_data_cells() {
        let l = layout();
        let mut a = Allocator::new(l);
        while let Some(d) = a.alloc_data() {
            assert!(matches!(l.kind_of(d.id), CellKind::Data { .. }));
        }
    }
}
