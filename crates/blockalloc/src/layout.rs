//! Geometry of one MN's Meta Area and Block Area.

use crate::record::RECORD_BYTES;

/// Index of a block within one MN's Block Area.
pub type BlockId = u32;

/// What a given block id is, geometrically.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellKind {
    /// Data cell: (stripe array, row).
    Data {
        /// Stripe array index.
        array: u64,
        /// Row within the column, `0..n−2`.
        row: usize,
    },
    /// Parity cell: (stripe array, parity row `n−2` or `n−1`).
    Parity {
        /// Stripe array index.
        array: u64,
        /// Parity row (`n−2` diagonal, `n−1` anti-diagonal).
        row: usize,
    },
    /// Block from the DELTA pool.
    Delta {
        /// Pool index.
        pool_index: u64,
    },
}

/// Geometry of one MN's Meta + Block areas. All MNs of a coding group share
/// one `BlockLayout` (their regions are laid out identically).
#[derive(Clone, Copy, Debug)]
pub struct BlockLayout {
    /// Coding group size = X-Code `n` (prime).
    pub n: usize,
    /// Block size in bytes.
    pub block_size: u64,
    /// Number of stripe arrays.
    pub num_arrays: u64,
    /// DELTA pool blocks per MN.
    pub num_delta: u64,
    /// Byte offset of the Meta Area within the region.
    pub meta_base: u64,
    /// Byte offset of the Block Area within the region.
    pub block_base: u64,
}

impl BlockLayout {
    /// Blocks per MN: `n` cells per array plus the delta pool.
    pub fn blocks_per_node(&self) -> u64 {
        self.num_arrays * self.n as u64 + self.num_delta
    }

    /// DATA cells per MN.
    pub fn data_blocks_per_node(&self) -> u64 {
        self.num_arrays * (self.n as u64 - 2)
    }

    /// Meta Area size in bytes.
    pub fn meta_size(&self) -> u64 {
        self.blocks_per_node() * RECORD_BYTES
    }

    /// Block Area size in bytes.
    pub fn block_area_size(&self) -> u64 {
        self.blocks_per_node() * self.block_size
    }

    /// Block id of stripe cell `(array, row)`; rows `0..n` (data + parity).
    pub fn cell_block_id(&self, array: u64, row: usize) -> BlockId {
        debug_assert!(array < self.num_arrays && row < self.n);
        (array * self.n as u64 + row as u64) as BlockId
    }

    /// Block id of DELTA pool entry `i`.
    pub fn delta_block_id(&self, i: u64) -> BlockId {
        debug_assert!(i < self.num_delta);
        (self.num_arrays * self.n as u64 + i) as BlockId
    }

    /// Classifies a block id.
    pub fn kind_of(&self, id: BlockId) -> CellKind {
        let id = id as u64;
        let stripe_cells = self.num_arrays * self.n as u64;
        if id < stripe_cells {
            let array = id / self.n as u64;
            let row = (id % self.n as u64) as usize;
            if row < self.n - 2 {
                CellKind::Data { array, row }
            } else {
                CellKind::Parity { array, row }
            }
        } else {
            CellKind::Delta {
                pool_index: id - stripe_cells,
            }
        }
    }

    /// Byte offset (in the region) of block `id`.
    pub fn block_offset(&self, id: BlockId) -> u64 {
        debug_assert!((id as u64) < self.blocks_per_node());
        self.block_base + id as u64 * self.block_size
    }

    /// Byte offset (in the region) of block `id`'s metadata record.
    pub fn record_offset(&self, id: BlockId) -> u64 {
        debug_assert!((id as u64) < self.blocks_per_node());
        self.meta_base + id as u64 * RECORD_BYTES
    }

    /// Which block (and byte within it) a Block Area offset falls into.
    pub fn locate(&self, offset: u64) -> Option<(BlockId, u64)> {
        if offset < self.block_base || offset >= self.block_base + self.block_area_size() {
            return None;
        }
        let rel = offset - self.block_base;
        Some(((rel / self.block_size) as BlockId, rel % self.block_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> BlockLayout {
        BlockLayout {
            n: 5,
            block_size: 1 << 16,
            num_arrays: 4,
            num_delta: 8,
            meta_base: 1 << 20,
            block_base: 2 << 20,
        }
    }

    #[test]
    fn counts() {
        let l = layout();
        assert_eq!(l.blocks_per_node(), 4 * 5 + 8);
        assert_eq!(l.data_blocks_per_node(), 12);
        assert_eq!(l.block_area_size(), 28 << 16);
        assert_eq!(l.meta_size(), 28 * RECORD_BYTES);
    }

    #[test]
    fn ids_roundtrip_kinds() {
        let l = layout();
        for a in 0..4u64 {
            for r in 0..5usize {
                let id = l.cell_block_id(a, r);
                match l.kind_of(id) {
                    CellKind::Data { array, row } => {
                        assert!(r < 3);
                        assert_eq!((array, row), (a, r));
                    }
                    CellKind::Parity { array, row } => {
                        assert!(r >= 3);
                        assert_eq!((array, row), (a, r));
                    }
                    CellKind::Delta { .. } => panic!("stripe cell classified as delta"),
                }
            }
        }
        for i in 0..8u64 {
            assert_eq!(
                l.kind_of(l.delta_block_id(i)),
                CellKind::Delta { pool_index: i }
            );
        }
    }

    #[test]
    fn offsets_disjoint_and_locatable() {
        let l = layout();
        let mut prev_end = l.block_base;
        for id in 0..l.blocks_per_node() as BlockId {
            let off = l.block_offset(id);
            assert_eq!(off, prev_end);
            prev_end = off + l.block_size;
            assert_eq!(l.locate(off), Some((id, 0)));
            assert_eq!(l.locate(off + 17), Some((id, 17)));
        }
        assert_eq!(l.locate(l.block_base - 1), None);
        assert_eq!(l.locate(prev_end), None);
    }

    #[test]
    fn record_offsets_within_meta() {
        let l = layout();
        let last = l.record_offset((l.blocks_per_node() - 1) as BlockId);
        assert!(last + RECORD_BYTES <= l.meta_base + l.meta_size());
        assert_eq!(l.record_offset(0), l.meta_base);
    }
}
