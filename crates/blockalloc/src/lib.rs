//! Block Area layout, stripe geometry and Meta Area records (paper §3.3.1).
//!
//! Each memory node's region is carved by `aceso-core` into an Index Area,
//! a Meta Area and a Block Area. This crate owns the latter two:
//!
//! * [`layout`] — the Block Area is divided into fixed-size memory blocks
//!   (2 MB by default). Blocks are organized as X-Code stripe arrays: array
//!   `a`, column `j` (= the `j`-th MN of the coding group), row `r` is one
//!   cell; rows `0..n−2` are DATA cells handed to clients, rows `n−2, n−1`
//!   are the column's PARITY cells. A separate per-MN pool provides DELTA
//!   blocks, placed on the MN holding the dependent PARITY block.
//! * [`record`] — the per-block metadata record (paper Figure 5): Role,
//!   Valid, XOR ID, Index Version, CLI ID, Free Bitmap, and for PARITY
//!   blocks the XOR Map plus per-position Delta Addr.
//! * [`bitmap`] — the Free Bitmap utilities used by delta-based space
//!   reclamation.
//! * [`allocator`] — the MN server's free lists of DATA and DELTA blocks,
//!   including reuse of reclamation candidates.

#![forbid(unsafe_code)]

pub mod allocator;
pub mod bitmap;
pub mod layout;
pub mod record;

pub use allocator::Allocator;
pub use bitmap::Bitmap;
pub use layout::{BlockId, BlockLayout, CellKind};
pub use record::{BlockRecord, Role, RECORD_BYTES};
