//! Exported happens-before conflict relation — the dependence oracle for
//! DPOR-style schedule pruning.
//!
//! [`detect::Detector`](crate::detect::Detector) derives ordering from
//! three per-node edge sources: sync words (CAS/FAA targets, acquired by
//! overlapping reads), the serial RPC handoff clock, and barriers. Two
//! trace segments whose accesses touch *none* of the same edge sources in
//! a conflicting way commute: executing them in either order reaches the
//! same state, so an exhaustive schedule explorer (`aceso-model`) only
//! needs one of the two interleavings.
//!
//! This module exports that dependence relation as a standalone predicate
//! over [`Access`] footprints. It is deliberately *conservative* (a
//! superset of the detector's real edges): a failed CAS is still treated
//! as a mutation, and byte ranges are widened to the fabric's 8-byte
//! atomicity grain — over-approximating dependence only costs pruning,
//! never soundness.

use crate::detect::Access;
use aceso_rdma::TraceOp;

/// Whether the access can change remote state (or, for a CAS, whether its
/// outcome depends on remote state that writes change).
fn is_mutation(op: &TraceOp) -> bool {
    matches!(
        op,
        TraceOp::Write | TraceOp::Cas { .. } | TraceOp::Faa | TraceOp::Rpc
    )
}

/// The 8-byte-grain word span `[lo, end)` of a memory access.
fn word_span(offset: u64, len: usize) -> (u64, u64) {
    let lo = offset & !7;
    let end = (offset + len as u64).next_multiple_of(8).max(lo + 8);
    (lo, end)
}

/// Whether two traced accesses are *dependent*: reordering them across
/// each other could change either one's outcome or any later read.
///
/// The rules mirror the detector's happens-before edge sources:
///
/// * accesses to different nodes never conflict (every edge is per-node);
/// * two RPCs to the same node conflict (the server handles them serially
///   — a mutex handoff whose order is observable);
/// * an RPC never conflicts with a one-sided verb (the RPC clock is
///   disjoint from the word clocks);
/// * memory accesses conflict when their 8-byte word spans overlap and at
///   least one is a mutation (Write / CAS / FAA); read–read pairs always
///   commute;
/// * a barrier conflicts with everything on principle (it joins all
///   clocks) — barriers are harness punctuation and should not appear
///   inside explored segments.
pub fn accesses_conflict(a: &Access, b: &Access) -> bool {
    if matches!(a.op, TraceOp::Barrier) || matches!(b.op, TraceOp::Barrier) {
        return true;
    }
    if a.node != b.node {
        return false;
    }
    let rpc_a = matches!(a.op, TraceOp::Rpc);
    let rpc_b = matches!(b.op, TraceOp::Rpc);
    if rpc_a || rpc_b {
        return rpc_a && rpc_b;
    }
    if !is_mutation(&a.op) && !is_mutation(&b.op) {
        return false;
    }
    let (alo, aend) = word_span(a.offset, a.len);
    let (blo, bend) = word_span(b.offset, b.len);
    alo < bend && blo < aend
}

/// Whether any access of footprint `a` conflicts with any access of
/// footprint `b` — the segment-level dependence used for sleep-set
/// pruning. Empty footprints conflict with nothing.
pub fn footprints_conflict(a: &[Access], b: &[Access]) -> bool {
    a.iter()
        .any(|x| b.iter().any(|y| accesses_conflict(x, y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_rdma::TraceOp;

    fn acc(op: TraceOp, node: u16, offset: u64, len: usize) -> Access {
        Access {
            client: 0,
            seq: 0,
            op,
            node,
            offset,
            len,
        }
    }

    #[test]
    fn same_word_cas_conflicts() {
        let a = acc(TraceOp::Cas { success: true }, 1, 0x100, 8);
        let b = acc(TraceOp::Cas { success: false }, 1, 0x100, 8);
        assert!(accesses_conflict(&a, &b));
        // Different words commute.
        let c = acc(TraceOp::Cas { success: true }, 1, 0x108, 8);
        assert!(!accesses_conflict(&a, &c));
        // Different nodes commute even on the same offset.
        let d = acc(TraceOp::Cas { success: true }, 2, 0x100, 8);
        assert!(!accesses_conflict(&a, &d));
    }

    #[test]
    fn ranged_write_conflicts_with_overlapping_read() {
        let w = acc(TraceOp::Write, 0, 0x200, 128);
        let r = acc(TraceOp::Read, 0, 0x240, 16);
        assert!(accesses_conflict(&w, &r));
        assert!(accesses_conflict(&r, &w));
        let far = acc(TraceOp::Read, 0, 0x400, 16);
        assert!(!accesses_conflict(&w, &far));
    }

    #[test]
    fn reads_commute() {
        let a = acc(TraceOp::Read, 0, 0x200, 64);
        let b = acc(TraceOp::Read, 0, 0x210, 64);
        assert!(!accesses_conflict(&a, &b));
    }

    #[test]
    fn sub_word_accesses_widen_to_the_atomicity_grain() {
        let w = acc(TraceOp::Write, 0, 0x204, 2);
        let r = acc(TraceOp::Read, 0, 0x200, 4);
        assert!(accesses_conflict(&w, &r));
    }

    #[test]
    fn rpcs_serialize_per_node_only() {
        let a = acc(TraceOp::Rpc, 3, 0, 0);
        let b = acc(TraceOp::Rpc, 3, 0, 0);
        let c = acc(TraceOp::Rpc, 4, 0, 0);
        let w = acc(TraceOp::Write, 3, 0, 64);
        assert!(accesses_conflict(&a, &b));
        assert!(!accesses_conflict(&a, &c));
        assert!(!accesses_conflict(&a, &w));
    }

    #[test]
    fn footprints_conflict_is_any_pair() {
        let fa = vec![
            acc(TraceOp::Read, 0, 0x100, 8),
            acc(TraceOp::Cas { success: true }, 0, 0x300, 8),
        ];
        let fb = vec![acc(TraceOp::Write, 0, 0x300, 8)];
        assert!(footprints_conflict(&fa, &fb));
        let fc = vec![acc(TraceOp::Write, 0, 0x500, 8)];
        assert!(!footprints_conflict(&fa, &fc));
        assert!(!footprints_conflict(&[], &fb));
    }
}
