//! The happens-before race detector over DM verb traces.
//!
//! A [`Detector`] is a [`TraceSink`]: install it on a cluster and every
//! memory-effective verb flows through [`Detector::record`]. It maintains
//! one vector clock per trace client (one `DmClient` = one logical thread)
//! and derives happens-before edges from the synchronization the Aceso
//! protocols actually use on the fabric:
//!
//! * **CAS acquire/release.** Every CAS'd word is a sync variable. A
//!   successful CAS both acquires (joins the word's clock) and releases
//!   (stores the client's clock into the word) — it is Algorithm 1's commit
//!   point and the index epoch lock. A failed CAS still acquires: the
//!   client observed the word.
//! * **FAA ordering.** FAA always lands, so it is always acquire+release
//!   (Index Version bumps, counters).
//! * **Atomic loads.** Regions serve reads with per-word `Acquire` loads,
//!   so any READ overlapping a sync word acquires that word's clock — this
//!   is exactly how clients observe a committed slot before dereferencing
//!   it.
//! * **RPC request/reply.** Each node's server thread handles RPCs
//!   serially; an RPC verb acquires+releases a per-node sync variable
//!   (orders block hand-offs: the old owner's `DataFilled` precedes the
//!   next owner's `AllocData`).
//! * **Recovery barriers.** A [`TraceOp::Barrier`] event joins every known
//!   client clock into a global barrier clock and back — the harness emits
//!   one at phase boundaries (crash → recovery → verification), where the
//!   real system guarantees quiescence.
//!
//! **Word atomicity.** The fabric (like the paper's RNICs) serves 8-byte
//! aligned accesses atomically, so *word accesses* — aligned, ≤ 8 bytes —
//! can never tear and are exempt from conflict checks (`write_meta`,
//! `invalidate_kv` patches). Only *ranged* accesses (anything wider) can
//! produce a torn read or a lost update.
//!
//! **Publication.** A write is *published* once its client performs any
//! release (successful CAS, FAA, RPC) after it — e.g. a KV write followed
//! by the commit CAS. A ranged READ is racy only against an *unpublished*
//! write it is unordered with: reading a block that a concurrent writer has
//! touched but not yet committed is precisely a torn read, while re-reading
//! a neighbour's committed-but-unordered slot is the protocol's benign
//! over-read discipline (the version/checksum validation handles staleness).
//! WRITE/WRITE conflicts are flagged regardless of publication — two
//! unordered ranged writes to the same words are a lost update whether or
//! not they commit.

use crate::vc::VectorClock;
use aceso_rdma::{TraceEvent, TraceOp, TraceSink};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Cap on recorded races: one bad edge floods every subsequent access, and
/// the first few pairs carry all the signal.
const MAX_RACES: usize = 64;

/// Annotates `(node, offset)` with a human-readable location (e.g. "slot
/// Atomic word, group 3" or "block 17"). Installed by the harness, which
/// knows the memory map.
pub type Annotator = Box<dyn Fn(u16, u64) -> Option<String> + Send + Sync>;

/// One side of a race: a traced access.
#[derive(Clone, Copy, Debug)]
pub struct Access {
    /// Trace client id.
    pub client: u32,
    /// Per-client sequence number of the event.
    pub seq: u64,
    /// Verb class and outcome.
    pub op: TraceOp,
    /// Target node.
    pub node: u16,
    /// Byte offset of the access.
    pub offset: u64,
    /// Access length in bytes.
    pub len: usize,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{}#{} {} n{}@[{:#x}, +{})",
            self.client, self.seq, self.op, self.node, self.offset, self.len
        )
    }
}

/// The flavour of an unordered conflicting pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Two unordered ranged writes overlap: a lost update.
    WriteWrite,
    /// A ranged read overlaps an unordered, unpublished write: a torn read.
    WriteRead,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "WRITE/WRITE"),
            RaceKind::WriteRead => write!(f, "WRITE/READ"),
        }
    }
}

/// An unordered conflicting access pair reported by the detector.
#[derive(Clone, Debug)]
pub struct Race {
    /// Conflict flavour.
    pub kind: RaceKind,
    /// The earlier (shadowed) write.
    pub first: Access,
    /// The later access that observed the conflict.
    pub second: Access,
    /// Optional memory-map annotation of the overlap.
    pub note: Option<String>,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unordered {}: {} vs {}", self.kind, self.first, self.second)?;
        if let Some(n) = &self.note {
            write!(f, " ({n})")?;
        }
        Ok(())
    }
}

struct ClientState {
    vc: VectorClock,
    /// This client's clock at its last release (successful CAS, FAA, RPC).
    /// Writes with a larger clock are unpublished.
    published: u64,
}

#[derive(Clone, Copy)]
struct WriteRec {
    client: u32,
    /// Writer's own clock component when the write landed.
    clock: u64,
    seq: u64,
    offset: u64,
    len: usize,
}

#[derive(Default)]
struct State {
    clients: HashMap<u32, ClientState>,
    /// Per-node, per-8B-word sync-variable clocks (every CAS/FAA target).
    sync: HashMap<u16, BTreeMap<u64, VectorClock>>,
    /// Per-node RPC serialization clock.
    rpc_sync: HashMap<u16, VectorClock>,
    /// The global barrier clock.
    barrier: VectorClock,
    /// Per-node, per-8B-word shadow of the last *ranged* write covering it.
    shadow: HashMap<u16, BTreeMap<u64, WriteRec>>,
    races: Vec<Race>,
    /// (writer client, writer seq, reader client) pairs already reported.
    reported: HashSet<(u32, u64, u32)>,
    /// Protocol violations that are not races (misaligned atomics).
    violations: Vec<String>,
    events: u64,
}

/// The happens-before checker; see the module docs for the model.
pub struct Detector {
    state: Mutex<State>,
    annotate: Option<Annotator>,
}

impl Default for Detector {
    fn default() -> Self {
        Self::new()
    }
}

/// Whether an access is served atomically by the fabric (8-byte aligned,
/// at most one word) and therefore cannot tear.
fn word_atomic(offset: u64, len: usize) -> bool {
    offset.is_multiple_of(8) && len <= 8
}

impl Detector {
    /// A detector with no memory-map annotations.
    pub fn new() -> Self {
        Detector {
            state: Mutex::new(State::default()),
            annotate: None,
        }
    }

    /// A detector whose race reports carry `annotate(node, offset)` labels.
    pub fn with_annotator(annotate: Annotator) -> Self {
        Detector {
            state: Mutex::new(State::default()),
            annotate: Some(annotate),
        }
    }

    /// Races found so far, in detection order.
    pub fn races(&self) -> Vec<Race> {
        self.state.lock().races.clone()
    }

    /// Non-race protocol violations (misaligned atomics in the trace).
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().violations.clone()
    }

    /// Whether no race and no violation was detected.
    pub fn is_clean(&self) -> bool {
        let st = self.state.lock();
        st.races.is_empty() && st.violations.is_empty()
    }

    /// Number of trace events processed.
    pub fn events(&self) -> u64 {
        self.state.lock().events
    }

    fn note(&self, node: u16, offset: u64) -> Option<String> {
        self.annotate.as_ref().and_then(|f| f(node, offset))
    }

    fn handle(&self, st: &mut State, ev: TraceEvent) {
        st.events += 1;

        if matches!(ev.op, TraceOp::Barrier) {
            // Quiescent phase boundary: everything before orders before
            // everything after. Join all clients into the barrier clock and
            // the barrier clock back into all clients; clients created later
            // start from the barrier clock.
            let mut barrier = std::mem::take(&mut st.barrier);
            for c in st.clients.values() {
                barrier.join(&c.vc);
            }
            for c in st.clients.values_mut() {
                c.vc.join(&barrier);
            }
            st.barrier = barrier;
            return;
        }

        let node = ev.node.0;
        // Tick the issuing client's clock (creating it at the barrier clock
        // if this is its first event).
        let barrier = &st.barrier;
        let cl = st.clients.entry(ev.client).or_insert_with(|| ClientState {
            vc: barrier.clone(),
            published: 0,
        });
        let clock = cl.vc.bump(ev.client);

        match ev.op {
            TraceOp::Cas { .. } | TraceOp::Faa => {
                if !ev.offset.is_multiple_of(8) {
                    if st.violations.len() < MAX_RACES {
                        st.violations.push(format!(
                            "misaligned atomic in trace: c{}#{} {} n{}@{:#x}",
                            ev.client, ev.seq, ev.op, node, ev.offset
                        ));
                    }
                    return;
                }
                let landed = !matches!(ev.op, TraceOp::Cas { success: false });
                let wvc = st
                    .sync
                    .entry(node)
                    .or_default()
                    .entry(ev.offset)
                    .or_default();
                // Acquire: the atomic observed the word's last release.
                cl.vc.join(wvc);
                if landed {
                    // Release: publish this client's history into the word.
                    *wvc = cl.vc.clone();
                    cl.published = clock;
                }
            }
            TraceOp::Rpc => {
                // The server handles RPCs serially: acquire+release on the
                // node's RPC clock, like a mutex handoff.
                let rvc = st.rpc_sync.entry(node).or_default();
                cl.vc.join(rvc);
                *rvc = cl.vc.clone();
                cl.published = clock;
            }
            TraceOp::Read => {
                let lo = ev.offset & !7;
                let end = ev.offset + ev.len as u64;
                // Any read acquires every sync word it overlaps (per-word
                // Acquire loads on the fabric).
                if let Some(words) = st.sync.get(&node) {
                    for (_, wvc) in words.range(lo..end) {
                        cl.vc.join(wvc);
                    }
                }
                if word_atomic(ev.offset, ev.len) {
                    return;
                }
                // Ranged read: racy against overlapping unordered,
                // unpublished writes.
                let mut found: Vec<WriteRec> = Vec::new();
                if let Some(shadow) = st.shadow.get(&node) {
                    for (_, w) in shadow.range(lo..end) {
                        if w.client != ev.client && cl.vc.get(w.client) < w.clock {
                            found.push(*w);
                        }
                    }
                }
                for w in found {
                    let unpublished = st
                        .clients
                        .get(&w.client)
                        .map(|c| c.published < w.clock)
                        .unwrap_or(true);
                    if unpublished {
                        self.report(st, RaceKind::WriteRead, &w, ev);
                    }
                }
            }
            TraceOp::Write => {
                if word_atomic(ev.offset, ev.len) {
                    // Aligned single-word writes cannot tear; they are the
                    // protocol's in-place patches. They neither race nor
                    // release (a plain write is NOT a publication — that is
                    // what makes a skipped commit CAS detectable).
                    return;
                }
                let lo = ev.offset & !7;
                let end = ev.offset + ev.len as u64;
                let mut found: Vec<WriteRec> = Vec::new();
                if let Some(shadow) = st.shadow.get(&node) {
                    for (_, w) in shadow.range(lo..end) {
                        if w.client != ev.client && cl.vc.get(w.client) < w.clock {
                            found.push(*w);
                        }
                    }
                }
                for w in found {
                    // Lost update regardless of publication.
                    self.report(st, RaceKind::WriteWrite, &w, ev);
                }
                let rec = WriteRec {
                    client: ev.client,
                    clock,
                    seq: ev.seq,
                    offset: ev.offset,
                    len: ev.len,
                };
                let shadow = st.shadow.entry(node).or_default();
                let mut word = lo;
                while word < end {
                    shadow.insert(word, rec);
                    word += 8;
                }
            }
            TraceOp::Barrier => unreachable!("handled above"),
        }
    }

    fn report(&self, st: &mut State, kind: RaceKind, w: &WriteRec, ev: TraceEvent) {
        if !st.reported.insert((w.client, w.seq, ev.client)) || st.races.len() >= MAX_RACES {
            return;
        }
        let note = self.note(ev.node.0, w.offset.max(ev.offset));
        st.races.push(Race {
            kind,
            first: Access {
                client: w.client,
                seq: w.seq,
                op: TraceOp::Write,
                node: ev.node.0,
                offset: w.offset,
                len: w.len,
            },
            second: Access {
                client: ev.client,
                seq: ev.seq,
                op: ev.op,
                node: ev.node.0,
                offset: ev.offset,
                len: ev.len,
            },
            note,
        });
    }
}

impl TraceSink for Detector {
    fn record(&self, ev: TraceEvent) {
        let mut st = self.state.lock();
        self.handle(&mut st, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_rdma::NodeId;

    fn ev(client: u32, seq: u64, op: TraceOp, offset: u64, len: usize) -> TraceEvent {
        TraceEvent {
            client,
            seq,
            node: NodeId(0),
            op,
            offset,
            len,
        }
    }

    fn barrier() -> TraceEvent {
        TraceEvent {
            client: TraceEvent::BARRIER_CLIENT,
            seq: 0,
            node: NodeId(0),
            op: TraceOp::Barrier,
            offset: 0,
            len: 0,
        }
    }

    #[test]
    fn published_write_then_acquired_read_is_clean() {
        let d = Detector::new();
        // Writer: ranged write, then commit CAS (release).
        d.record(ev(0, 0, TraceOp::Write, 256, 64));
        d.record(ev(0, 1, TraceOp::Cas { success: true }, 0, 8));
        // Reader: observes the word (acquire), then reads the range.
        d.record(ev(1, 0, TraceOp::Read, 0, 8));
        d.record(ev(1, 1, TraceOp::Read, 256, 64));
        assert!(d.is_clean(), "{:?}", d.races());
    }

    #[test]
    fn unpublished_write_read_is_a_torn_read() {
        let d = Detector::new();
        d.record(ev(0, 0, TraceOp::Write, 256, 64));
        d.record(ev(1, 0, TraceOp::Read, 256, 64));
        let races = d.races();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::WriteRead);
        assert_eq!(races[0].first.client, 0);
        assert_eq!(races[0].second.client, 1);
        assert_eq!(races[0].first.offset, 256);
    }

    #[test]
    fn published_but_unordered_read_is_benign_overread() {
        let d = Detector::new();
        // Writer commits (publishes) but the reader never acquires the
        // commit word: the protocol's neighbour-slot over-read.
        d.record(ev(0, 0, TraceOp::Write, 256, 64));
        d.record(ev(0, 1, TraceOp::Cas { success: true }, 0, 8));
        d.record(ev(1, 0, TraceOp::Read, 256, 64));
        assert!(d.is_clean(), "{:?}", d.races());
    }

    #[test]
    fn unordered_writes_are_a_lost_update_even_if_published() {
        let d = Detector::new();
        d.record(ev(0, 0, TraceOp::Write, 256, 64));
        d.record(ev(0, 1, TraceOp::Cas { success: true }, 0, 8));
        // Second writer never touches the sync word.
        d.record(ev(1, 0, TraceOp::Write, 288, 64));
        let races = d.races();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn lock_handoff_orders_writers() {
        let d = Detector::new();
        let lock = 8;
        // A: lock, write, unlock.
        d.record(ev(0, 0, TraceOp::Cas { success: true }, lock, 8));
        d.record(ev(0, 1, TraceOp::Write, 256, 64));
        d.record(ev(0, 2, TraceOp::Cas { success: true }, lock, 8));
        // B: lock (acquires A's history), write, unlock.
        d.record(ev(1, 0, TraceOp::Cas { success: true }, lock, 8));
        d.record(ev(1, 1, TraceOp::Write, 256, 64));
        d.record(ev(1, 2, TraceOp::Cas { success: true }, lock, 8));
        assert!(d.is_clean(), "{:?}", d.races());
    }

    #[test]
    fn failed_cas_still_acquires() {
        let d = Detector::new();
        d.record(ev(0, 0, TraceOp::Write, 256, 64));
        d.record(ev(0, 1, TraceOp::Cas { success: true }, 0, 8));
        // B's CAS loses, but losing still observes the word.
        d.record(ev(1, 0, TraceOp::Cas { success: false }, 0, 8));
        d.record(ev(1, 1, TraceOp::Read, 256, 64));
        assert!(d.is_clean(), "{:?}", d.races());
    }

    #[test]
    fn word_atomic_accesses_never_race() {
        let d = Detector::new();
        // 8-byte aligned single-word patches from two clients: the fabric
        // serves them atomically.
        d.record(ev(0, 0, TraceOp::Write, 256, 8));
        d.record(ev(1, 0, TraceOp::Write, 256, 8));
        d.record(ev(1, 1, TraceOp::Read, 256, 8));
        assert!(d.is_clean(), "{:?}", d.races());
    }

    #[test]
    fn faa_orders_like_cas() {
        let d = Detector::new();
        d.record(ev(0, 0, TraceOp::Write, 256, 64));
        d.record(ev(0, 1, TraceOp::Faa, 16, 8));
        d.record(ev(1, 0, TraceOp::Faa, 16, 8));
        d.record(ev(1, 1, TraceOp::Read, 256, 64));
        assert!(d.is_clean(), "{:?}", d.races());
    }

    #[test]
    fn rpc_serialization_orders_handoffs() {
        let d = Detector::new();
        // Old owner fills a block, then tells the server (DataFilled).
        d.record(ev(0, 0, TraceOp::Write, 4096, 128));
        d.record(ev(0, 1, TraceOp::Rpc, 0, 64));
        // New owner allocates (AllocData) and reuses the block.
        d.record(ev(1, 0, TraceOp::Rpc, 0, 64));
        d.record(ev(1, 1, TraceOp::Write, 4096, 128));
        assert!(d.is_clean(), "{:?}", d.races());
    }

    #[test]
    fn barrier_orders_crashed_writers() {
        let d = Detector::new();
        // Crashed client left an uncommitted ranged write.
        d.record(ev(0, 0, TraceOp::Write, 4096, 128));
        d.record(barrier());
        // Recovery reads the block wholesale — ordered by the barrier.
        d.record(ev(1, 0, TraceOp::Read, 4096, 128));
        assert!(d.is_clean(), "{:?}", d.races());
    }

    #[test]
    fn client_born_after_barrier_inherits_it() {
        let d = Detector::new();
        d.record(ev(0, 0, TraceOp::Write, 4096, 128));
        d.record(barrier());
        // Client 5 has never been seen before the barrier.
        d.record(ev(5, 0, TraceOp::Read, 4096, 128));
        assert!(d.is_clean(), "{:?}", d.races());
    }

    #[test]
    fn read_overlapping_sync_word_acquires_without_exact_address() {
        let d = Detector::new();
        d.record(ev(0, 0, TraceOp::Write, 256, 64));
        d.record(ev(0, 1, TraceOp::Cas { success: true }, 264, 8));
        // Reader scans a 128-byte range that *contains* the sync word
        // (bucket scan) rather than loading it exactly.
        d.record(ev(1, 0, TraceOp::Read, 192, 128));
        d.record(ev(1, 1, TraceOp::Read, 256, 64));
        assert!(d.is_clean(), "{:?}", d.races());
    }

    #[test]
    fn commit_after_write_publishes_but_commit_before_write_does_not() {
        // Write → CAS: clean (tested above). CAS → write: the write is
        // after the last release, so a subsequent acquired read still races.
        let d = Detector::new();
        d.record(ev(0, 0, TraceOp::Cas { success: true }, 0, 8));
        d.record(ev(0, 1, TraceOp::Write, 256, 64));
        d.record(ev(1, 0, TraceOp::Read, 0, 8));
        d.record(ev(1, 1, TraceOp::Read, 256, 64));
        let races = d.races();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn misaligned_atomic_is_a_violation() {
        let d = Detector::new();
        d.record(ev(0, 0, TraceOp::Faa, 12, 8));
        assert!(!d.is_clean());
        assert_eq!(d.races().len(), 0);
        assert_eq!(d.violations().len(), 1);
    }

    #[test]
    fn race_reports_carry_verb_pair_and_addresses() {
        let d = Detector::with_annotator(Box::new(|n, off| {
            Some(format!("node {n} block area word {off:#x}"))
        }));
        d.record(ev(0, 0, TraceOp::Write, 4096, 64));
        d.record(ev(1, 0, TraceOp::Read, 4096, 256));
        let races = d.races();
        assert_eq!(races.len(), 1);
        let s = races[0].to_string();
        assert!(s.contains("WRITE/READ"), "{s}");
        assert!(s.contains("WRITE"), "{s}");
        assert!(s.contains("READ"), "{s}");
        assert!(s.contains("0x1000"), "{s}");
        assert!(s.contains("block area word"), "{s}");
    }

    #[test]
    fn duplicate_pairs_are_reported_once() {
        let d = Detector::new();
        d.record(ev(0, 0, TraceOp::Write, 4096, 64));
        // Two reads of the same racy write by the same client: one report.
        d.record(ev(1, 0, TraceOp::Read, 4096, 64));
        d.record(ev(1, 1, TraceOp::Read, 4096, 64));
        assert_eq!(d.races().len(), 1);
    }
}
