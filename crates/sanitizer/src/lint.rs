//! Static protocol lints: invariants the type system can't enforce.
//!
//! Each lint returns a list of violations (empty = clean). They come in two
//! flavours:
//!
//! * **Layout lints** probe the real layout types (`index::layout`,
//!   `blockalloc::layout`, `fusee::layout`, `core::config::memory_map`)
//!   and check alignment and mutual consistency: every word a protocol
//!   CASes or FAAs is 8-byte aligned, the three index geometries agree,
//!   and the per-MN memory map has no overlapping areas.
//! * **Source lints** walk the workspace source (resolved relative to this
//!   crate's manifest) for invariants that live in the text: every
//!   `CrashPoint` variant is wired into `maybe_crash` call sites,
//!   hardcoded layout literals match the constants they mirror, every
//!   `ElasticStep` migrator boundary has kill coverage in the
//!   `chaos elastic` axis, and every `.settle().await` suspension point
//!   in the async client is inventoried in the model checker's step
//!   table (so `chaos explore` never silently under-explores).
//!
//! The `#[test]`s at the bottom make `cargo test` the lint driver; `chaos
//! analyze` runs [`run_all`] too so the CI line exercises them.

use aceso_blockalloc::{BlockId, BlockLayout, CellKind};
use aceso_core::client::CrashPoint;
use aceso_core::config::AcesoConfig;
use aceso_fusee::layout::FuseeLayout;
use aceso_index::layout::{
    BUCKET_BYTES, BUCKET_SLOTS, COMBINED_BYTES, COMBINED_SLOTS, GROUP_BUCKETS, GROUP_BYTES,
};
use aceso_index::{IndexLayout, IndexWord, SLOT_BYTES};
use aceso_rdma::{GlobalAddr, NodeId};
use std::path::{Path, PathBuf};

/// Workspace root, resolved from this crate's manifest directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn read_source(violations: &mut Vec<String>, rel: &str) -> Option<String> {
    let path = workspace_root().join(rel);
    match std::fs::read_to_string(&path) {
        Ok(s) => Some(s),
        Err(e) => {
            violations.push(format!("source lint cannot read {}: {e}", path.display()));
            None
        }
    }
}

/// Index layout: constants mutually consistent, every atomic word aligned.
pub fn lint_index_layout() -> Vec<String> {
    let mut v = Vec::new();
    if BUCKET_BYTES != BUCKET_SLOTS * SLOT_BYTES {
        v.push(format!(
            "index BUCKET_BYTES {BUCKET_BYTES} != BUCKET_SLOTS*SLOT_BYTES"
        ));
    }
    if GROUP_BYTES != GROUP_BUCKETS * BUCKET_BYTES {
        v.push(format!(
            "index GROUP_BYTES {GROUP_BYTES} != GROUP_BUCKETS*BUCKET_BYTES"
        ));
    }
    if COMBINED_BYTES != 2 * BUCKET_BYTES || COMBINED_SLOTS != 2 * BUCKET_SLOTS {
        v.push("index combined-bucket geometry is not two buckets".into());
    }
    // Every slot Atomic and Meta word of a sample layout must be 8-aligned
    // (they are CAS targets) and classified consistently.
    let l = IndexLayout::new(128, 7);
    for g in 0..7 {
        for c in 0..2 {
            for s in 0..COMBINED_SLOTS {
                let atomic = l.slot_offset(g, c, s);
                let meta = atomic + 8;
                for (name, off) in [("Atomic", atomic), ("Meta", meta)] {
                    if off % 8 != 0 {
                        v.push(format!("slot {name} word {off:#x} (g{g} c{c} s{s}) unaligned"));
                    }
                }
                if !matches!(l.classify_word(atomic), IndexWord::Atomic { .. }) {
                    v.push(format!("classify_word({atomic:#x}) is not Atomic"));
                }
                if !matches!(l.classify_word(meta), IndexWord::Meta { .. }) {
                    v.push(format!("classify_word({meta:#x}) is not Meta"));
                }
            }
        }
    }
    if !l.index_version_offset().is_multiple_of(8) {
        v.push("Index Version word unaligned".into());
    }
    v
}

/// FUSEE layout: same 3-bucket geometry at half the slot width, aligned
/// slot words.
pub fn lint_fusee_geometry() -> Vec<String> {
    let mut v = Vec::new();
    // Probe fusee's (private) group size via the public index_size():
    // adding one group to one partition adds exactly one group of bytes.
    let size = |groups| FuseeLayout::new(1, groups, 4096, 4).index_size();
    let fusee_group = size(9) - size(8);
    // FUSEE uses 8-byte slots in the same 3-buckets-of-8 shape as Aceso's
    // 16-byte slots, so each group is exactly half the byte size.
    if fusee_group * 2 != GROUP_BYTES {
        v.push(format!(
            "fusee group bytes {fusee_group} is not half of index GROUP_BYTES {GROUP_BYTES}"
        ));
    }
    if fusee_group != GROUP_BUCKETS * BUCKET_SLOTS * 8 {
        v.push(format!("fusee group bytes {fusee_group} != 3 buckets x 8 slots x 8 B"));
    }
    v
}

/// Block/Meta area layout: record and block offsets aligned, areas disjoint.
pub fn lint_blockalloc_layout() -> Vec<String> {
    let mut v = Vec::new();
    let l = BlockLayout {
        n: 5,
        block_size: 16 << 10,
        num_arrays: 4,
        num_delta: 12,
        meta_base: 4096,
        block_base: 1 << 20,
    };
    for b in 0..l.blocks_per_node() as BlockId {
        let id = b;
        let rec = l.record_offset(id);
        let blk = l.block_offset(id);
        if !rec.is_multiple_of(8) {
            v.push(format!("record offset {rec:#x} of block {b} unaligned"));
        }
        if !blk.is_multiple_of(64) {
            v.push(format!("block offset {blk:#x} of block {b} not 64-B aligned"));
        }
        if !(l.meta_base..l.meta_base + l.meta_size()).contains(&rec) {
            v.push(format!("record {b} outside the Meta Area"));
        }
        if !(l.block_base..l.block_base + l.block_area_size()).contains(&blk) {
            v.push(format!("block {b} outside the Block Area"));
        }
        // kind_of must roundtrip to a real cell for every id.
        match l.kind_of(id) {
            CellKind::Data { .. } | CellKind::Parity { .. } | CellKind::Delta { .. } => {}
        }
    }
    if l.meta_base + l.meta_size() > l.block_base {
        v.push("Meta Area overlaps Block Area".into());
    }
    v
}

/// Per-MN memory maps of the stock configurations: index, meta, and block
/// areas must not overlap and must fit the region.
pub fn lint_memory_maps() -> Vec<String> {
    let mut v = Vec::new();
    for (name, cfg) in [
        ("small", AcesoConfig::small()),
        ("bench", AcesoConfig::bench()),
    ] {
        let map = cfg.memory_map();
        let index_end = map.index.base + map.index.size_bytes();
        if index_end > map.blocks.meta_base {
            v.push(format!("{name}: Index Area overlaps Meta Area"));
        }
        if map.blocks.meta_base + map.blocks.meta_size() > map.blocks.block_base {
            v.push(format!("{name}: Meta Area overlaps Block Area"));
        }
        let end = map.blocks.block_base + map.blocks.block_area_size();
        if end > map.region_len as u64 {
            v.push(format!("{name}: Block Area exceeds the region"));
        }
        if map.blocks.block_base % map.blocks.block_size != 0 {
            v.push(format!("{name}: Block Area base not block-aligned"));
        }
        if map.index.index_version_offset() % 8 != 0 {
            v.push(format!("{name}: Index Version word unaligned"));
        }
    }
    v
}

/// `pack48` must roundtrip every 64-aligned block offset the maps produce
/// (slot addresses store 38 bits of offset).
pub fn lint_pack48() -> Vec<String> {
    let mut v = Vec::new();
    let map = AcesoConfig::small().memory_map();
    let last = (map.blocks.blocks_per_node() - 1) as BlockId;
    for off in [
        map.blocks.block_base,
        map.blocks.block_offset(last),
        map.blocks.block_offset(last) + map.blocks.block_size - 64,
    ] {
        for node in [0u16, 4] {
            let a = GlobalAddr::new(NodeId(node), off);
            let rt = GlobalAddr::unpack48(a.pack48());
            if rt.node != a.node || rt.offset != a.offset {
                v.push(format!("pack48 roundtrip failed for {node} offset {off:#x}"));
            }
        }
    }
    v
}

/// Source lint: every `CrashPoint` variant declared in `core/client.rs`
/// must appear in `CrashPoint::ALL` and be wired to at least one protocol
/// site (a `maybe_crash`/comparison use beyond the declaration itself).
pub fn lint_crash_points() -> Vec<String> {
    let mut v = Vec::new();
    let Some(src) = read_source(&mut v, "crates/core/src/client.rs") else {
        return v;
    };
    // Parse the enum declaration's variant names.
    let Some(decl) = src
        .split("pub enum CrashPoint {")
        .nth(1)
        .and_then(|rest| rest.split('}').next())
    else {
        v.push("cannot find `pub enum CrashPoint` in core/client.rs".into());
        return v;
    };
    let variants: Vec<&str> = decl
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .filter_map(|l| l.strip_suffix(','))
        .collect();
    if variants.len() != CrashPoint::ALL.len() {
        v.push(format!(
            "CrashPoint declares {} variants but ALL lists {}",
            variants.len(),
            CrashPoint::ALL.len()
        ));
    }
    for var in &variants {
        let qualified = format!("CrashPoint::{var}");
        // ALL + Display + >=1 protocol site = at least 3 qualified uses.
        let uses = src.matches(qualified.as_str()).count();
        if uses < 3 {
            v.push(format!(
                "{qualified} has {uses} uses in client.rs; expected ALL + Display + a protocol site"
            ));
        }
    }
    v
}

/// Source lint: `index/remote.rs` hardcodes the group stride in its local
/// snapshot helpers; it must match `GROUP_BYTES`, and `cas_meta` must keep
/// the `+ 8` Meta-word offset in step with `SLOT_BYTES / 2`.
pub fn lint_remote_index_literals() -> Vec<String> {
    let mut v = Vec::new();
    let Some(src) = read_source(&mut v, "crates/index/src/remote.rs") else {
        return v;
    };
    if src.contains("384") && GROUP_BYTES != 384 {
        v.push(format!(
            "index/remote.rs hardcodes a 384-byte group stride but GROUP_BYTES = {GROUP_BYTES}"
        ));
    }
    if src.contains("addr.add(8)") && SLOT_BYTES != 16 {
        v.push(format!(
            "index/remote.rs offsets the Meta word by 8 but SLOT_BYTES = {SLOT_BYTES}"
        ));
    }
    // Runtime cross-check of the same invariant: slot_addr agrees with the
    // layout's arithmetic.
    let l = IndexLayout::new(256, 6);
    let ri = aceso_index::RemoteIndex::new(NodeId(0), l);
    for (g, s) in [(0u64, 0u64), (3, 7), (5, 23)] {
        let got = ri.slot_addr(g, s).offset;
        let want = l.group_offset(g) + s * SLOT_BYTES;
        if got != want {
            v.push(format!(
                "RemoteIndex::slot_addr(g{g}, s{s}) = {got:#x} but layout says {want:#x}"
            ));
        }
    }
    v
}

/// Source lint: every `ElasticStep` variant the migrator declares in
/// `core/elastic.rs` must be mapped in the `chaos elastic` axis
/// (`chaos/src/elastic_axis.rs`), so a newly added migration step
/// boundary cannot ship without kill coverage. `Done` is the terminal
/// no-op state; it needs no kill cell but must still be mapped if the
/// axis matches on it.
pub fn lint_elastic_steps() -> Vec<String> {
    let mut v = Vec::new();
    let Some(core_src) = read_source(&mut v, "crates/core/src/elastic.rs") else {
        return v;
    };
    let Some(axis_src) = read_source(&mut v, "crates/chaos/src/elastic_axis.rs") else {
        return v;
    };
    let Some(decl) = core_src
        .split("pub enum ElasticStep {")
        .nth(1)
        .and_then(|rest| rest.split('}').next())
    else {
        v.push("cannot find `pub enum ElasticStep` in core/elastic.rs".into());
        return v;
    };
    let variants: Vec<&str> = decl
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .filter_map(|l| l.strip_suffix(','))
        .map(|l| l.split('(').next().unwrap_or(l))
        .collect();
    if variants.is_empty() {
        v.push("ElasticStep declares no variants?".into());
    }
    for var in &variants {
        if *var == "Done" {
            // Terminal state: nothing left to kill at its boundary.
            continue;
        }
        let qualified = format!("ElasticStep::{var}");
        if !axis_src.contains(qualified.as_str()) {
            v.push(format!(
                "migrator step {qualified} has no kill coverage in chaos/src/elastic_axis.rs"
            ));
        }
    }
    v
}

/// Counts `.settle().await` occurrences per enclosing `fn` in client
/// source (line-based, mirroring `aceso-model`'s scanner).
fn settle_sites_per_fn(src: &str) -> Vec<(String, usize)> {
    let mut counts: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut cur: Option<String> = None;
    for line in src.lines() {
        let mut t = line.trim_start();
        for prefix in ["pub(crate) ", "pub ", "async "] {
            t = t.strip_prefix(prefix).unwrap_or(t);
        }
        t = t.strip_prefix("async ").unwrap_or(t);
        if let Some(rest) = t.strip_prefix("fn ") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                cur = Some(name);
            }
        }
        if line.contains(".settle().await") {
            let name = cur.clone().unwrap_or_else(|| "<toplevel>".to_string());
            *counts.entry(name).or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

/// Parses `(name, count)` rows out of the model crate's `STEP_TABLE`
/// source text: quoted strings and integer literals appear in strict
/// `(fn, sites, label)` order, so tokenizing and chunking by row is
/// layout-insensitive.
fn parse_step_table(block: &str) -> Vec<(String, usize)> {
    let mut strings: Vec<String> = Vec::new();
    let mut ints: Vec<usize> = Vec::new();
    let mut chars = block.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '"' {
            let mut s = String::new();
            for c in chars.by_ref() {
                if c == '"' {
                    break;
                }
                s.push(c);
            }
            strings.push(s);
        } else if c.is_ascii_digit() {
            let mut n = String::from(c);
            while let Some(d) = chars.peek() {
                if d.is_ascii_digit() {
                    n.push(*d);
                    chars.next();
                } else {
                    break;
                }
            }
            ints.push(n.parse().unwrap_or(0));
        }
    }
    // Row i is (strings[2*i], ints[i], strings[2*i + 1]).
    strings
        .chunks(2)
        .zip(ints)
        .map(|(pair, n)| (pair[0].clone(), n))
        .collect()
}

/// Source lint: every `.settle().await` suspension point in the async
/// client must be inventoried in the model checker's step table
/// (`crates/model/src/step_table.rs`), per function and with the exact
/// site count — otherwise the explorer's step space silently lags the
/// code. The same drift also fails `chaos explore --ci` from the model
/// side; this lint makes `chaos analyze --ci` and `cargo test` catch it
/// without building the explorer.
pub fn lint_settle_coverage() -> Vec<String> {
    let mut v = Vec::new();
    let Some(client_src) = read_source(&mut v, "crates/core/src/client.rs") else {
        return v;
    };
    let Some(model_src) = read_source(&mut v, "crates/model/src/step_table.rs") else {
        return v;
    };
    let Some(block) = model_src
        .split("pub const STEP_TABLE")
        .nth(1)
        .and_then(|rest| rest.split("];").next())
    else {
        v.push("cannot find STEP_TABLE in model/src/step_table.rs".into());
        return v;
    };
    let table = parse_step_table(block);
    let actual = settle_sites_per_fn(&client_src);
    for (name, sites) in &actual {
        match table.iter().find(|(n, _)| n == name) {
            None => v.push(format!(
                "`{name}` has {sites} .settle().await site(s) but no STEP_TABLE row"
            )),
            Some((_, listed)) if listed != sites => v.push(format!(
                "`{name}` has {sites} .settle().await site(s) but STEP_TABLE lists {listed}"
            )),
            Some(_) => {}
        }
    }
    for (name, listed) in &table {
        if !actual.iter().any(|(n, _)| n == name) {
            v.push(format!(
                "STEP_TABLE lists `{name}` ({listed} sites) but client.rs has no such suspension point"
            ));
        }
    }
    v
}

/// Runs every lint; empty result = the protocol invariants hold.
pub fn run_all() -> Vec<String> {
    let mut v = Vec::new();
    v.extend(lint_index_layout());
    v.extend(lint_fusee_geometry());
    v.extend(lint_blockalloc_layout());
    v.extend(lint_memory_maps());
    v.extend(lint_pack48());
    v.extend(lint_crash_points());
    v.extend(lint_remote_index_literals());
    v.extend(lint_elastic_steps());
    v.extend(lint_settle_coverage());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_layout_is_consistent() {
        assert_eq!(lint_index_layout(), Vec::<String>::new());
    }

    #[test]
    fn fusee_geometry_matches_index() {
        assert_eq!(lint_fusee_geometry(), Vec::<String>::new());
    }

    #[test]
    fn blockalloc_layout_is_consistent() {
        assert_eq!(lint_blockalloc_layout(), Vec::<String>::new());
    }

    #[test]
    fn memory_maps_do_not_overlap() {
        assert_eq!(lint_memory_maps(), Vec::<String>::new());
    }

    #[test]
    fn pack48_roundtrips_block_offsets() {
        assert_eq!(lint_pack48(), Vec::<String>::new());
    }

    #[test]
    fn crash_points_are_wired() {
        assert_eq!(lint_crash_points(), Vec::<String>::new());
    }

    #[test]
    fn remote_index_literals_match_layout() {
        assert_eq!(lint_remote_index_literals(), Vec::<String>::new());
    }

    #[test]
    fn elastic_steps_are_covered() {
        assert_eq!(lint_elastic_steps(), Vec::<String>::new());
    }

    #[test]
    fn settle_sites_are_inventoried() {
        assert_eq!(lint_settle_coverage(), Vec::<String>::new());
    }

    /// The tokenizer handles both single-line and multi-line table rows.
    #[test]
    fn step_table_parser_reads_rows() {
        let block = r#"
            ("upsert", 1, "route"),
            (
                "commit_update",
                9,
                "long label, with commas",
            ),
        "#;
        assert_eq!(
            parse_step_table(block),
            vec![("upsert".to_string(), 1), ("commit_update".to_string(), 9)]
        );
    }

    /// The settle scanner attributes sites to the enclosing fn.
    #[test]
    fn settle_scanner_attributes_sites() {
        let src = "pub(crate) async fn alpha(&self) {\n\
                   \x20   self.dm.settle().await?;\n\
                   }\n\
                   fn beta() {}\n\
                   async fn gamma(&self) {\n\
                   \x20   a.settle().await;\n\
                   \x20   b.settle().await;\n\
                   }\n";
        assert_eq!(
            settle_sites_per_fn(src),
            vec![("alpha".to_string(), 1), ("gamma".to_string(), 2)]
        );
    }
}
