//! `aceso-san` — happens-before race detection over DM verb traces, plus a
//! protocol lint suite.
//!
//! Aceso's correctness rests on one-sided verbs racing with remote CPUs at
//! 8-byte atomicity granularity: Algorithm 1's commit CAS, the index epoch
//! lock, IV monotonicity. Tests and the chaos matrix catch such bugs only
//! at the crash sites they enumerate; this crate checks *every* execution
//! they already produce:
//!
//! * [`detect::Detector`] is a ThreadSanitizer-style vector-clock checker
//!   implementing [`aceso_rdma::TraceSink`]. Install it on a cluster and
//!   it flags unordered conflicting access pairs (torn reads, lost
//!   updates) as they happen. See the module docs for the happens-before
//!   model and its edge sources.
//! * [`lint`] holds static protocol lints over layout constants and
//!   workspace source: atomic-word alignment, `CrashPoint` wiring, and
//!   cross-crate layout consistency.
//! * [`selftest`] proves the detector is live: each scenario weakens one
//!   ordering edge and asserts a race is reported.
//!
//! The `chaos analyze` subcommand drives all three over the CI crash-matrix
//! sweep and a multi-client YCSB trace.

#![forbid(unsafe_code)]

pub mod detect;
pub mod hb;
pub mod lint;
pub mod selftest;
pub mod vc;

pub use detect::{Access, Annotator, Detector, Race, RaceKind};
pub use hb::{accesses_conflict, footprints_conflict};
pub use selftest::SelftestOutcome;
pub use vc::VectorClock;
