//! Vector clocks over dense trace client ids.

/// A vector clock indexed by trace client id (dense, grow-on-demand).
///
/// Component `i` is the number of events of client `i` known to
/// happen-before the clock's owner. Missing components are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Component `i` (zero if never set).
    #[inline]
    pub fn get(&self, i: u32) -> u64 {
        self.0.get(i as usize).copied().unwrap_or(0)
    }

    /// Sets component `i` to `v` (growing as needed).
    pub fn set(&mut self, i: u32, v: u64) {
        let i = i as usize;
        if i >= self.0.len() {
            self.0.resize(i + 1, 0);
        }
        self.0[i] = v;
    }

    /// Increments component `i` and returns the new value (the owner's
    /// clock tick for one event).
    pub fn bump(&mut self, i: u32) -> u64 {
        let v = self.get(i) + 1;
        self.set(i, v);
        v
    }

    /// Pointwise maximum: afterwards `self` knows everything `other` knew
    /// (the acquire half of a release/acquire edge).
    pub fn join(&mut self, other: &VectorClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut v = VectorClock::new();
        assert_eq!(v.get(3), 0);
        assert_eq!(v.bump(3), 1);
        assert_eq!(v.bump(3), 2);
        assert_eq!(v.get(3), 2);
        assert_eq!(v.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 3);
        b.set(1, 7);
        b.set(3, 2);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 7);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(3), 2);
    }
}
