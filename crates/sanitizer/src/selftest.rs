//! Mutation self-tests: prove the detector is live, not vacuous.
//!
//! Each scenario scripts a miniature protocol on a real cluster twice:
//! once *correct* (the detector must stay silent) and once with exactly one
//! ordering edge deliberately weakened (the detector must report a race
//! naming the offending verb pair and addresses). The four weakened edges
//! mirror the bugs Aceso's protocols are designed to exclude:
//!
//! 1. `skip-commit-cas` — publish a slot with a plain write instead of the
//!    commit CAS (Algorithm 1's release edge disappears).
//! 2. `commit-before-write` — commit the slot CAS *before* the KV write
//!    lands (release happens too early; readers can tear the KV).
//! 3. `skip-lock-cas` — a second writer updates a lock-protected range
//!    without taking the epoch lock (lost update).
//! 4. `skip-recovery-barrier` — recovery reads a crashed client's block
//!    without the quiescence barrier.

use crate::detect::Detector;
use aceso_index::IndexLayout;
use aceso_rdma::{Cluster, ClusterConfig, CostModel, GlobalAddr, NodeId};
use std::sync::Arc;

/// Result of one scenario: both halves of the liveness proof.
#[derive(Clone, Debug)]
pub struct SelftestOutcome {
    /// Scenario name (the weakened edge).
    pub name: &'static str,
    /// The unmutated protocol produced zero reports.
    pub baseline_clean: bool,
    /// The mutated protocol produced at least one report.
    pub mutation_detected: bool,
    /// The first race the mutation produced (verb pair + addresses).
    pub report: String,
}

impl SelftestOutcome {
    /// Whether this scenario proves the corresponding edge is checked.
    pub fn ok(&self) -> bool {
        self.baseline_clean && self.mutation_detected
    }
}

fn fresh() -> (Arc<Cluster>, Arc<Detector>) {
    let cluster = Cluster::new(ClusterConfig {
        num_mns: 1,
        region_len: 1 << 16,
        cost: CostModel::default(),
    });
    let layout = IndexLayout::new(0, 8);
    let detector = Arc::new(Detector::with_annotator(Box::new(move |_, off| {
        match layout.classify_word(off) {
            aceso_index::IndexWord::Atomic { group, slot } => {
                Some(format!("slot Atomic word g{group}/s{slot}"))
            }
            aceso_index::IndexWord::Meta { group, slot } => {
                Some(format!("slot Meta word g{group}/s{slot}"))
            }
            aceso_index::IndexWord::IndexVersion => Some("Index Version word".into()),
            aceso_index::IndexWord::OutsideIndex => Some("block area".into()),
        }
    })));
    cluster.install_trace_sink(detector.clone());
    (cluster, detector)
}

/// The index geometry all scenarios share: slot words come from a real
/// [`IndexLayout`] so the traced addresses are the protocol's addresses.
fn layout() -> IndexLayout {
    IndexLayout::new(0, 8)
}

fn run(
    name: &'static str,
    scenario: impl Fn(&Arc<Cluster>, bool),
) -> SelftestOutcome {
    let (cluster, detector) = fresh();
    scenario(&cluster, false);
    let baseline_clean = detector.is_clean();

    let (cluster, detector) = fresh();
    scenario(&cluster, true);
    let races = detector.races();
    SelftestOutcome {
        name,
        baseline_clean,
        mutation_detected: !races.is_empty(),
        report: races
            .first()
            .map(|r| r.to_string())
            .unwrap_or_else(|| "(no race reported)".into()),
    }
}

/// Scenario 1: the writer publishes a slot via plain write instead of the
/// commit CAS of Algorithm 1.
pub fn skip_commit_cas() -> SelftestOutcome {
    run("skip-commit-cas", |cluster, mutate| {
        let l = layout();
        let slot = GlobalAddr::new(NodeId(0), l.slot_offset(1, 0, 3));
        let kv = GlobalAddr::new(NodeId(0), 8192);
        let writer = cluster.client();
        let reader = cluster.client();
        writer.write(kv, &[7u8; 64]).unwrap();
        if mutate {
            // MUTATION: a plain 8-byte write is atomic on the fabric but is
            // not a release — readers get no happens-before edge.
            writer.write_inline(slot, &1u64.to_le_bytes()).unwrap();
        } else {
            writer.cas(slot, 0, 1).unwrap();
        }
        let _ = reader.read_u64(slot).unwrap();
        let _ = reader.read_vec(kv, 64).unwrap();
    })
}

/// Scenario 2: the commit CAS lands before the KV write it publishes.
pub fn commit_before_write() -> SelftestOutcome {
    run("commit-before-write", |cluster, mutate| {
        let l = layout();
        let slot = GlobalAddr::new(NodeId(0), l.slot_offset(2, 1, 5));
        let kv = GlobalAddr::new(NodeId(0), 12288);
        let writer = cluster.client();
        let reader = cluster.client();
        if mutate {
            // MUTATION: release precedes the write, so the write stays
            // unpublished and an acquired reader still tears.
            writer.cas(slot, 0, 1).unwrap();
            writer.write(kv, &[9u8; 64]).unwrap();
        } else {
            writer.write(kv, &[9u8; 64]).unwrap();
            writer.cas(slot, 0, 1).unwrap();
        }
        let _ = reader.read_u64(slot).unwrap();
        let _ = reader.read_vec(kv, 64).unwrap();
    })
}

/// Scenario 3: a second writer skips the Meta-word epoch lock.
pub fn skip_lock_cas() -> SelftestOutcome {
    run("skip-lock-cas", |cluster, mutate| {
        let l = layout();
        // The epoch lock is the slot's Meta word (addr + 8), as taken by
        // `RemoteIndex::cas_meta`.
        let lock = GlobalAddr::new(NodeId(0), l.slot_offset(3, 0, 0) + 8);
        let buf = GlobalAddr::new(NodeId(0), 16384);
        let a = cluster.client();
        let b = cluster.client();
        // A: lock (epoch 0 -> 1), write, unlock (1 -> 2).
        a.cas(lock, 0, 1).unwrap();
        a.write(buf, &[1u8; 64]).unwrap();
        a.cas(lock, 1, 2).unwrap();
        // B: same update; the mutation skips the lock acquisition.
        if !mutate {
            b.cas(lock, 2, 3).unwrap();
        }
        b.write(buf, &[2u8; 64]).unwrap();
        if !mutate {
            b.cas(lock, 3, 4).unwrap();
        }
    })
}

/// Scenario 4: recovery reads a crashed client's block without the
/// quiescence barrier.
pub fn skip_recovery_barrier() -> SelftestOutcome {
    run("skip-recovery-barrier", |cluster, mutate| {
        let crashed = cluster.client();
        let kv = GlobalAddr::new(NodeId(0), 20480);
        // The client wrote its KV but crashed before the commit CAS.
        crashed.write(kv, &[3u8; 128]).unwrap();
        if !mutate {
            // Recovery begins only after the membership service quiesces
            // the epoch — the harness models that as a barrier.
            cluster.trace_barrier();
        }
        let recovery = cluster.background_client();
        let _ = recovery.read_vec(kv, 256).unwrap();
    })
}

/// Runs all scenarios.
pub fn run_all() -> Vec<SelftestOutcome> {
    vec![
        skip_commit_cas(),
        commit_before_write(),
        skip_lock_cas(),
        skip_recovery_barrier(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_weakened_edge_is_detected() {
        for outcome in run_all() {
            assert!(
                outcome.baseline_clean,
                "{}: baseline reported a race: {}",
                outcome.name, outcome.report
            );
            assert!(
                outcome.mutation_detected,
                "{}: mutation went undetected",
                outcome.name
            );
        }
    }

    #[test]
    fn reports_name_verb_pair_and_addresses() {
        let o = skip_commit_cas();
        assert!(o.report.contains("WRITE"), "{}", o.report);
        assert!(o.report.contains("READ"), "{}", o.report);
        assert!(o.report.contains("0x2000"), "{}", o.report);

        let o = skip_lock_cas();
        assert!(o.report.contains("WRITE/WRITE"), "{}", o.report);
        assert!(o.report.contains("0x4000"), "{}", o.report);
    }
}
