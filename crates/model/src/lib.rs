//! `aceso-model` — a deterministic bounded model checker for the Aceso
//! client protocol.
//!
//! The chaos matrix samples crash points; this crate *enumerates*. It
//! drives 2–3 coroutine clients ([`aceso_rt::Executor`]) over a tiny
//! store geometry and explores every interleaving of their fabric round
//! trips up to a depth bound: each `DmClient::settle` suspension is a
//! scheduling point (the completion can be delivered out of deadline
//! order via `SimCq::deliver_seq`), and every scheduling point is also a
//! crash point — the suspended client is cancelled in place, the home
//! memory node of the contended key is killed, or both, followed by full
//! tiered recovery and re-checking.
//!
//! The pieces:
//!
//! * [`scenario`] — the small-scope workloads (2–3 clients, 2–3 keys)
//!   and the mutation self-tests that prove the checker alive.
//! * [`exec`] — one stateless execution: replay a schedule prefix,
//!   crash, drain, recover, judge.
//! * [`mod@explore`] — the bounded DFS with sleep-set DPOR pruning driven by
//!   the sanitizer's happens-before conflict relation
//!   ([`aceso_san::footprints_conflict`]).
//! * [`wgl`] — a Wing&Gong-style linearizability checker over the
//!   committed INSERT/UPDATE/SEARCH/DELETE history.
//! * [`step_table`] — the reviewed inventory of every suspension point
//!   in the async client, drift-checked against the source.
//!
//! `chaos explore --ci` wires it all into the verification stack:
//! seed-stable, wall-clock-free output, non-zero exit on any
//! non-linearizable history, step-table drift, or dead mutation
//! self-test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod explore;
pub mod scenario;
pub mod step_table;
pub mod wgl;

pub use exec::{run, CrashSpec, RunResult};
pub use explore::{explore, ExploreStats, ScenarioReport, Violation};
pub use scenario::{baseline_scenarios, model_config, mutation_scenarios, Scenario, ScriptOp};
pub use step_table::{check_step_table, count_settle_sites, STEP_TABLE};
pub use wgl::{check_key, KeyOp, KeyOpKind};
