//! One deterministic execution of a scenario under an explicit schedule
//! prefix, an optional crash at the frontier, and full recovery + oracle
//! checking.
//!
//! The explorer is *stateless*: it never snapshots the store. Each tree
//! node costs one fresh execution — launch the tiny store, replay the
//! schedule prefix by delivering tagged completions in the requested
//! order, then either crash at the frontier or drain deterministically.
//! Every execution ends with the full oracle stack: linearizability of
//! the recorded history ([`crate::wgl`]), a lock-liveness probe, Index
//! Version monotonicity, and a parity scrub.
//!
//! Replay is exact because the whole run phase is single-threaded: the
//! only sources of scheduling freedom are the completion deliveries the
//! explorer itself chooses, so `(scenario, seed, prefix, crash)` names
//! one execution.

use crate::scenario::{client_letter, key_bytes, key_name, model_config, Scenario, ScriptOp};
use crate::wgl::{check_key, render_history, KeyOp, KeyOpKind};
use aceso_core::{recover_cn, recover_mn, scrub, AcesoStore, ClientTuning, StoreError};
use aceso_index::route_hash;
use aceso_rdma::{SimCq, TraceEvent, TraceSink};
use aceso_rt::Executor;
use aceso_san::Access;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// What dies at the frontier — the quiescent point right after the last
/// replayed scheduling choice, with every live task suspended at a fabric
/// round trip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashSpec {
    /// Cancel one client task in place: a CN crash with no flush, no
    /// unwind — the future is dropped mid-`await`.
    Cn(usize),
    /// Kill the home memory node of scenario key 0.
    Mn,
    /// Both at once (the paper's mixed-failure case).
    CnAndMn(usize),
}

impl CrashSpec {
    /// Report label.
    pub fn label(&self) -> String {
        match self {
            CrashSpec::Cn(t) => format!("crash-cn({})", client_letter(*t)),
            CrashSpec::Mn => "kill-mn".to_string(),
            CrashSpec::CnAndMn(t) => format!("crash-cn({})+kill-mn", client_letter(*t)),
        }
    }
}

/// What one execution reported back to the explorer.
#[derive(Clone, Debug, Default)]
pub struct RunResult {
    /// Trace tags with a pending completion at the frontier, ascending —
    /// the enabled scheduling choices.
    pub enabled: Vec<u32>,
    /// Trace tag → task index, for rendering.
    pub tag_task: BTreeMap<u32, usize>,
    /// Sanitizer footprint of each replayed choice: every verb traced
    /// between its delivery and the next quiescent point.
    pub step_fps: Vec<Vec<Access>>,
    /// Oracle violations (empty = the execution passed).
    pub violations: Vec<String>,
}

impl RunResult {
    /// `true` when every oracle held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Buffers the verb trace so choice footprints can be sliced out of it.
/// The run phase is single-threaded (one executor, servers idle unless
/// RPC'd synchronously), so slice boundaries are deterministic.
#[derive(Default)]
struct FootprintSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl FootprintSink {
    fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    fn slice(&self, range: core::ops::Range<usize>) -> Vec<Access> {
        self.events.lock().unwrap()[range]
            .iter()
            .map(|ev| Access {
                client: ev.client,
                seq: ev.seq,
                op: ev.op,
                node: ev.node.0,
                offset: ev.offset,
                len: ev.len,
            })
            .collect()
    }
}

impl TraceSink for FootprintSink {
    fn record(&self, ev: TraceEvent) {
        self.events.lock().unwrap().push(ev);
    }
}

/// One invocation/response record; reads fill `read` at response time.
struct HistEntry {
    key: usize,
    /// `Some(v)` for writes (`v = None` is a delete); `None` for reads.
    write: Option<Option<Vec<u8>>>,
    /// Observed value, for completed reads.
    read: Option<Option<Vec<u8>>>,
    inv: u64,
    resp: Option<u64>,
    who: String,
}

#[derive(Default)]
struct SharedState {
    stamp: u64,
    hist: Vec<HistEntry>,
    /// Client ids needing CN recovery (cut by a kill).
    crashed: Vec<u32>,
    /// Set once a memory node was killed: fabric errors become expected.
    mn_killed: bool,
    violations: Vec<String>,
}

impl SharedState {
    fn begin(&mut self, key: usize, write: Option<Option<Vec<u8>>>, who: String) -> usize {
        let inv = self.stamp;
        self.stamp += 1;
        self.hist.push(HistEntry {
            key,
            write,
            read: None,
            inv,
            resp: None,
            who,
        });
        self.hist.len() - 1
    }

    fn finish(&mut self, idx: usize, read: Option<Option<Vec<u8>>>) {
        let resp = self.stamp;
        self.stamp += 1;
        self.hist[idx].resp = Some(resp);
        self.hist[idx].read = read;
    }
}

fn pad_val(s: String) -> Vec<u8> {
    format!("{s:-<16}").into_bytes()
}

/// The value a scripted write op carries (unique per op).
fn op_value(task: usize, opno: usize) -> Vec<u8> {
    pad_val(format!("v-{}{opno}", client_letter(task)))
}

/// Runs one execution. `prefix` is a sequence of trace tags: at each
/// quiescent point the pending completion of that tag is delivered (out
/// of deadline order if needed). When the prefix is exhausted the run
/// pauses at the frontier, applies `crash` if any, then drains on the
/// default lowest-deadline policy, recovers, and judges the oracles.
pub fn run(scenario: &Scenario, seed: u64, prefix: &[u32], crash: Option<&CrashSpec>) -> RunResult {
    let mut out = RunResult::default();
    if let Err(e) = run_inner(scenario, seed, prefix, crash, &mut out) {
        out.violations.push(format!("harness: {e}"));
    }
    out
}

fn run_inner(
    scenario: &Scenario,
    seed: u64,
    prefix: &[u32],
    crash: Option<&CrashSpec>,
    out: &mut RunResult,
) -> Result<(), String> {
    let store = AcesoStore::launch(model_config()).map_err(|e| format!("launch: {e}"))?;
    let sink = Arc::new(FootprintSink::default());
    store.cluster.install_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let n = store.cfg.num_mns;
    let victim_col = (route_hash(&key_bytes(0)) % n as u64) as usize;

    // ---- Preload + warmup (blocking, pre-schedule) -----------------------
    let mut initial: BTreeMap<usize, Option<Vec<u8>>> = BTreeMap::new();
    {
        let mut loader = store.client().map_err(|e| format!("loader: {e}"))?;
        for &k in &scenario.preload {
            let v = pad_val(format!("init-k{k}-{seed:x}"));
            loader
                .insert(&key_bytes(k), &v)
                .map_err(|e| format!("preload k{k}: {e}"))?;
            initial.insert(k, Some(v));
        }
        for i in 0..scenario.warmup_updates {
            let v = pad_val(format!("w{i:03}"));
            loader
                .update(&key_bytes(0), &v)
                .map_err(|e| format!("warmup {i}: {e}"))?;
            initial.insert(0, Some(v));
        }
        loader
            .close_open_blocks()
            .map_err(|e| format!("preload close: {e}"))?;
    }
    store.cluster.trace_barrier();
    for _ in 0..2 {
        store.checkpoint_tick().map_err(|e| format!("ckpt: {e}"))?;
    }
    store.cluster.trace_barrier();
    let iv_of = |store: &Arc<AcesoStore>, col: usize| {
        let s = store.server(col);
        s.index.local_index_version(&s.node.region)
    };
    let iv_pre: Vec<u64> = (0..n).map(|c| iv_of(&store, c)).collect();

    // ---- Spawn the scripted coroutine clients ----------------------------
    let tuning = ClientTuning {
        max_retries: 40,
        index_wait_ms: 5,
        ..ClientTuning::default()
    };
    let shared = Rc::new(RefCell::new(SharedState::default()));
    let cq = Arc::new(SimCq::new());
    let mut exec = Executor::new();
    let mut handles = Vec::new();
    let mut cli_ids = Vec::new();
    for (t, script) in scenario.clients.iter().enumerate() {
        let mut client = store
            .client_with(tuning)
            .map_err(|e| format!("client {t}: {e}"))?;
        client.dm.attach_cq(Arc::clone(&cq));
        client.mutation = scenario.mutation;
        out.tag_task.insert(client.dm.trace_id(), t);
        cli_ids.push(client.id());
        let shared = Rc::clone(&shared);
        let script = script.clone();
        handles.push(exec.spawn(async move {
            let cli_id = client.id();
            let who = client_letter(t).to_string();
            for (opno, op) in script.iter().enumerate() {
                let key = op.key();
                let kb = key_bytes(key);
                let (idx, res) = match op {
                    ScriptOp::Insert(_) | ScriptOp::Update(_) => {
                        let v = op_value(t, opno);
                        let idx =
                            shared
                                .borrow_mut()
                                .begin(key, Some(Some(v.clone())), who.clone());
                        let res = match op {
                            ScriptOp::Insert(_) => client.insert_async(&kb, &v).await,
                            _ => client.update_async(&kb, &v).await,
                        };
                        (idx, res.map(|_| None))
                    }
                    ScriptOp::Delete(_) => {
                        let idx = shared.borrow_mut().begin(key, Some(None), who.clone());
                        (idx, client.delete_async(&kb).await.map(|_| None))
                    }
                    ScriptOp::Search(_) => {
                        let idx = shared.borrow_mut().begin(key, None, who.clone());
                        (idx, client.search_async(&kb).await.map(Some))
                    }
                };
                match res {
                    Ok(read) => shared.borrow_mut().finish(idx, read),
                    Err(e) => {
                        let mut st = shared.borrow_mut();
                        if st.mn_killed {
                            // Cut down by the injected fault: the op stays
                            // pending and the client needs CN recovery.
                            st.crashed.push(cli_id);
                        } else {
                            st.violations
                                .push(format!("task {who} op {opno}: unexpected error: {e}"));
                        }
                        break;
                    }
                }
            }
            client.dm.detach_cq();
        }));
    }

    // ---- Replay the schedule prefix to the frontier ----------------------
    struct DriveState {
        next: usize,
        marks: Vec<usize>,
        frontier_len: Option<usize>,
        enabled: Vec<u32>,
        diverged: Option<String>,
    }
    let ds = Rc::new(RefCell::new(DriveState {
        next: 0,
        marks: Vec::new(),
        frontier_len: None,
        enabled: Vec::new(),
        diverged: None,
    }));
    {
        let ds = Rc::clone(&ds);
        let cq = Arc::clone(&cq);
        let sink = Arc::clone(&sink);
        exec.run_until_idle(move || {
            let mut st = ds.borrow_mut();
            if st.next >= prefix.len() {
                st.frontier_len = Some(sink.len());
                let tags: BTreeSet<u32> = cq.pending_entries().iter().map(|&(_, t)| t).collect();
                st.enabled = tags.into_iter().collect();
                return false;
            }
            let tag = prefix[st.next];
            match cq.pending_entries().iter().find(|&&(_, t)| t == tag) {
                Some(&(seq, _)) => {
                    st.marks.push(sink.len());
                    st.next += 1;
                    cq.deliver_seq(seq)
                }
                None => {
                    st.diverged = Some(format!(
                        "replay diverged at choice {}: tag {tag} not pending",
                        st.next
                    ));
                    false
                }
            }
        });
    }
    {
        let st = ds.borrow();
        if let Some(d) = &st.diverged {
            return Err(d.clone());
        }
        if st.next < prefix.len() {
            return Err(format!(
                "replay ended after {} of {} choices (tasks drained early)",
                st.next,
                prefix.len()
            ));
        }
        let frontier = st.frontier_len.unwrap_or_else(|| sink.len());
        for (i, &start) in st.marks.iter().enumerate() {
            let end = st.marks.get(i + 1).copied().unwrap_or(frontier);
            out.step_fps.push(sink.slice(start..end));
        }
        out.enabled.clone_from(&st.enabled);
    }

    // ---- Crash at the frontier -------------------------------------------
    let mut cancelled: Vec<usize> = Vec::new();
    let mut mn_killed = false;
    if let Some(c) = crash {
        match c {
            CrashSpec::Cn(t) => cancelled.push(*t),
            CrashSpec::Mn => mn_killed = true,
            CrashSpec::CnAndMn(t) => {
                cancelled.push(*t);
                mn_killed = true;
            }
        }
    }
    for &t in &cancelled {
        if exec.cancel(handles[t].id()) {
            shared.borrow_mut().crashed.push(cli_ids[t]);
        }
    }
    if mn_killed {
        store.kill_mn(victim_col);
        shared.borrow_mut().mn_killed = true;
    }

    // ---- Drain on the default lowest-deadline policy ---------------------
    let stuck = exec.run_until_idle(|| cq.advance_next());
    if stuck != 0 {
        out.violations
            .push(format!("executor wedged with {stuck} tasks in flight"));
    }
    store.cluster.trace_barrier();

    // ---- Tiered recovery (CN consistency first, then MN) -----------------
    let crashed: Vec<u32> = {
        let mut st = shared.borrow_mut();
        out.violations.append(&mut st.violations);
        let mut ids = std::mem::take(&mut st.crashed);
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    for cli_id in &crashed {
        let mut revived = store.client_with_id(*cli_id);
        recover_cn(&store, &mut revived).map_err(|e| format!("recover_cn({cli_id}): {e}"))?;
        store.cluster.trace_barrier();
    }
    if mn_killed {
        recover_mn(&store, victim_col).map_err(|e| format!("recover_mn: {e}"))?;
    }
    store.cluster.trace_barrier();

    // ---- Oracle 1: linearizability of the recorded history ---------------
    let touched: BTreeSet<usize> = scenario
        .preload
        .iter()
        .copied()
        .chain(scenario.clients.iter().flatten().map(|op| op.key()))
        .collect();
    let mut verifier = store.client().map_err(|e| format!("verifier: {e}"))?;
    {
        let mut st = shared.borrow_mut();
        for &k in &touched {
            let idx = st.begin(k, None, "V".to_string());
            match verifier.search(&key_bytes(k)) {
                Ok(got) => st.finish(idx, Some(got)),
                Err(e) => st
                    .violations
                    .push(format!("verifier search k{k}: {e}")),
            }
        }
        out.violations.append(&mut st.violations);
    }
    {
        let st = shared.borrow();
        for &k in &touched {
            let init = initial.get(&k).cloned().flatten();
            let ops: Vec<KeyOp> = st
                .hist
                .iter()
                .filter(|h| h.key == k)
                .filter_map(|h| match (&h.write, h.resp) {
                    (Some(v), resp) => Some(KeyOp {
                        kind: KeyOpKind::Write(v.clone()),
                        inv: h.inv,
                        resp,
                        who: h.who.clone(),
                    }),
                    (None, Some(resp)) => Some(KeyOp {
                        kind: KeyOpKind::Read(h.read.clone().flatten()),
                        inv: h.inv,
                        resp: Some(resp),
                        who: h.who.clone(),
                    }),
                    // A read cut down mid-flight constrains nothing.
                    (None, None) => None,
                })
                .collect();
            if !check_key(init.as_deref(), &ops) {
                out.violations
                    .push(format!("non-linearizable history for {}", key_name(k)));
                out.violations
                    .extend(render_history(&key_name(k), init.as_deref(), &ops));
            }
        }
    }

    // ---- Oracle 2: lock liveness — a probe write must get through --------
    let mut probe = store
        .client_with(tuning)
        .map_err(|e| format!("probe: {e}"))?;
    if scenario.probe_mutation {
        probe.mutation = scenario.mutation;
    }
    for &k in &touched {
        let pv = pad_val(format!("probe-k{k}"));
        match probe.update(&key_bytes(k), &pv) {
            Ok(()) => match probe.search(&key_bytes(k)) {
                Ok(Some(got)) if got == pv => {}
                Ok(got) => out.violations.push(format!(
                    "probe readback mismatch on {}: got {got:?}",
                    key_name(k)
                )),
                Err(e) => out
                    .violations
                    .push(format!("probe readback {}: {e}", key_name(k))),
            },
            // Absent key: the probe's point is lock liveness, not presence.
            Err(StoreError::NotFound) => {}
            Err(e) => out.violations.push(format!(
                "lock liveness: probe update on {} wedged: {e}",
                key_name(k)
            )),
        }
    }

    // ---- Oracle 3: Index-Version monotonicity ----------------------------
    for (col, pre) in iv_pre.iter().enumerate() {
        let post = iv_of(&store, col);
        if post < *pre {
            out.violations.push(format!(
                "index version regressed on col {col}: {pre} -> {post}"
            ));
        }
    }

    // ---- Oracle 4: parity-stripe consistency -----------------------------
    if let Err(e) = verifier.flush_bitmaps() {
        out.violations.push(format!("final flush: {e}"));
    }
    store.cluster.trace_barrier();
    match scrub(&store) {
        Ok(r) if r.is_clean() => {}
        Ok(r) => out.violations.push(format!("scrub dirty: {r:?}")),
        Err(e) => out.violations.push(format!("scrub: {e}")),
    }

    store.shutdown();
    Ok(())
}
