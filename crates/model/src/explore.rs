//! The bounded DFS over schedules and crashes, with sleep-set pruning.
//!
//! A node of the search tree is a schedule *prefix*: the sequence of
//! completion deliveries chosen so far. Expanding a node costs one
//! execution ([`crate::exec::run`]) and yields three things at once: the
//! footprint of each replayed choice, the enabled set at the frontier,
//! and — because the execution then drains deterministically and judges
//! the oracles — the verdict of the terminal leaf "this prefix, then the
//! default schedule". On top of that, every node doubles as a crash
//! site: each enabled client is cancelled in place, the home memory node
//! of key 0 is killed, and both together, each in its own execution with
//! full recovery and oracle checking.
//!
//! Pruning is sleep-set DPOR driven by the sanitizer's happens-before
//! conflict relation ([`aceso_san::footprints_conflict`]): after
//! exploring child `c`, its sibling subtrees inherit `c` in their sleep
//! set until a conflicting step wakes it, so commuting interleavings are
//! enumerated once. Sleep sets only ever remove redundant interleavings —
//! every Mazurkiewicz trace up to the depth bound is still visited.

use crate::exec::{run, CrashSpec, RunResult};
use crate::scenario::{client_letter, Scenario};
use aceso_san::{footprints_conflict, Access};

/// Exploration counters (all deterministic; no wall-clock).
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Tree nodes expanded (each is one execution and one terminal leaf).
    pub nodes: usize,
    /// Crash leaves executed.
    pub crash_leaves: usize,
    /// Children skipped by the sleep set.
    pub pruned: usize,
    /// Total executions (nodes + crash leaves + minimization replays).
    pub executions: usize,
    /// Deepest prefix expanded.
    pub max_depth: usize,
    /// The execution budget ran out before the bounded space was covered.
    pub budget_exhausted: bool,
}

/// A failed execution, minimized and rendered.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Minimized schedule prefix (trace tags).
    pub prefix: Vec<u32>,
    /// Crash injected at the frontier, if any.
    pub crash: Option<CrashSpec>,
    /// Oracle messages from the minimized execution.
    pub messages: Vec<String>,
    /// Human-readable schedule, step by step.
    pub schedule: Vec<String>,
}

/// Outcome of exploring one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// Counters.
    pub stats: ExploreStats,
    /// First violation found (exploration stops at it), minimized.
    pub violation: Option<Violation>,
}

struct Dfs<'a> {
    scenario: &'a Scenario,
    seed: u64,
    stats: ExploreStats,
}

enum Found {
    Violation(Vec<u32>, Option<CrashSpec>, Vec<String>),
    Budget,
}

impl Dfs<'_> {
    fn run_counted(
        &mut self,
        prefix: &[u32],
        crash: Option<&CrashSpec>,
    ) -> Result<RunResult, Found> {
        if self.stats.executions >= self.scenario.max_executions {
            self.stats.budget_exhausted = true;
            return Err(Found::Budget);
        }
        self.stats.executions += 1;
        Ok(run(self.scenario, self.seed, prefix, crash))
    }

    /// Expands the node `prefix`, whose own execution produced `res`.
    fn visit(&mut self, prefix: &mut Vec<u32>, res: RunResult, sleep: Vec<(u32, Vec<Access>)>) -> Result<(), Found> {
        self.stats.nodes += 1;
        self.stats.max_depth = self.stats.max_depth.max(prefix.len());
        if !res.ok() {
            return Err(Found::Violation(prefix.clone(), None, res.violations));
        }

        // Crash leaves: every enabled client, the MN, and both at once.
        let enabled_tasks: Vec<usize> = res
            .enabled
            .iter()
            .filter_map(|t| res.tag_task.get(t).copied())
            .collect();
        let mut crashes: Vec<CrashSpec> = enabled_tasks.iter().map(|&t| CrashSpec::Cn(t)).collect();
        if !enabled_tasks.is_empty() {
            crashes.push(CrashSpec::Mn);
            crashes.push(CrashSpec::CnAndMn(enabled_tasks[0]));
        }
        for crash in crashes {
            let leaf = self.run_counted(prefix, Some(&crash))?;
            self.stats.crash_leaves += 1;
            if !leaf.ok() {
                return Err(Found::Violation(
                    prefix.clone(),
                    Some(crash),
                    leaf.violations,
                ));
            }
        }

        // Children, in tag order, under the sleep set.
        if prefix.len() >= self.scenario.depth {
            return Ok(());
        }
        let mut taken: Vec<(u32, Vec<Access>)> = Vec::new();
        for &tag in &res.enabled {
            if sleep.iter().any(|(s, _)| *s == tag) {
                self.stats.pruned += 1;
                continue;
            }
            prefix.push(tag);
            let child = self.run_counted(prefix, None)?;
            let fp = child.step_fps.last().cloned().unwrap_or_default();
            let child_sleep: Vec<(u32, Vec<Access>)> = sleep
                .iter()
                .chain(taken.iter())
                .filter(|(_, sfp)| !footprints_conflict(sfp, &fp))
                .cloned()
                .collect();
            self.visit(prefix, child, child_sleep)?;
            prefix.pop();
            taken.push((tag, fp));
        }
        Ok(())
    }
}

/// Explores one scenario exhaustively to its depth bound. Deterministic:
/// same scenario + seed, same report.
pub fn explore(scenario: &Scenario, seed: u64) -> ScenarioReport {
    let mut dfs = Dfs {
        scenario,
        seed,
        stats: ExploreStats::default(),
    };
    let found = match dfs.run_counted(&[], None) {
        Ok(root) => dfs.visit(&mut Vec::new(), root, Vec::new()).err(),
        Err(f) => Some(f),
    };
    let violation = match found {
        None | Some(Found::Budget) => None,
        Some(Found::Violation(prefix, crash, messages)) => {
            Some(minimize(&mut dfs, prefix, crash, messages))
        }
    };
    ScenarioReport {
        name: scenario.name,
        stats: dfs.stats,
        violation,
    }
}

/// Shrinks a violating (prefix, crash) to the shortest prefix that still
/// reproduces a violation with the same crash, and renders the schedule.
fn minimize(
    dfs: &mut Dfs<'_>,
    prefix: Vec<u32>,
    crash: Option<CrashSpec>,
    messages: Vec<String>,
) -> Violation {
    let mut best_prefix = prefix.clone();
    let mut best_messages = messages;
    let mut best_res: Option<RunResult> = None;
    for k in 0..prefix.len() {
        // Minimization replays ignore the exploration budget: the
        // counterexample is already in hand and must be reported.
        dfs.stats.executions += 1;
        let r = run(dfs.scenario, dfs.seed, &prefix[..k], crash.as_ref());
        if !r.ok() {
            best_prefix = prefix[..k].to_vec();
            best_messages.clone_from(&r.violations);
            best_res = Some(r);
            break;
        }
    }
    let res = best_res.unwrap_or_else(|| {
        dfs.stats.executions += 1;
        run(dfs.scenario, dfs.seed, &best_prefix, crash.as_ref())
    });
    let schedule = render_schedule(&best_prefix, crash.as_ref(), &res);
    Violation {
        prefix: best_prefix,
        crash,
        messages: best_messages,
        schedule,
    }
}

fn render_schedule(prefix: &[u32], crash: Option<&CrashSpec>, res: &RunResult) -> Vec<String> {
    let mut lines = Vec::new();
    for (i, tag) in prefix.iter().enumerate() {
        let who = res
            .tag_task
            .get(tag)
            .map(|&t| client_letter(t).to_string())
            .unwrap_or_else(|| format!("tag{tag}"));
        let fp = res.step_fps.get(i);
        let detail = match fp {
            Some(f) if !f.is_empty() => {
                format!("{} verbs, first {}", f.len(), f[0])
            }
            _ => "no verbs".to_string(),
        };
        lines.push(format!("step {:>2}: deliver {who}  ({detail})", i + 1));
    }
    match crash {
        Some(c) => lines.push(format!("then  : {}", c.label())),
        None => lines.push("then  : no crash".to_string()),
    }
    lines.push("then  : drain to idle, recover, judge oracles".to_string());
    lines
}
