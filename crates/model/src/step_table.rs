//! The explorer's step table: every suspension point of the async client.
//!
//! The bounded checker's scheduling granularity is `DmClient::settle` —
//! each `.settle().await` in `aceso-core/src/client.rs` is one point
//! where a coroutine client suspends at a fabric round trip, i.e. one
//! place the explorer can reorder deliveries or inject a crash. This
//! table pins the full inventory, per client function, so the explored
//! step space is an explicit reviewed artifact: adding or removing a
//! suspension point without updating the table fails
//! [`check_step_table`] (run by `chaos explore --ci`) *and* the
//! sanitizer's mirror lint (`aceso-san::lint::lint_settle_coverage`,
//! run by `chaos analyze --ci`), which parses this file from source.

/// `(function, settle_sites, what suspends there)` for every function in
/// `crates/core/src/client.rs` containing a `.settle().await`.
pub const STEP_TABLE: &[(&str, usize, &str)] = &[
    ("classify_kv_read", 1, "degraded-read classification fetch"),
    ("commit_insert", 4, "bucket read, kv write, commit CAS, dup unwind"),
    (
        "commit_update",
        9,
        "meta lock probe loop, rollover lock CAS, in-place write, commit CAS",
    ),
    (
        "commit_update_pipelined",
        4,
        "speculative kv write, commit CAS, speculation-lost refetch",
    ),
    ("delete_async", 1, "tombstone commit round trip"),
    ("fetch_kv_degraded", 1, "parity-decode sibling reads"),
    ("flush_deferred_deltas", 1, "deferred delta write batch"),
    ("insert_async", 1, "slot readback verify"),
    ("locate_slot", 2, "bucket group read, stale-route retry"),
    ("read_and_verify", 1, "kv block read"),
    ("redo_pipelined", 6, "pipelined redo: refetch, kv write, commit CAS"),
    ("search_async", 1, "bucket + kv read"),
    ("search_candidates", 1, "candidate slot reads"),
    ("search_query", 1, "query round trip"),
    ("search_value_cache", 1, "cached-value revalidation read"),
    ("search_via_cache", 1, "cached-slot revalidation read"),
    ("unwind_fenced_place", 1, "fence rollback write"),
    ("update_async", 1, "slot readback verify"),
    ("upsert", 1, "insert-or-update dispatch read"),
    ("verify_kv", 2, "kv reread, checksum refetch"),
    ("write_kv", 1, "kv + delta write batch"),
];

/// Scans `crates/core/src/client.rs` and reports every drift between the
/// real `.settle().await` sites and [`STEP_TABLE`]: a function added,
/// removed, or whose site count changed. Empty = the explored step space
/// matches the code.
pub fn check_step_table() -> Vec<String> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../core/src/client.rs"
    );
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return vec![format!("step table: cannot read {path}: {e}")],
    };
    let actual = count_settle_sites(&src);
    let mut problems = Vec::new();
    for &(name, sites, _) in STEP_TABLE {
        match actual.get(name) {
            None => problems.push(format!(
                "step table: `{name}` listed with {sites} sites but has no .settle().await"
            )),
            Some(&n) if n != sites => problems.push(format!(
                "step table: `{name}` lists {sites} sites, source has {n}"
            )),
            Some(_) => {}
        }
    }
    for (name, n) in &actual {
        if !STEP_TABLE.iter().any(|&(t, _, _)| t == *name) {
            problems.push(format!(
                "step table: `{name}` has {n} .settle().await site(s) but is not in STEP_TABLE"
            ));
        }
    }
    problems
}

/// Counts `.settle().await` occurrences per enclosing `fn` in client
/// source text. Line-based, like the sanitizer's lints: a line declaring
/// `fn name(` switches the current function.
pub fn count_settle_sites(src: &str) -> std::collections::BTreeMap<String, usize> {
    let mut counts = std::collections::BTreeMap::new();
    let mut cur: Option<String> = None;
    for line in src.lines() {
        let t = line.trim_start();
        if let Some(name) = fn_decl_name(t) {
            cur = Some(name);
        }
        if line.contains(".settle().await") {
            let name = cur.clone().unwrap_or_else(|| "<toplevel>".to_string());
            *counts.entry(name).or_insert(0) += 1;
        }
    }
    counts
}

/// `Some(name)` when the trimmed line declares a function.
fn fn_decl_name(t: &str) -> Option<String> {
    let mut rest = t;
    for prefix in ["pub(crate) ", "pub ", "async "] {
        rest = rest.strip_prefix(prefix).unwrap_or(rest);
    }
    // A second pass picks up `pub async fn`.
    rest = rest.strip_prefix("async ").unwrap_or(rest);
    let rest = rest.strip_prefix("fn ")?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The table matches the code right now (the same check `chaos
    /// explore --ci` runs).
    #[test]
    fn step_table_matches_source() {
        let problems = check_step_table();
        assert!(problems.is_empty(), "{problems:#?}");
    }

    /// The scanner attributes sites to the right functions.
    #[test]
    fn scanner_attributes_sites() {
        let src = "\
impl Foo {
    pub async fn alpha(&self) {
        self.dm.settle().await;
        self.dm.settle().await;
    }
    fn beta() {}
    async fn gamma(&self) {
        self.dm.settle().await;
    }
}
";
        let counts = count_settle_sites(src);
        assert_eq!(counts.get("alpha"), Some(&2));
        assert_eq!(counts.get("beta"), None);
        assert_eq!(counts.get("gamma"), Some(&1));
    }

    /// Every table entry names a distinct function (no duplicate rows).
    #[test]
    fn step_table_has_no_duplicates() {
        let mut names: Vec<&str> = STEP_TABLE.iter().map(|&(n, _, _)| n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
