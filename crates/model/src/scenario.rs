//! Small-scope scenarios: the bounded checker's workloads.
//!
//! Each scenario is 2–3 scripted coroutine clients over 2–3 keys on a
//! tiny store geometry — small enough that the explorer can enumerate
//! every interleaving (to its depth bound) and crash every scheduling
//! point, large enough to cross the protocol's interesting windows
//! (commit CAS races, out-of-place writes, delete tombstones, version
//! rollover).

use aceso_core::{AcesoConfig, ModelMutation};

/// One scripted client operation over a scenario key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScriptOp {
    /// INSERT the key (fresh value).
    Insert(usize),
    /// UPDATE the key (fresh value).
    Update(usize),
    /// SEARCH the key.
    Search(usize),
    /// DELETE the key.
    Delete(usize),
}

impl ScriptOp {
    /// The scenario key the op touches.
    pub fn key(&self) -> usize {
        match self {
            ScriptOp::Insert(k) | ScriptOp::Update(k) | ScriptOp::Search(k) | ScriptOp::Delete(k) => {
                *k
            }
        }
    }
}

/// One bounded-exploration workload.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable name (report key).
    pub name: &'static str,
    /// Per-client op scripts (client 0 = task A, 1 = B, …).
    pub clients: Vec<Vec<ScriptOp>>,
    /// Keys preloaded before exploration (by key id); others start absent.
    pub preload: Vec<usize>,
    /// Extra blocking UPDATEs on key 0 before exploration — drives the
    /// slot version toward the 0xFF rollover so explored updates take the
    /// epoch-lock path.
    pub warmup_updates: usize,
    /// Protocol mutation injected into every scripted client (`None` for
    /// baseline scenarios, which must explore clean).
    pub mutation: Option<ModelMutation>,
    /// Whether the post-recovery lock-liveness probe client also carries
    /// the mutation (a mutation models a code bug, which every client in
    /// the fleet would share).
    pub probe_mutation: bool,
    /// Scheduling-choice depth bound: interleavings are enumerated
    /// exhaustively up to this many choices, then drained deterministically.
    pub depth: usize,
    /// Hard cap on executions (a wedged exploration fails loudly instead
    /// of burning the CI budget).
    pub max_executions: usize,
}

/// Number of distinct keys scenarios may use.
pub const NUM_KEYS: usize = 3;

/// The byte name of scenario key `k`.
pub fn key_bytes(k: usize) -> Vec<u8> {
    format!("mc-k{k}").into_bytes()
}

/// Human label of scenario key `k`.
pub fn key_name(k: usize) -> String {
    format!("mc-k{k}")
}

/// Client letter for reports (task 0 = "A").
pub fn client_letter(task: usize) -> char {
    (b'A' + task as u8) as char
}

/// The tiny store geometry every exploration run launches. Smallest
/// legal shape: 3 memory nodes (XCode needs a prime ≥ 3), two block
/// arrays, a handful of delta slots.
pub fn model_config() -> AcesoConfig {
    AcesoConfig {
        num_mns: 3,
        block_size: 4 << 10,
        num_arrays: 2,
        num_delta: 8,
        index_groups: 32,
        bitmap_flush_every: 8,
        elastic_groups: 2,
        ..AcesoConfig::small()
    }
}

/// Baseline scenarios: every interleaving and every crash must satisfy
/// every oracle.
pub fn baseline_scenarios() -> Vec<Scenario> {
    vec![
        // Two writers race their commit CAS on one key: the loser must
        // retry, never clobber.
        Scenario {
            name: "upd-upd",
            clients: vec![vec![ScriptOp::Update(0)], vec![ScriptOp::Update(0)]],
            preload: vec![0, 1],
            warmup_updates: 0,
            mutation: None,
            probe_mutation: false,
            depth: 6,
            max_executions: 1200,
        },
        // Writer vs reader on the same key, reader also covers a quiet
        // key: reads must see pre- or post-state, never a torn value.
        Scenario {
            name: "upd-srch",
            clients: vec![
                vec![ScriptOp::Update(0)],
                vec![ScriptOp::Search(0), ScriptOp::Search(1)],
            ],
            preload: vec![0, 1],
            warmup_updates: 0,
            mutation: None,
            probe_mutation: false,
            depth: 6,
            max_executions: 1200,
        },
        // Insert of a fresh key races a delete of an existing one:
        // allocation vs tombstone paths.
        Scenario {
            name: "ins-del",
            clients: vec![vec![ScriptOp::Insert(2)], vec![ScriptOp::Delete(0)]],
            preload: vec![0, 1],
            warmup_updates: 0,
            mutation: None,
            probe_mutation: false,
            depth: 6,
            max_executions: 1200,
        },
    ]
}

/// Mutation self-tests: each weakens one protocol edge; the explorer must
/// find a violation (and minimize it) or the checker is dead.
pub fn mutation_scenarios() -> Vec<Scenario> {
    vec![
        // Pretend the commit CAS landed without issuing it: the update is
        // acknowledged but the index still points at the old KV — the
        // verifier read contradicts the ack with no crash needed.
        Scenario {
            name: "mut-skip-commit-cas",
            clients: vec![vec![ScriptOp::Update(0)], vec![ScriptOp::Search(0)]],
            preload: vec![0, 1],
            warmup_updates: 0,
            mutation: Some(ModelMutation::SkipCommitCas),
            probe_mutation: false,
            depth: 4,
            max_executions: 1200,
        },
        // Defer the delta writes past the commit CAS: a crash in the
        // window leaves a committed slot whose deltas were never written,
        // so CN recovery cannot reconstruct a consistent image and the
        // key is lost — a verifier read of "absent" that no write in the
        // history explains.
        Scenario {
            name: "mut-reorder-delta",
            clients: vec![vec![ScriptOp::Update(0)], vec![ScriptOp::Search(0)]],
            preload: vec![0, 1],
            warmup_updates: 0,
            mutation: Some(ModelMutation::ReorderDeltaPastCommit),
            probe_mutation: false,
            depth: 16,
            max_executions: 2500,
        },
        // Never break an abandoned epoch lock: crash the writer inside
        // the version-rollover critical section and the post-recovery
        // probe update wedges forever.
        Scenario {
            name: "mut-skip-lock-break",
            clients: vec![vec![ScriptOp::Update(0)], vec![ScriptOp::Search(1)]],
            preload: vec![0, 1],
            warmup_updates: 254,
            mutation: Some(ModelMutation::SkipLockBreak),
            probe_mutation: true,
            depth: 14,
            max_executions: 2500,
        },
    ]
}
