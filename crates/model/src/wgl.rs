//! Wing&Gong-style linearizability checking over per-key register
//! histories.
//!
//! The explorer reduces every execution to a *history*: a sequence of
//! invocation/response events for INSERT / UPDATE / SEARCH / DELETE,
//! stamped with a global real-time counter (everything runs on one
//! executor thread, so the stamp order *is* real time). Each key is an
//! independent register — Aceso's protocol gives no cross-key ordering
//! promises — so the checker runs per key:
//!
//! * INSERT / UPDATE with an `Ok` response is a completed write of its
//!   value; DELETE is a completed write of "absent".
//! * SEARCH with an `Ok` response is a completed read of what it saw.
//! * An operation cut down by a crash (no response) is *pending*: it may
//!   be linearized at any point after its invocation, or dropped entirely
//!   — both are legal outcomes of a commit that never acknowledged.
//!
//! The history is linearizable iff the completed operations admit a total
//! order that (a) respects real time (`resp(a) < inv(b)` keeps `a` before
//! `b`), and (b) reads the register correctly, with pending writes
//! optionally spliced in. The search memoizes on (linearized set, last
//! writer), which makes the tiny per-key histories (≤ 64 ops) instant.

use std::collections::HashSet;

/// What one operation did to its key's register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyOpKind {
    /// INSERT/UPDATE of `Some(v)`, DELETE writes `None`.
    Write(Option<Vec<u8>>),
    /// SEARCH observing `Some(v)` or absence.
    Read(Option<Vec<u8>>),
}

/// One operation of a single-key history.
#[derive(Clone, Debug)]
pub struct KeyOp {
    /// Register effect / observation.
    pub kind: KeyOpKind,
    /// Invocation stamp (global real-time counter).
    pub inv: u64,
    /// Response stamp; `None` marks a pending (crash-cut) operation.
    pub resp: Option<u64>,
    /// Task label for counterexample messages.
    pub who: String,
}

impl KeyOp {
    fn is_completed(&self) -> bool {
        self.resp.is_some()
    }
}

/// Whether `ops` is a linearizable single-register history starting from
/// `initial`. Pending reads must not be passed in (a read that never
/// returned constrains nothing — drop it before calling).
pub fn check_key(initial: Option<&[u8]>, ops: &[KeyOp]) -> bool {
    assert!(ops.len() <= 64, "per-key history too large for the mask");
    assert!(
        ops.iter()
            .all(|o| o.is_completed() || matches!(o.kind, KeyOpKind::Write(_))),
        "pending reads must be dropped before checking"
    );
    let full: u64 = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_completed())
        .map(|(i, _)| 1u64 << i)
        .fold(0, |m, b| m | b);
    // `last` = index of the last linearized write (None = initial value).
    let mut seen: HashSet<(u64, usize)> = HashSet::new();
    let mut stack: Vec<(u64, Option<usize>)> = vec![(0, None)];
    while let Some((mask, last)) = stack.pop() {
        if mask & full == full {
            return true;
        }
        if !seen.insert((mask, last.map_or(0, |i| i + 1))) {
            continue;
        }
        let reg: Option<&[u8]> = match last {
            None => initial,
            Some(i) => match &ops[i].kind {
                KeyOpKind::Write(v) => v.as_deref(),
                KeyOpKind::Read(_) => unreachable!("last always indexes a write"),
            },
        };
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) != 0 {
                continue;
            }
            // Minimality: `op` may go next only if every operation that
            // finished before `op` even started is already linearized.
            let blocked = ops.iter().enumerate().any(|(j, r)| {
                j != i && mask & (1 << j) == 0 && r.resp.is_some_and(|resp| resp < op.inv)
            });
            if blocked {
                continue;
            }
            match &op.kind {
                KeyOpKind::Read(saw) => {
                    if saw.as_deref() == reg {
                        stack.push((mask | (1 << i), last));
                    }
                }
                KeyOpKind::Write(_) => stack.push((mask | (1 << i), Some(i))),
            }
        }
    }
    false
}

/// Renders a single-key history for counterexample reports, in stamp
/// order.
pub fn render_history(key: &str, initial: Option<&[u8]>, ops: &[KeyOp]) -> Vec<String> {
    let mut lines = vec![format!(
        "history of {key} (initial {}):",
        fmt_val(initial)
    )];
    let mut sorted: Vec<&KeyOp> = ops.iter().collect();
    sorted.sort_by_key(|o| o.inv);
    for o in sorted {
        let span = match o.resp {
            Some(r) => format!("[{}..{r}]", o.inv),
            None => format!("[{}..crash]", o.inv),
        };
        let what = match &o.kind {
            KeyOpKind::Write(v) => format!("WRITE {}", fmt_val(v.as_deref())),
            KeyOpKind::Read(v) => format!("READ -> {}", fmt_val(v.as_deref())),
        };
        lines.push(format!("  {span:<14} {:<10} {what}", o.who));
    }
    lines
}

fn fmt_val(v: Option<&[u8]>) -> String {
    match v {
        None => "absent".to_string(),
        Some(b) => format!("{:?}", String::from_utf8_lossy(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: &str, inv: u64, resp: impl Into<Option<u64>>, who: &str) -> KeyOp {
        KeyOp {
            kind: KeyOpKind::Write(Some(v.as_bytes().to_vec())),
            inv,
            resp: resp.into(),
            who: who.to_string(),
        }
    }

    fn r(v: Option<&str>, inv: u64, resp: u64, who: &str) -> KeyOp {
        KeyOp {
            kind: KeyOpKind::Read(v.map(|s| s.as_bytes().to_vec())),
            inv,
            resp: Some(resp),
            who: who.to_string(),
        }
    }

    /// A concurrent writer/reader pair where the read may order on either
    /// side of the overlapping write, plus a final read of the new value.
    #[test]
    fn accepts_known_good_history() {
        let ops = [
            w("b", 0, 3, "A"),
            r(Some("a"), 1, 2, "B"), // overlaps the write: reads old — fine
            r(Some("b"), 4, 5, "B"),
        ];
        assert!(check_key(Some(b"a"), &ops));
    }

    /// A pending (crash-cut) write may be dropped or spliced in; both
    /// explanations of a post-crash read must be accepted.
    #[test]
    fn accepts_pending_write_either_way() {
        let pending = KeyOp {
            kind: KeyOpKind::Write(Some(b"b".to_vec())),
            inv: 0,
            resp: None,
            who: "A".to_string(),
        };
        // Dropped: later read sees the initial value.
        assert!(check_key(
            Some(b"a"),
            &[pending.clone(), r(Some("a"), 1, 2, "V")]
        ));
        // Took effect: later read sees the written value.
        assert!(check_key(Some(b"a"), &[pending, r(Some("b"), 1, 2, "V")]));
    }

    /// The satellite's canonical rejection: a stale read *after* an
    /// acknowledged update is not linearizable.
    #[test]
    fn rejects_stale_read_after_acked_update() {
        let ops = [
            w("b", 0, 1, "A"),       // acknowledged
            r(Some("a"), 2, 3, "B"), // strictly later, still sees old
        ];
        assert!(!check_key(Some(b"a"), &ops));
    }

    /// The satellite's torn history: two reads observe a single write in
    /// opposite orders — no total order explains both.
    #[test]
    fn rejects_torn_history() {
        let ops = [
            w("b", 0, 5, "A"),
            r(Some("b"), 1, 2, "B"), // write already visible...
            r(Some("a"), 3, 4, "B"), // ...then gone again
        ];
        assert!(!check_key(Some(b"a"), &ops));
    }

    /// Deletes are writes of "absent".
    #[test]
    fn handles_deletes() {
        let del = KeyOp {
            kind: KeyOpKind::Write(None),
            inv: 0,
            resp: Some(1),
            who: "A".to_string(),
        };
        assert!(check_key(Some(b"a"), &[del.clone(), r(None, 2, 3, "V")]));
        assert!(!check_key(Some(b"a"), &[del, r(Some("a"), 2, 3, "V")]));
    }

    /// Real-time order is enforced even when values would match some
    /// reordering: `resp(a) < inv(b)` pins `a` before `b`.
    #[test]
    fn respects_real_time_precedence() {
        let ops = [
            w("b", 0, 1, "A"),
            w("c", 2, 3, "A"),
            r(Some("b"), 4, 5, "B"), // must come after both writes
        ];
        assert!(!check_key(Some(b"a"), &ops));
    }
}
