//! End-to-end smoke tests for the bounded checker: single executions,
//! determinism, and one full (tiny) exploration.

use aceso_model::exec::{run, CrashSpec};
use aceso_model::scenario::baseline_scenarios;

const SEED: u64 = 0xACE50;

#[test]
fn default_schedule_passes_cleanly() {
    let scenarios = baseline_scenarios();
    let s = &scenarios[1]; // upd-srch
    let res = run(s, SEED, &[], None);
    assert!(res.ok(), "{:#?}", res.violations);
}

#[test]
fn root_frontier_exposes_enabled_set() {
    let scenarios = baseline_scenarios();
    let s = &scenarios[0]; // upd-upd: two writers
    // With an empty prefix the run pauses at the first quiescent point
    // (every task suspended at its first round trip) before draining, so
    // `enabled` is the root frontier: both writers pending.
    let r0 = run(s, SEED, &[], None);
    assert!(r0.ok(), "{:#?}", r0.violations);
    assert_eq!(r0.enabled.len(), 2, "{:?}", r0.enabled);
    // Delivering one choice re-arms the same client at its next settle.
    let r1 = run(s, SEED, &r0.enabled[..1], None);
    assert!(r1.ok(), "{:#?}", r1.violations);
    assert_eq!(r1.enabled.len(), 2, "{:?}", r1.enabled);
    assert_eq!(r1.step_fps.len(), 1);
}

#[test]
fn crash_at_root_frontier_recovers() {
    let scenarios = baseline_scenarios();
    let s = &scenarios[0];
    let r0 = run(s, SEED, &[], None);
    let tags = r0.enabled.clone();
    for crash in [CrashSpec::Cn(0), CrashSpec::Mn, CrashSpec::CnAndMn(0)] {
        let r = run(s, SEED, &tags[..1], Some(&crash));
        assert!(r.ok(), "{}: {:#?}", crash.label(), r.violations);
    }
}

#[test]
fn executions_are_deterministic() {
    let scenarios = baseline_scenarios();
    let s = &scenarios[0];
    let r0 = run(s, SEED, &[], None);
    let tags = r0.enabled.clone();
    let a = run(s, SEED, &tags[..1], Some(&CrashSpec::Mn));
    let b = run(s, SEED, &tags[..1], Some(&CrashSpec::Mn));
    assert_eq!(a.enabled, b.enabled);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.step_fps.len(), b.step_fps.len());
    for (x, y) in a.step_fps.iter().zip(&b.step_fps) {
        assert_eq!(x.len(), y.len());
        for (p, q) in x.iter().zip(y) {
            assert_eq!(format!("{p}"), format!("{q}"));
        }
    }
}
