//! Exploration-level tests, kept cheap for `cargo test`: shallow depth
//! bounds on the baseline (full-depth exploration runs in CI via
//! `chaos explore --ci`), and the one mutation that needs no schedule.

use aceso_model::{baseline_scenarios, explore, mutation_scenarios};

const SEED: u64 = 0xACE50;

/// A shallow baseline exploration is clean: every interleaving to depth
/// 2 and every crash of those scheduling points passes all oracles.
#[test]
fn shallow_baseline_explores_clean() {
    let mut s = baseline_scenarios()
        .into_iter()
        .find(|s| s.name == "upd-srch")
        .unwrap();
    s.depth = 2;
    let r = explore(&s, SEED);
    assert!(r.violation.is_none(), "{:#?}", r.violation);
    assert!(!r.stats.budget_exhausted);
    assert!(r.stats.nodes >= 3, "{:?}", r.stats);
    assert!(r.stats.crash_leaves > 0, "{:?}", r.stats);
}

/// The skip-commit-CAS mutation is caught immediately (no crash, no
/// schedule): the acknowledged update never becomes visible.
#[test]
fn skip_commit_cas_is_caught_and_minimized() {
    let s = mutation_scenarios()
        .into_iter()
        .find(|s| s.name == "mut-skip-commit-cas")
        .unwrap();
    let r = explore(&s, SEED);
    let v = r.violation.expect("mutation must be caught");
    assert!(v.prefix.is_empty(), "minimal counterexample: {:?}", v.prefix);
    assert!(v.crash.is_none());
    assert!(
        v.messages.iter().any(|m| m.contains("non-linearizable")),
        "{:#?}",
        v.messages
    );
    assert!(!v.schedule.is_empty());
}

/// Same seed, same exploration: stats and violation render identically.
#[test]
fn exploration_is_deterministic() {
    let mut s = baseline_scenarios()
        .into_iter()
        .find(|s| s.name == "upd-upd")
        .unwrap();
    s.depth = 2;
    let a = explore(&s, SEED);
    let b = explore(&s, SEED);
    assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
    assert_eq!(
        format!("{:?}", a.violation),
        format!("{:?}", b.violation)
    );
}

/// The sleep set actually prunes commuting siblings somewhere in a
/// 2-writer exploration.
#[test]
fn sleep_sets_prune() {
    let mut s = baseline_scenarios()
        .into_iter()
        .find(|s| s.name == "upd-srch")
        .unwrap();
    s.depth = 3;
    let r = explore(&s, SEED);
    assert!(r.violation.is_none(), "{:#?}", r.violation);
    assert!(r.stats.pruned > 0, "{:?}", r.stats);
}
