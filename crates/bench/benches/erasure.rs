//! Erasure-code kernels: X-Code vs Reed-Solomon (the paper's Table 2
//! "Test Tpt" comparison, from first principles).

use aceso_erasure::{xor_into, ReedSolomon, XCode};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const CELL: usize = 256 << 10;

fn data_cells(n: usize, len: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| (0..len).map(|b| ((b * 31 + i * 7) & 0xFF) as u8).collect())
        .collect()
}

fn bench_xor(c: &mut Criterion) {
    let mut g = c.benchmark_group("xor");
    g.sample_size(20);
    g.throughput(Throughput::Bytes((6 * CELL) as u64));
    let cells = data_cells(6, CELL);
    g.bench_function("parity_from_6_cells", |b| {
        let mut parity = vec![0u8; CELL];
        b.iter(|| {
            parity.fill(0);
            for d in &cells {
                xor_into(&mut parity, d);
            }
            std::hint::black_box(parity[0])
        });
    });
    g.finish();
}

fn bench_rs(c: &mut Criterion) {
    let mut g = c.benchmark_group("reed_solomon");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((6 * CELL) as u64));
    let rs = ReedSolomon::new(6, 2).unwrap();
    let cells = data_cells(6, CELL);
    let refs: Vec<&[u8]> = cells.iter().map(|d| d.as_slice()).collect();
    g.bench_function("encode_6_2", |b| {
        b.iter(|| std::hint::black_box(rs.encode(&refs).unwrap()));
    });
    let parity = rs.encode(&refs).unwrap();
    g.bench_function("reconstruct_two", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = cells
                .iter()
                .cloned()
                .chain(parity.iter().cloned())
                .map(Some)
                .collect();
            shards[1] = None;
            shards[4] = None;
            rs.reconstruct(&mut shards).unwrap();
            std::hint::black_box(shards[1].as_ref().unwrap()[0])
        });
    });
    g.finish();
}

fn bench_xcode(c: &mut Criterion) {
    let mut g = c.benchmark_group("xcode");
    g.sample_size(10);
    let code = XCode::new(5).unwrap();
    let small = 64 << 10;
    let data: Vec<Vec<Vec<u8>>> = (0..3)
        .map(|k| {
            data_cells(5, small)
                .into_iter()
                .map(|mut v| {
                    v[0] ^= k as u8;
                    v
                })
                .collect()
        })
        .collect();
    g.throughput(Throughput::Bytes((15 * small) as u64));
    g.bench_function("encode_n5", |b| {
        b.iter(|| std::hint::black_box(code.encode(&data).unwrap()));
    });
    let (diag, anti) = code.encode(&data).unwrap();
    g.bench_function("reconstruct_two_columns", |b| {
        b.iter(|| {
            let mut stripe: Vec<Vec<Option<Vec<u8>>>> = data
                .iter()
                .map(|row| row.iter().cloned().map(Some).collect())
                .collect();
            stripe.push(diag.iter().cloned().map(Some).collect());
            stripe.push(anti.iter().cloned().map(Some).collect());
            for row in stripe.iter_mut() {
                row[0] = None;
                row[3] = None;
            }
            code.reconstruct(&mut stripe).unwrap();
            std::hint::black_box(stripe[0][0].as_ref().unwrap()[0])
        });
    });
    g.finish();
}

criterion_group!(benches, bench_xor, bench_rs, bench_xcode);
criterion_main!(benches);
