//! End-to-end store operations: single-client op cost in the simulated
//! fabric (protocol CPU cost, not modeled NIC throughput).

use aceso_core::{AcesoConfig, AcesoStore};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_store(c: &mut Criterion) {
    let store = AcesoStore::launch(AcesoConfig {
        num_arrays: 32,
        num_delta: 48,
        index_groups: 8192,
        block_size: 256 << 10,
        // Criterion drives millions of writes: reclaim eagerly so the
        // Block Area stays bounded for the whole run.
        reclaim_free_ratio: 1.1,
        ..AcesoConfig::small()
    })
    .unwrap();
    let mut client = store.client().unwrap();
    for i in 0..20_000u32 {
        let key = format!("bench-{i:06}");
        client.insert(key.as_bytes(), &[0xAB; 400]).unwrap();
    }

    let mut g = c.benchmark_group("store");
    g.sample_size(30);
    g.bench_function("search_cached", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let key = format!("bench-{:06}", i % 20_000);
            std::hint::black_box(client.search(key.as_bytes()).unwrap())
        });
    });
    g.bench_function("update_1kb", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let key = format!("bench-{:06}", i % 20_000);
            client
                .update(key.as_bytes(), &[(i & 0xFF) as u8; 400])
                .unwrap();
        });
    });
    g.bench_function("upsert_cycling", |b| {
        // Cycle a bounded fresh keyspace: the first pass inserts, wraps
        // update — space stays bounded through delta-based reclamation.
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("fresh-{:08}", i % 30_000);
            client.insert(key.as_bytes(), &[1u8; 400]).unwrap();
        });
    });
    g.bench_function("checkpoint_round", |b| {
        b.iter(|| std::hint::black_box(store.checkpoint_tick().unwrap().len()));
    });
    g.finish();
    client.close_open_blocks().unwrap();
    store.shutdown();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
