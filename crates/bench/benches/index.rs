//! Index-path kernels: bucket scans, slot CAS, snapshotting.

use aceso_index::{fingerprint, IndexLayout, RemoteIndex, SlotAtomic};
use aceso_rdma::{Cluster, ClusterConfig, CostModel, NodeId};
use criterion::{criterion_group, criterion_main, Criterion};

fn setup() -> (std::sync::Arc<Cluster>, RemoteIndex) {
    let cluster = Cluster::new(ClusterConfig {
        num_mns: 1,
        region_len: 64 << 20,
        cost: CostModel::default(),
    });
    let idx = RemoteIndex::new(NodeId(0), IndexLayout::new(0, 32_768));
    (cluster, idx)
}

fn bench_index(c: &mut Criterion) {
    let (cluster, idx) = setup();
    let dm = cluster.client();

    // Populate some slots.
    for i in 0..10_000u32 {
        let key = format!("bench-{i}");
        let fp = fingerprint(key.as_bytes());
        let scan = idx.scan(&dm, key.as_bytes(), fp).unwrap();
        if let Some(&slot) = scan.empties.first() {
            let _ = idx.cas_atomic(
                &dm,
                slot,
                SlotAtomic::default(),
                SlotAtomic {
                    fp,
                    addr48: 1 << 20,
                    ver: 1,
                },
            );
        }
    }

    let mut g = c.benchmark_group("index");
    g.sample_size(30);
    g.bench_function("scan_two_combined_buckets", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let key = format!("bench-{}", i % 10_000);
            let fp = fingerprint(key.as_bytes());
            std::hint::black_box(idx.scan(&dm, key.as_bytes(), fp).unwrap().matches.len())
        });
    });
    g.bench_function("slot_cas", |b| {
        let addr = idx.slot_addr(0, 0);
        let mut ver = 0u8;
        b.iter(|| {
            let old = idx.read_slot(&dm, addr).unwrap();
            ver = ver.wrapping_add(1);
            let new = SlotAtomic {
                fp: 1,
                addr48: 64,
                ver,
            };
            std::hint::black_box(idx.cas_atomic(&dm, addr, old.atomic, new).unwrap())
        });
    });
    g.bench_function("snapshot_12MiB_index", |b| {
        let region = &cluster.node(NodeId(0)).unwrap().region;
        b.iter(|| std::hint::black_box(idx.snapshot(region).len()));
    });
    g.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
