//! Checkpoint-delta compression kernels (the pipeline of Figure 19).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const LEN: usize = 4 << 20;

/// A realistic checkpoint delta: mostly zeros, ~1% dirty 16 B slots.
fn sparse_delta() -> Vec<u8> {
    let mut v = vec![0u8; LEN];
    let slots = LEN / 16;
    let mut x = 0x1234_5678u64;
    for _ in 0..slots / 100 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let s = (x as usize) % slots;
        v[s * 16] = (x >> 33) as u8 | 1;
        v[s * 16 + 3] = (x >> 41) as u8;
    }
    v
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(LEN as u64));
    let delta = sparse_delta();
    g.bench_function("compress_sparse_delta", |b| {
        b.iter(|| std::hint::black_box(aceso_codec::compress(&delta)));
    });
    let compressed = aceso_codec::compress(&delta);
    g.bench_function("decompress_sparse_delta", |b| {
        b.iter(|| std::hint::black_box(aceso_codec::decompress(&compressed, LEN).unwrap()));
    });
    // Dense (worst-case) input: compression must stay linear.
    let dense: Vec<u8> = (0..LEN)
        .map(|i| {
            let x = (i as u64).wrapping_mul(6364136223846793005);
            (x >> 33) as u8
        })
        .collect();
    g.bench_function("compress_dense", |b| {
        b.iter(|| std::hint::black_box(aceso_codec::compress(&dense).len()));
    });
    g.finish();
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
