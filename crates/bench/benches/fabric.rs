//! Simulated-fabric verb overhead: the substrate must stay far cheaper
//! than the protocols built on it.

use aceso_rdma::{Cluster, ClusterConfig, CostModel, GlobalAddr, NodeId};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_fabric(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterConfig {
        num_mns: 2,
        region_len: 16 << 20,
        cost: CostModel::default(),
    });
    let dm = cluster.client();
    let addr = GlobalAddr::new(NodeId(0), 4096);

    let mut g = c.benchmark_group("fabric");
    g.sample_size(50);
    g.bench_function("cas", |b| {
        let mut v = 0u64;
        b.iter(|| {
            let prev = dm.cas(addr, v, v + 1).unwrap();
            v = prev + 1;
            std::hint::black_box(prev)
        });
    });
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("write_1k", |b| {
        let buf = [7u8; 1024];
        b.iter(|| dm.write(addr.add(64), &buf).unwrap());
    });
    g.bench_function("read_1k", |b| {
        let mut buf = [0u8; 1024];
        b.iter(|| {
            dm.read(addr.add(64), &mut buf).unwrap();
            std::hint::black_box(buf[0])
        });
    });
    g.throughput(Throughput::Bytes(256 << 10));
    g.bench_function("read_256k_block", |b| {
        let mut buf = vec![0u8; 256 << 10];
        b.iter(|| {
            dm.read(GlobalAddr::new(NodeId(1), 0), &mut buf).unwrap();
            std::hint::black_box(buf[0])
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
