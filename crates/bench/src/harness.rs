//! Phase runner: drive real clients, collect the verb profile, report
//! through the cost model.

use aceso_core::{AcesoConfig, AcesoStore, StoreError};
use aceso_fusee::{FuseeConfig, FuseeStore};
use aceso_rdma::{CostModel, OpKind, OpRecord, PhaseMeasurement};
use aceso_workloads::{value_for, Op, Request};
use std::sync::Arc;

/// Sizing knobs for a benchmark phase.
#[derive(Clone, Copy, Debug)]
pub struct BenchScale {
    /// Real driver threads (the 1-core CI default keeps this small; the
    /// verb *profile* per op is what matters, not wall-clock parallelism).
    pub threads: usize,
    /// Simulated client count fed to the cost model's closed-loop bound
    /// (the paper runs 184 clients on 23 CNs).
    pub sim_clients: usize,
    /// Preloaded key count.
    pub keys: u64,
    /// Total measured operations across all threads.
    pub ops: usize,
    /// Per-thread warm-up operations executed (and discarded) before
    /// measurement, so caches and open blocks reach steady state — the
    /// paper measures steady-state throughput. Set to 0 for INSERT/DELETE
    /// phases, whose semantics are one-shot per key.
    pub warmup: usize,
    /// Value length; the default yields the paper's 1024 B KV pairs
    /// (16 B header + 16 B key + value + trailer).
    pub value_len: usize,
}

impl Default for BenchScale {
    fn default() -> Self {
        BenchScale {
            threads: 2,
            sim_clients: 184,
            keys: 20_000,
            ops: 20_000,
            warmup: 20_000,
            value_len: 991,
        }
    }
}

impl BenchScale {
    /// A minimal scale for smoke tests.
    pub fn tiny() -> Self {
        BenchScale {
            threads: 2,
            sim_clients: 32,
            keys: 500,
            ops: 1_000,
            warmup: 500,
            value_len: 200,
        }
    }
}

/// The measured outcome of a phase, ready for the cost model.
pub struct Phase {
    /// Cost-model input.
    pub m: PhaseMeasurement,
    /// The model that produced the cluster.
    pub cost: CostModel,
}

impl Phase {
    /// Full report.
    pub fn report(&self) -> aceso_rdma::PhaseReport {
        self.cost.report(&self.m)
    }

    /// Replaces per-node demand with the across-node average.
    ///
    /// The paper's 184 clients place their open blocks i.i.d. across MNs,
    /// so per-node block-write load is near-uniform; a handful of driver
    /// threads parks each open block on one node for thousands of ops,
    /// which would misattribute that lumpiness to the system. Used by the
    /// block-size sweep (Figure 20), where the artifact is largest.
    pub fn uniformize(&mut self) {
        let n = self.m.node_fg.len().max(1) as u64;
        let sum = self
            .m
            .node_fg
            .iter()
            .fold(aceso_rdma::stats::VerbSnapshot::default(), |acc, s| {
                acc.plus(s)
            });
        let avg = aceso_rdma::stats::VerbSnapshot {
            reads: sum.reads / n,
            writes: sum.writes / n,
            cas: sum.cas / n,
            faa: sum.faa / n,
            rpcs: sum.rpcs / n,
            read_bytes: sum.read_bytes / n,
            write_bytes: sum.write_bytes / n,
            batched: sum.batched / n,
        };
        for s in &mut self.m.node_fg {
            *s = avg;
        }
    }

    /// Throughput restricted to one op kind: the phase's overall operating
    /// point scaled by the kind's share of operations.
    pub fn latency_for(&self, kind: OpKind) -> aceso_rdma::LatencyReport {
        self.cost.latency(&self.m, Some(kind))
    }
}

/// Default store configuration used by figures (bigger than
/// [`AcesoConfig::small`], still laptop-friendly).
pub fn bench_aceso_config() -> AcesoConfig {
    AcesoConfig {
        num_arrays: 96,
        num_delta: 96,
        index_groups: 4096,
        block_size: 256 << 10,
        ..AcesoConfig::small()
    }
}

/// FUSEE configuration of matching capacity.
pub fn bench_fusee_config() -> FuseeConfig {
    FuseeConfig {
        index_groups: 4096,
        block_size: 256 << 10,
        blocks_per_mn: 1600,
        ..FuseeConfig::small()
    }
}

fn apply_aceso(client: &mut aceso_core::AcesoClient, req: &Request) {
    let r = match req.op {
        Op::Insert => client
            .insert(&req.key, &value_for(&req.key, 0, req.value_len))
            .map(|_| ()),
        Op::Update => {
            match client.update(&req.key, &value_for(&req.key, 1, req.value_len)) {
                // A deleted or never-loaded key under a synthetic mix:
                // count as an upsert, like YCSB's read-modify-write.
                Err(StoreError::NotFound) => client
                    .insert(&req.key, &value_for(&req.key, 1, req.value_len))
                    .map(|_| ()),
                other => other,
            }
        }
        Op::Search => client.search(&req.key).map(|_| ()),
        Op::Delete => client.delete(&req.key).map(|_| ()),
    };
    r.expect("workload op failed");
}

fn apply_fusee(client: &mut aceso_fusee::FuseeClient, req: &Request) {
    let r = match req.op {
        Op::Insert => client.insert(&req.key, &value_for(&req.key, 0, req.value_len)),
        Op::Update => match client.update(&req.key, &value_for(&req.key, 1, req.value_len)) {
            Err(aceso_fusee::FuseeError::NotFound) => {
                client.insert(&req.key, &value_for(&req.key, 1, req.value_len))
            }
            other => other,
        },
        Op::Search => client.search(&req.key).map(|_| ()),
        Op::Delete => client.delete(&req.key).map(|_| ()),
    };
    r.expect("workload op failed");
}

/// Preloads keys into Aceso from several threads.
pub fn preload_aceso(
    store: &Arc<AcesoStore>,
    keys: impl Iterator<Item = Vec<u8>>,
    value_len: usize,
) {
    let mut client = store.client().expect("client");
    for key in keys {
        client
            .insert(&key, &value_for(&key, 0, value_len))
            .expect("preload");
    }
    client.close_open_blocks().expect("close");
}

/// Preloads keys into FUSEE.
pub fn preload_fusee(
    store: &Arc<FuseeStore>,
    keys: impl Iterator<Item = Vec<u8>>,
    value_len: usize,
) {
    let mut client = store.client();
    for key in keys {
        client
            .insert(&key, &value_for(&key, 0, value_len))
            .expect("preload");
    }
}

/// Runs a measured phase against Aceso.
///
/// `make_stream(thread_id)` builds each thread's request stream;
/// `bg_bytes_per_sec` is the per-node background traffic rate (checkpoint
/// transmission) to charge against NIC bandwidth.
pub fn aceso_phase<W, F>(
    store: &Arc<AcesoStore>,
    scale: BenchScale,
    bg_bytes_per_sec: Vec<f64>,
    make_stream: F,
) -> Phase
where
    W: Iterator<Item = Request> + Send + 'static,
    F: Fn(u32) -> W,
{
    let per_thread = scale.ops / scale.threads;
    let warmup = scale.warmup;
    let barrier = Arc::new(std::sync::Barrier::new(scale.threads));
    let cluster = Arc::clone(&store.cluster);
    let handles: Vec<_> = (0..scale.threads as u32)
        .map(|t| {
            let stream = make_stream(t);
            let store = Arc::clone(store);
            let barrier = Arc::clone(&barrier);
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut client = store.client().expect("client");
                let mut stream = stream;
                for req in (&mut stream).take(warmup) {
                    apply_aceso(&mut client, &req);
                }
                if barrier.wait().is_leader() {
                    cluster.reset_traffic();
                }
                barrier.wait();
                client.dm.reset_stats();
                let mut recs: Vec<OpRecord> = Vec::with_capacity(per_thread);
                for req in stream.take(per_thread) {
                    apply_aceso(&mut client, &req);
                }
                let _ = client.flush_bitmaps();
                recs.extend(client.dm.take_ops().records);
                recs
            })
        })
        .collect();
    let mut records = Vec::with_capacity(scale.ops);
    for h in handles {
        records.extend(h.join().expect("phase thread"));
    }
    let node_fg: Vec<_> = store
        .cluster
        .nodes()
        .iter()
        .map(|n| n.traffic.snapshot())
        .collect();
    let mut bg = bg_bytes_per_sec;
    bg.resize(node_fg.len(), 0.0);
    Phase {
        m: PhaseMeasurement {
            n_clients: scale.sim_clients,
            node_fg,
            bg_bytes_per_sec: bg,
            records,
            pipeline_depth: None,
        },
        cost: store.cfg.cost,
    }
}

/// Runs a measured phase against the FUSEE baseline.
pub fn fusee_phase<W, F>(store: &Arc<FuseeStore>, scale: BenchScale, make_stream: F) -> Phase
where
    W: Iterator<Item = Request> + Send + 'static,
    F: Fn(u32) -> W,
{
    let per_thread = scale.ops / scale.threads;
    let warmup = scale.warmup;
    let barrier = Arc::new(std::sync::Barrier::new(scale.threads));
    let cluster = Arc::clone(&store.cluster);
    let handles: Vec<_> = (0..scale.threads as u32)
        .map(|t| {
            let mut stream = make_stream(t);
            let store = Arc::clone(store);
            let barrier = Arc::clone(&barrier);
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut client = store.client();
                for req in (&mut stream).take(warmup) {
                    apply_fusee(&mut client, &req);
                }
                if barrier.wait().is_leader() {
                    cluster.reset_traffic();
                }
                barrier.wait();
                client.dm.reset_stats();
                for req in stream.take(per_thread) {
                    apply_fusee(&mut client, &req);
                }
                client.dm.take_ops().records
            })
        })
        .collect();
    let mut records = Vec::with_capacity(scale.ops);
    for h in handles {
        records.extend(h.join().expect("phase thread"));
    }
    let node_fg: Vec<_> = store
        .cluster
        .nodes()
        .iter()
        .map(|n| n.traffic.snapshot())
        .collect();
    let bg = vec![0.0; node_fg.len()];
    Phase {
        m: PhaseMeasurement {
            n_clients: scale.sim_clients,
            node_fg,
            bg_bytes_per_sec: bg,
            records,
            pipeline_depth: None,
        },
        cost: store.cfg.cost,
    }
}

/// Measures the sustained checkpoint traffic rate per node under the
/// current index state: one synchronized round's compressed deltas divided
/// by the interval. Node `c` pays for sending its delta and receiving its
/// left neighbour's.
pub fn ckpt_bg_rate(store: &Arc<AcesoStore>, interval_ms: u64) -> Vec<f64> {
    let n = store.cfg.num_mns;
    let reports = store.checkpoint_tick().expect("tick");
    let mut bg = vec![0.0f64; store.cluster.len()];
    let secs = interval_ms as f64 / 1e3;
    for (col, rep) in reports.iter().enumerate() {
        let rate = rep.compressed_len as f64 / secs;
        bg[col] += rate; // Sender's NIC.
        bg[(col + 1) % n] += rate; // Receiver's NIC.
    }
    bg
}

/// Sums a background byte rate uniformly over the first `n` nodes
/// (synthetic interference for Figure 1b).
pub fn uniform_bg(n: usize, bytes_per_sec: f64) -> Vec<f64> {
    vec![bytes_per_sec; n]
}

/// Discards measured verbs of the warm-up and keeps the phase honest: call
/// between preload and measurement.
pub fn reset_all(store: &Arc<AcesoStore>) {
    store.cluster.reset_traffic();
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_workloads::{MicroWorkload, Op};

    #[test]
    fn aceso_phase_produces_profile() {
        let mut cfg = AcesoConfig::small();
        cfg.index_groups = 1024;
        let store = AcesoStore::launch(cfg).unwrap();
        let scale = BenchScale::tiny();
        for t in 0..scale.threads as u32 {
            preload_aceso(
                &store,
                MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len).preload_keys(),
                scale.value_len,
            );
        }
        let phase = aceso_phase(&store, scale, vec![], |t| {
            MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len)
        });
        assert_eq!(
            phase.m.records.len(),
            scale.ops / scale.threads * scale.threads
        );
        let rep = phase.report();
        assert!(rep.mops > 0.0);
        // Updates must cost exactly one CAS each in Aceso.
        let avg_cas: f64 = phase.m.records.iter().map(|r| r.cas as f64).sum::<f64>()
            / phase.m.records.len() as f64;
        assert!((1.0..1.2).contains(&avg_cas), "avg cas {avg_cas}");
        store.shutdown();
    }

    #[test]
    fn fusee_phase_costs_more_cas() {
        let store = FuseeStore::launch(FuseeConfig::small());
        let scale = BenchScale::tiny();
        for t in 0..scale.threads as u32 {
            preload_fusee(
                &store,
                MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len).preload_keys(),
                scale.value_len,
            );
        }
        let phase = fusee_phase(&store, scale, |t| {
            MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len)
        });
        let avg_cas: f64 = phase.m.records.iter().map(|r| r.cas as f64).sum::<f64>()
            / phase.m.records.len() as f64;
        assert!(avg_cas >= 3.0, "r=3 needs ≥3 CAS, got {avg_cas}");
    }

    #[test]
    fn ckpt_rate_reflects_delta_size() {
        let store = AcesoStore::launch(AcesoConfig::small()).unwrap();
        let mut c = store.client().unwrap();
        for i in 0..500u32 {
            c.insert(format!("bg-{i}").as_bytes(), b"value").unwrap();
        }
        let bg = ckpt_bg_rate(&store, 500);
        assert!(bg.iter().any(|&b| b > 0.0));
        store.shutdown();
    }
}
