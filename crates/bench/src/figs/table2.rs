//! Table 2 — impact of the erasure code on MN recovery (paper §4.5).
//!
//! The XOR row is the real recovery breakdown of this implementation
//! (X-Code). The RS row re-runs the compute-bound decode stages with the
//! Reed-Solomon kernels' measured throughput — the same data volumes, a
//! slower code — mirroring how the paper isolates the code's effect. The
//! `Test Tpt` column benchmarks both codes generating one parity block
//! from six source blocks, like the paper's ISA-L test.

use crate::figs::FigureOutput;
use crate::harness::BenchScale;
use aceso_core::RecoveryReport;
use aceso_erasure::{ReedSolomon, XCode};
use std::time::Instant;

/// Measures both codes' encode throughput (GB/s): one parity block from
/// six 2 MB source blocks (the paper's ISA-L test shape).
pub fn codec_throughput() -> (f64, f64) {
    const BLOCK: usize = 2 << 20;
    const SOURCES: usize = 6;
    let data: Vec<Vec<u8>> = (0..SOURCES)
        .map(|i| {
            (0..BLOCK)
                .map(|b| ((b * 31 + i * 7) & 0xFF) as u8)
                .collect()
        })
        .collect();
    let bytes = (BLOCK * SOURCES) as f64;

    // XOR (X-Code's kernel): parity = ⊕ sources.
    let mut parity = vec![0u8; BLOCK];
    let t = Instant::now();
    let reps = 8;
    for _ in 0..reps {
        parity.fill(0);
        for d in &data {
            aceso_erasure::xor_into(&mut parity, d);
        }
    }
    let xor_gbs = bytes * reps as f64 / t.elapsed().as_secs_f64() / 1e9;

    // RS: parity = Σ c_j · d_j over GF(2^8).
    let rs = ReedSolomon::new(SOURCES, 1).unwrap();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let t = Instant::now();
    let reps = 2;
    for _ in 0..reps {
        let _ = rs.encode(&refs).unwrap();
    }
    let rs_gbs = bytes * reps as f64 / t.elapsed().as_secs_f64() / 1e9;
    let _ = XCode::new(5).unwrap();
    (xor_gbs, rs_gbs)
}

fn row(name: &str, r: &RecoveryReport, tpt: f64) -> String {
    format!(
        "{name:4} | {:5.1} | {:5.1} | {:7.1} ({:4}) | {:7.1} ({:4}) | {:6.1} ({:7}) | {:8.1} ({:4}) | {:7.1} | {:5.1} GB/s\n",
        r.read_meta_ms,
        r.read_ckpt_ms,
        r.recover_lblock_ms,
        r.lblock_count,
        r.read_rblock_ms,
        r.rblock_count,
        r.scan_kv_ms,
        r.kv_count,
        r.recover_old_lblock_ms,
        r.old_lblock_count,
        r.total_ms(),
        tpt,
    )
}

/// Runs the recovery breakdown.
pub fn table2(scale: BenchScale) -> FigureOutput {
    // Build up state and crash one MN (mirrors the Degraded Search setup
    // but recovering all three areas).
    let report =
        super::fig16_18::crash_and_recover_public(scale.keys, scale.keys / 10, scale.value_len);

    let (xor_gbs, rs_gbs) = codec_throughput();
    // The RS variant scales the decode-compute stages by the kernels'
    // measured throughput ratio (the network part is identical).
    let slow = xor_gbs / rs_gbs;
    let rs_report = RecoveryReport {
        recover_lblock_ms: report.recover_lblock_ms * slow,
        recover_old_lblock_ms: report.recover_old_lblock_ms * slow,
        ..report
    };

    let mut text = String::from(
        "MN recovery breakdown (ms; counts in parentheses)\n\
         code | Meta  | Ckpt  | Recover LBlock | Read RBlock    | Scan KV         | Recover OldLBlk | Total   | Test Tpt\n",
    );
    text.push_str(&row("XOR", &report, xor_gbs));
    text.push_str(&row("RS", &rs_report, rs_gbs));
    text.push_str(&format!(
        "XOR vs RS: decode kernel {:.1}x faster; total recovery {:.0}% shorter\n",
        xor_gbs / rs_gbs,
        (1.0 - report.total_ms() / rs_report.total_ms()) * 100.0
    ));
    FigureOutput {
        id: "Table 2",
        text,
    }
}
