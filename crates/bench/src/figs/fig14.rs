//! Figure 14 — degraded SEARCH and space-reclaimed UPDATE (paper §4.4).
//!
//! Left: after an MN crash and Index-tier-only recovery, SEARCHes that hit
//! lost blocks reconstruct the slot range from a parity chain — the paper
//! measures ≈0.53× of normal throughput.
//! Right: UPDATEs that overwrite obsolete slots in reclaimed blocks pay an
//! extra block read up front — ≈0.97× of normal.

use crate::figs::FigureOutput;
use crate::harness::{self, BenchScale};
use aceso_core::{recover_mn_with, AcesoConfig, AcesoStore};
use aceso_workloads::{MicroWorkload, Op};

fn search_phase(store: &std::sync::Arc<AcesoStore>, scale: BenchScale) -> f64 {
    let phase = harness::aceso_phase(store, scale, vec![], |t| {
        MicroWorkload::new(t, Op::Search, scale.keys, scale.value_len)
    });
    phase.report().mops
}

/// Degraded SEARCH vs normal SEARCH.
pub fn degraded_search(scale: BenchScale) -> (f64, f64) {
    let store = AcesoStore::launch(harness::bench_aceso_config()).unwrap();
    for t in 0..scale.threads as u32 {
        harness::preload_aceso(
            &store,
            MicroWorkload::new(t, Op::Search, scale.keys, scale.value_len).preload_keys(),
            scale.value_len,
        );
    }
    let normal = search_phase(&store, scale);

    // Two rounds so the preloaded blocks are strictly *older* than the
    // checkpoint and stay lost after Index-tier-only recovery.
    store.checkpoint_tick().unwrap();
    store.checkpoint_tick().unwrap();
    store.kill_mn(1);
    recover_mn_with(&store, 1, false).unwrap(); // Index tier only.
    let degraded = search_phase(&store, scale);
    store.shutdown();
    (normal, degraded)
}

/// Space-reclaimed UPDATE vs normal UPDATE.
pub fn reclaimed_update(scale: BenchScale) -> (f64, f64) {
    // Normal: plenty of space, no reclamation.
    let store = AcesoStore::launch(harness::bench_aceso_config()).unwrap();
    for t in 0..scale.threads as u32 {
        harness::preload_aceso(
            &store,
            MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len).preload_keys(),
            scale.value_len,
        );
    }
    let phase = harness::aceso_phase(&store, scale, vec![], |t| {
        MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len)
    });
    let normal = phase.report().mops;
    store.shutdown();

    // Special: a pool small enough that updates run on reclaimed blocks.
    let kv_class = (16 + 17 + scale.value_len + 1).div_ceil(64) as u64 * 64;
    let bytes_needed = scale.keys * kv_class;
    let cfg = harness::bench_aceso_config();
    let arrays = (bytes_needed * 3 / 2 / (cfg.block_size * 3)).max(2);
    let store = AcesoStore::launch(AcesoConfig {
        num_arrays: arrays,
        reclaim_free_ratio: 1.1, // Reclaim aggressively.
        ..cfg
    })
    .unwrap();
    for t in 0..scale.threads as u32 {
        harness::preload_aceso(
            &store,
            MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len).preload_keys(),
            scale.value_len,
        );
    }
    // Warm up through one full overwrite cycle so reclamation kicks in.
    let warm = harness::aceso_phase(&store, scale, vec![], |t| {
        MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len)
    });
    drop(warm);
    let phase = harness::aceso_phase(&store, scale, vec![], |t| {
        MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len)
    });
    let special = phase.report().mops;
    store.shutdown();
    (normal, special)
}

/// Renders both panels.
pub fn fig14(scale: BenchScale) -> FigureOutput {
    let (sn, sd) = degraded_search(scale);
    let (un, ur) = reclaimed_update(scale);
    let text = format!(
        "Degraded SEARCH:  normal {:6.2} Mops | degraded {:6.2} Mops | ratio {:4.2}x\n\
         Reclaimed UPDATE: normal {:6.2} Mops | reclaimed {:5.2} Mops | ratio {:4.2}x\n",
        sn,
        sd,
        sd / sn,
        un,
        ur,
        ur / un,
    );
    FigureOutput {
        id: "Figure 14",
        text,
    }
}
