//! Figure 20 — memory block size sweep (paper §4.5): UPDATE throughput and
//! index recovery time as blocks grow 16 KB → 16 MB.
//!
//! Small blocks inflate recovery with per-block round trips and make
//! clients ask the servers for blocks constantly; large blocks leave
//! bigger unfilled blocks to decode during Index-tier recovery.

use crate::figs::FigureOutput;
use crate::harness::{self, BenchScale};
use aceso_core::{recover_mn, AcesoConfig, AcesoStore};
use aceso_workloads::{MicroWorkload, Op};

fn cfg_for_block_size(bs: u64, keys: u64, value_len: usize) -> AcesoConfig {
    let base = harness::bench_aceso_config();
    let kv_class = (16 + 17 + value_len + 1).div_ceil(64) as u64 * 64;
    let need = keys * kv_class * 3;
    let arrays = (need / (bs * 3) + 8).max(4);
    AcesoConfig {
        block_size: bs,
        num_arrays: arrays,
        num_delta: (arrays / 2).max(16),
        ..base
    }
}

/// Runs the block-size sweep.
pub fn fig20(scale: BenchScale) -> FigureOutput {
    let mut text = String::from("Block-size sweep\nblock    | UPDATE Mops | index recovery (ms)\n");
    for bs_kb in [16u64, 64, 256, 1024, 4096] {
        let bs = bs_kb << 10;
        let store =
            AcesoStore::launch(cfg_for_block_size(bs, scale.keys, scale.value_len)).unwrap();
        for t in 0..scale.threads as u32 {
            harness::preload_aceso(
                &store,
                MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len).preload_keys(),
                scale.value_len,
            );
        }
        let mut phase = harness::aceso_phase(&store, scale, vec![], |t| {
            MicroWorkload::new(t, Op::Update, scale.keys, scale.value_len)
        });
        phase.uniformize();
        let mops = phase.report().mops;
        store.checkpoint_tick().unwrap();
        store.checkpoint_tick().unwrap();
        store.kill_mn(3);
        let r = recover_mn(&store, 3).unwrap();
        text.push_str(&format!(
            "{bs_kb:5} KB | {:11.2} | {:8.1}\n",
            mops,
            r.index_tier_ms()
        ));
        store.shutdown();
    }
    FigureOutput {
        id: "Figure 20",
        text,
    }
}
