//! One module per paper table/figure. Each `run()` prints the same rows or
//! series the paper reports and returns the formatted text so the
//! `figures` binary can also persist it under `results/`.

pub mod ablation;
pub mod fig1;
pub mod fig10_11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16_18;
pub mod fig19;
pub mod fig20;
pub mod fig8_9;
pub mod mn_cpu;
pub mod table2;

/// A rendered experiment: a title plus the table body.
pub struct FigureOutput {
    /// e.g. "Figure 8".
    pub id: &'static str,
    /// The rendered table.
    pub text: String,
}

impl FigureOutput {
    /// Prints to stdout with a header rule.
    pub fn print(&self) {
        println!("\n===== {} =====", self.id);
        println!("{}", self.text);
    }
}
