//! Figure 15 — throughput as the UPDATE:SEARCH ratio sweeps 0% → 100%
//! (paper §4.5).

use crate::figs::FigureOutput;
use crate::harness::{self, BenchScale};
use aceso_core::AcesoStore;
use aceso_fusee::FuseeStore;
use aceso_workloads::{MixedWorkload, OpMix, YcsbWorkload};

/// Runs the update-ratio sweep.
pub fn fig15(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "Throughput (Mops) vs UPDATE ratio, Zipfian θ=0.99\nupdate% |   Aceso |   FUSEE\n",
    );
    for pct in [0u32, 25, 50, 75, 100] {
        let mix = OpMix {
            search: 1.0 - pct as f64 / 100.0,
            update: pct as f64 / 100.0,
            insert: 0.0,
            delete: 0.0,
        };
        let store = AcesoStore::launch(harness::bench_aceso_config()).unwrap();
        harness::preload_aceso(
            &store,
            YcsbWorkload::preload_keys(scale.keys),
            scale.value_len,
        );
        let bg = harness::ckpt_bg_rate(&store, store.cfg.ckpt_interval_ms);
        let a = harness::aceso_phase(&store, scale, bg, |t| {
            MixedWorkload::new(mix, scale.keys, 0.99, scale.value_len, t, 42)
        });
        store.shutdown();

        let fstore = FuseeStore::launch(harness::bench_fusee_config());
        harness::preload_fusee(
            &fstore,
            YcsbWorkload::preload_keys(scale.keys),
            scale.value_len,
        );
        let f = harness::fusee_phase(&fstore, scale, |t| {
            MixedWorkload::new(mix, scale.keys, 0.99, scale.value_len, t, 42)
        });
        text.push_str(&format!(
            "{pct:6}% | {:7.2} | {:7.2}\n",
            a.report().mops,
            f.report().mops
        ));
    }
    FigureOutput {
        id: "Figure 15",
        text,
    }
}
