//! Figure 13 — factor analysis (paper §4.4): the step-by-step evolution
//! from FUSEE to Aceso.
//!
//! * `ORIGIN`  — the FUSEE baseline (8 B slots, replicated index, value
//!   cache).
//! * `+SLOT`   — index slots widened 8 B → 16 B: bucket reads double, which
//!   hurts the bandwidth-bound SEARCH and barely moves IOPS-bound writes.
//! * `+CKPT`   — index replication replaced by checkpointing: one CAS per
//!   write instead of `r`; reads pay a little bandwidth to checkpoint
//!   transmission. Modeled as Aceso with the value-only cache.
//! * `+CACHE`  — the full Aceso: the cache also stores slot addresses, so a
//!   cached read validates with a 16 B slot re-read instead of re-scanning
//!   buckets.

use crate::figs::FigureOutput;
use crate::harness::{self, BenchScale};
use aceso_core::{AcesoStore, ClientTuning};
use aceso_fusee::{FuseeConfig, FuseeStore};
use aceso_workloads::{MicroWorkload, Op};

fn aceso_variant(scale: BenchScale, tuning: ClientTuning, op: Op) -> f64 {
    let store = AcesoStore::launch(harness::bench_aceso_config()).unwrap();
    if op != Op::Insert {
        for t in 0..scale.threads as u32 {
            harness::preload_aceso(
                &store,
                MicroWorkload::new(t, op, scale.keys, scale.value_len).preload_keys(),
                scale.value_len,
            );
        }
    }
    let bg = harness::ckpt_bg_rate(&store, store.cfg.ckpt_interval_ms);
    let store2 = Arc::clone(&store);
    let phase = {
        // Custom phase that applies the tuning to every thread's client.
        let per_thread = scale.ops / scale.threads;
        let barrier = Arc::new(std::sync::Barrier::new(scale.threads));
        let handles: Vec<_> = (0..scale.threads as u32)
            .map(|t| {
                let store = Arc::clone(&store2);
                let barrier = Arc::clone(&barrier);
                let base = if op == Op::Insert { t + 100 } else { t };
                let stream = MicroWorkload::new(base, op, scale.keys, scale.value_len);
                std::thread::spawn(move || {
                    let mut client = store.client_with(tuning).unwrap();
                    let mut stream = stream;
                    // Warm-up pass (skipped for one-shot INSERT phases).
                    let warm = if op == Op::Insert { 0 } else { scale.warmup };
                    for req in (&mut stream).take(warm) {
                        let v = aceso_workloads::value_for(&req.key, 1, req.value_len);
                        let _ = match req.op {
                            Op::Insert => client.insert(&req.key, &v).map(|_| ()),
                            Op::Update => client.update(&req.key, &v),
                            Op::Search => client.search(&req.key).map(|_| ()),
                            Op::Delete => client.delete(&req.key).map(|_| ()),
                        };
                    }
                    if barrier.wait().is_leader() {
                        store.cluster.reset_traffic();
                    }
                    barrier.wait();
                    client.dm.reset_stats();
                    for req in stream.take(per_thread) {
                        let v = aceso_workloads::value_for(&req.key, 1, req.value_len);
                        let _ = match req.op {
                            Op::Insert => client.insert(&req.key, &v).map(|_| ()),
                            Op::Update => client.update(&req.key, &v),
                            Op::Search => client.search(&req.key).map(|_| ()),
                            Op::Delete => client.delete(&req.key).map(|_| ()),
                        };
                    }
                    client.dm.take_ops().records
                })
            })
            .collect();
        let mut records = Vec::new();
        for h in handles {
            records.extend(h.join().unwrap());
        }
        let node_fg: Vec<_> = store
            .cluster
            .nodes()
            .iter()
            .map(|n| n.traffic.snapshot())
            .collect();
        let mut bg = bg;
        bg.resize(node_fg.len(), 0.0);
        harness::Phase {
            m: aceso_rdma::PhaseMeasurement {
                n_clients: scale.sim_clients,
                node_fg,
                bg_bytes_per_sec: bg,
                records,
                pipeline_depth: None,
            },
            cost: store.cfg.cost,
        }
    };
    let mops = phase.report().mops;
    store.shutdown();
    mops
}

use std::sync::Arc;

fn fusee_variant(scale: BenchScale, wide_slots: bool, op: Op) -> f64 {
    let cfg = FuseeConfig {
        wide_slots,
        ..harness::bench_fusee_config()
    };
    let store = FuseeStore::launch(cfg);
    if op != Op::Insert {
        for t in 0..scale.threads as u32 {
            harness::preload_fusee(
                &store,
                MicroWorkload::new(t, op, scale.keys, scale.value_len).preload_keys(),
                scale.value_len,
            );
        }
    }
    let phase = harness::fusee_phase(&store, scale, |t| {
        let base = if op == Op::Insert { t + 100 } else { t };
        MicroWorkload::new(base, op, scale.keys, scale.value_len)
    });
    phase.report().mops
}

/// Runs the four factor steps for UPDATE and SEARCH.
pub fn fig13(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "Factor analysis (Mops): ORIGIN → +SLOT → +CKPT → +CACHE\nstep    |  UPDATE |  SEARCH\n",
    );
    let value_cache = ClientTuning {
        use_cache: true,
        cache_slot_addr: false,
        ..ClientTuning::default()
    };
    let full = ClientTuning::default();
    type Step<'a> = (&'a str, Box<dyn Fn(Op) -> f64>);
    let steps: Vec<Step> = vec![
        (
            "ORIGIN",
            Box::new(move |op| fusee_variant(scale, false, op)),
        ),
        ("+SLOT", Box::new(move |op| fusee_variant(scale, true, op))),
        (
            "+CKPT",
            Box::new(move |op| aceso_variant(scale, value_cache, op)),
        ),
        ("+CACHE", Box::new(move |op| aceso_variant(scale, full, op))),
    ];
    for (name, f) in steps {
        text.push_str(&format!(
            "{name:7} | {:7.2} | {:7.2}\n",
            f(Op::Update),
            f(Op::Search)
        ));
    }
    FigureOutput {
        id: "Figure 13",
        text,
    }
}
