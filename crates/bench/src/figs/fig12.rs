//! Figure 12 — memory distribution after a bulk write phase (paper §4.4):
//! Valid / Redundancy / Delta bytes for both systems; Aceso saves ≈44%.

use crate::figs::FigureOutput;
use crate::fmt_bytes;
use crate::harness::{self, BenchScale};
use aceso_core::AcesoStore;
use aceso_fusee::FuseeStore;
use aceso_workloads::{value_for, MicroWorkload, Op};

/// Runs the bulk-write memory accounting.
pub fn fig12(scale: BenchScale) -> FigureOutput {
    // Aceso: bulk insert, then measure the Block Area.
    let store = AcesoStore::launch(harness::bench_aceso_config()).unwrap();
    let mut client = store.client().unwrap();
    for req in
        MicroWorkload::new(0, Op::Insert, scale.keys, scale.value_len).take(scale.keys as usize)
    {
        client
            .insert(&req.key, &value_for(&req.key, 0, req.value_len))
            .unwrap();
    }
    client.flush_bitmaps().unwrap();
    client.close_open_blocks().unwrap();
    let usage = store.memory_usage();
    store.shutdown();

    // FUSEE: same data, r-way replicated.
    let fstore = FuseeStore::launch(harness::bench_fusee_config());
    let mut fclient = fstore.client();
    let mut fusee_valid = 0u64;
    for req in
        MicroWorkload::new(0, Op::Insert, scale.keys, scale.value_len).take(scale.keys as usize)
    {
        fclient
            .insert(&req.key, &value_for(&req.key, 0, req.value_len))
            .unwrap();
        fusee_valid += ((8 + req.key.len() + req.value_len).div_ceil(64) * 64) as u64;
    }
    let fusee_redundancy = fusee_valid * (fstore.cfg.replicas as u64 - 1);

    let aceso_total = usage.total();
    let fusee_total = fusee_valid + fusee_redundancy;
    let text = format!(
        "Memory distribution after writing {} KVs of ~1 KB\n\
         system |      Valid |  Redundancy |      Delta |      Total\n\
         Aceso  | {:>10} | {:>11} | {:>10} | {:>10}\n\
         FUSEE  | {:>10} | {:>11} | {:>10} | {:>10}\n\
         Aceso saves {:.0}% total space vs FUSEE\n",
        scale.keys,
        fmt_bytes(usage.valid),
        fmt_bytes(usage.redundancy),
        fmt_bytes(usage.delta),
        fmt_bytes(aceso_total),
        fmt_bytes(fusee_valid),
        fmt_bytes(fusee_redundancy),
        fmt_bytes(0),
        fmt_bytes(fusee_total),
        (1.0 - aceso_total as f64 / fusee_total as f64) * 100.0,
    );
    FigureOutput {
        id: "Figure 12",
        text,
    }
}
