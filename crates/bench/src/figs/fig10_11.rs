//! Figures 10 & 11 — macrobenchmarks: YCSB A–D and Twitter cluster mixes
//! (paper §4.3).

use crate::figs::FigureOutput;
use crate::harness::{self, BenchScale};
use aceso_core::AcesoStore;
use aceso_fusee::FuseeStore;
use aceso_workloads::ycsb::YcsbKind;
use aceso_workloads::{TwitterCluster, YcsbWorkload};

const THETA: f64 = 0.99;

fn run_pair<F, G, WA, WF>(scale: BenchScale, make_aceso: F, make_fusee: G) -> (f64, f64)
where
    WA: Iterator<Item = aceso_workloads::Request> + Send + 'static,
    WF: Iterator<Item = aceso_workloads::Request> + Send + 'static,
    F: Fn(u32) -> WA,
    G: Fn(u32) -> WF,
{
    let store = AcesoStore::launch(harness::bench_aceso_config()).unwrap();
    harness::preload_aceso(
        &store,
        YcsbWorkload::preload_keys(scale.keys),
        scale.value_len,
    );
    let bg = harness::ckpt_bg_rate(&store, store.cfg.ckpt_interval_ms);
    let a = harness::aceso_phase(&store, scale, bg, make_aceso);
    store.shutdown();

    let fstore = FuseeStore::launch(harness::bench_fusee_config());
    harness::preload_fusee(
        &fstore,
        YcsbWorkload::preload_keys(scale.keys),
        scale.value_len,
    );
    let f = harness::fusee_phase(&fstore, scale, make_fusee);
    (a.report().mops, f.report().mops)
}

/// Figure 10: YCSB A/B/C/D throughput.
pub fn fig10(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "YCSB throughput (Mops), Zipfian θ=0.99\nworkload |   Aceso |   FUSEE | ratio\n",
    );
    for kind in YcsbKind::ALL {
        let (a, f) = run_pair(
            scale,
            |t| YcsbWorkload::new(kind, scale.keys, THETA, scale.value_len, t, 42),
            |t| YcsbWorkload::new(kind, scale.keys, THETA, scale.value_len, t, 42),
        );
        text.push_str(&format!(
            "{:8} | {:7.2} | {:7.2} | {:4.2}x\n",
            kind.name(),
            a,
            f,
            a / f
        ));
    }
    FigureOutput {
        id: "Figure 10",
        text,
    }
}

/// Figure 11: Twitter cluster mixes.
pub fn fig11(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "Twitter-trace throughput (Mops), synthetic cluster mixes\ncluster   |   Aceso |   FUSEE | ratio\n",
    );
    for cluster in TwitterCluster::ALL {
        let (a, f) = run_pair(
            scale,
            |t| {
                aceso_workloads::twitter::TwitterWorkload::new(
                    cluster,
                    scale.keys,
                    THETA,
                    scale.value_len,
                    t,
                    42,
                )
            },
            |t| {
                aceso_workloads::twitter::TwitterWorkload::new(
                    cluster,
                    scale.keys,
                    THETA,
                    scale.value_len,
                    t,
                    42,
                )
            },
        );
        text.push_str(&format!(
            "{:9} | {:7.2} | {:7.2} | {:4.2}x\n",
            cluster.name(),
            a,
            f,
            a / f
        ));
    }
    FigureOutput {
        id: "Figure 11",
        text,
    }
}
