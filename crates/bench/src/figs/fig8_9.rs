//! Figures 8 & 9 — microbenchmark throughput and P50/P99 latency,
//! Aceso vs FUSEE, for INSERT / UPDATE / SEARCH / DELETE (paper §4.2).

use crate::figs::FigureOutput;
use crate::harness::{self, BenchScale, Phase};
use aceso_core::AcesoStore;
use aceso_fusee::FuseeStore;
use aceso_rdma::OpKind;
use aceso_workloads::{MicroWorkload, Op};

fn op_kind(op: Op) -> OpKind {
    match op {
        Op::Insert => OpKind::Insert,
        Op::Update => OpKind::Update,
        Op::Search => OpKind::Search,
        Op::Delete => OpKind::Delete,
    }
}

/// Runs one micro phase per op type for both systems; returns
/// `(aceso, fusee)` phases per op.
pub fn micro_phases(scale: BenchScale) -> Vec<(Op, Phase, Phase)> {
    let mut out = Vec::new();
    for op in [Op::Insert, Op::Update, Op::Search, Op::Delete] {
        // One-shot ops (INSERT of fresh keys, DELETE) measure cold; UPDATE
        // and SEARCH measure warm steady state like the paper.
        let scale = BenchScale {
            warmup: if matches!(op, Op::Insert | Op::Delete) {
                0
            } else {
                scale.warmup
            },
            ..scale
        };
        // Aceso, with live checkpoint interference at the default 500 ms.
        let store = AcesoStore::launch(harness::bench_aceso_config()).unwrap();
        if op != Op::Insert {
            for t in 0..scale.threads as u32 {
                harness::preload_aceso(
                    &store,
                    MicroWorkload::new(t, op, scale.keys, scale.value_len).preload_keys(),
                    scale.value_len,
                );
            }
        }
        let bg = harness::ckpt_bg_rate(&store, store.cfg.ckpt_interval_ms);
        let aceso = harness::aceso_phase(&store, scale, bg, |t| {
            let base = if op == Op::Insert { t + 100 } else { t };
            MicroWorkload::new(base, op, scale.keys, scale.value_len)
        });
        store.shutdown();

        let fstore = FuseeStore::launch(harness::bench_fusee_config());
        if op != Op::Insert {
            for t in 0..scale.threads as u32 {
                harness::preload_fusee(
                    &fstore,
                    MicroWorkload::new(t, op, scale.keys, scale.value_len).preload_keys(),
                    scale.value_len,
                );
            }
        }
        let fusee = harness::fusee_phase(&fstore, scale, |t| {
            let base = if op == Op::Insert { t + 100 } else { t };
            MicroWorkload::new(base, op, scale.keys, scale.value_len)
        });
        out.push((op, aceso, fusee));
    }
    out
}

/// Figure 8: throughput with coefficients normalized to FUSEE.
pub fn fig8(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "Microbenchmark throughput (Mops)\nop      |   Aceso |   FUSEE | Aceso/FUSEE\n",
    );
    for (op, a, f) in micro_phases(scale) {
        let (ar, fr) = (a.report(), f.report());
        let prof = |p: &Phase| {
            let n = p.m.records.len().max(1) as f64;
            let (v, c, b, r) = p.m.records.iter().fold((0u64, 0u64, 0u64, 0u64), |acc, x| {
                (
                    acc.0 + x.verbs as u64,
                    acc.1 + x.cas as u64,
                    acc.2 + x.read_bytes as u64 + x.write_bytes as u64,
                    acc.3 + x.rtts as u64,
                )
            });
            format!(
                "verbs {:.1} cas {:.1} bytes {:.0} rtts {:.1}",
                v as f64 / n,
                c as f64 / n,
                b as f64 / n,
                r as f64 / n
            )
        };
        text.push_str(&format!(
            "{:7} | {:7.2} | {:7.2} | {:10.2}x   [aceso {} @{} | fusee {} @{}]\n",
            op_kind(op).name(),
            ar.mops,
            fr.mops,
            ar.mops / fr.mops,
            prof(&a),
            ar.bottleneck.label(),
            prof(&f),
            fr.bottleneck.label(),
        ));
    }
    FigureOutput {
        id: "Figure 8",
        text,
    }
}

/// Figure 9: P50/P99 latencies.
pub fn fig9(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "Microbenchmark latency (µs)\nop      | Aceso P50 | Aceso P99 | FUSEE P50 | FUSEE P99\n",
    );
    for (op, a, f) in micro_phases(scale) {
        let (al, fl) = (a.latency_for(op_kind(op)), f.latency_for(op_kind(op)));
        text.push_str(&format!(
            "{:7} | {:9.1} | {:9.1} | {:9.1} | {:9.1}\n",
            op_kind(op).name(),
            al.p50_us,
            al.p99_us,
            fl.p50_us,
            fl.p99_us
        ));
    }
    FigureOutput {
        id: "Figure 9",
        text,
    }
}
