//! Figures 16, 17 and 18 — recovery-time and checkpoint-interval sweeps
//! (paper §4.5).
//!
//! * Fig 16: MN recovery time per area as the lost data size grows: the
//!   Meta and Index tiers stay flat, the Block tier scales linearly.
//! * Fig 17: foreground throughput vs checkpoint interval.
//! * Fig 18: recovery time per area vs checkpoint interval: longer
//!   intervals leave more post-checkpoint KVs to scan in the Index tier.

use crate::figs::FigureOutput;
use crate::harness::{self, BenchScale};
use aceso_core::{recover_mn, AcesoConfig, AcesoStore, RecoveryReport};
use aceso_workloads::{MicroWorkload, Op};
use std::sync::Arc;

fn store_with_capacity(keys: u64, value_len: usize) -> Arc<AcesoStore> {
    let cfg = harness::bench_aceso_config();
    let kv_class = (16 + 17 + value_len + 1).div_ceil(64) as u64 * 64;
    let need = keys * kv_class * 2;
    let arrays = (need / (cfg.block_size * 3) + 8).max(cfg.num_arrays);
    AcesoStore::launch(AcesoConfig {
        num_arrays: arrays,
        num_delta: arrays,
        ..cfg
    })
    .unwrap()
}

/// Writes `keys` KVs, checkpoints, optionally writes `post_keys` more, then
/// kills one MN and recovers it.
fn crash_and_recover(keys: u64, post_keys: u64, value_len: usize) -> RecoveryReport {
    let store = store_with_capacity(keys + post_keys, value_len);
    let mut client = store.client().unwrap();
    for req in MicroWorkload::new(0, Op::Insert, keys, value_len).take(keys as usize) {
        client
            .insert(
                &req.key,
                &aceso_workloads::value_for(&req.key, 0, req.value_len),
            )
            .unwrap();
    }
    client.close_open_blocks().unwrap();
    // Two rounds: the preloaded blocks become strictly older than the
    // checkpoint (the Block tier's work), only `post_keys` stay "new".
    store.checkpoint_tick().unwrap();
    store.checkpoint_tick().unwrap();
    for req in MicroWorkload::new(1000, Op::Insert, post_keys, value_len).take(post_keys as usize) {
        client
            .insert(
                &req.key,
                &aceso_workloads::value_for(&req.key, 0, req.value_len),
            )
            .unwrap();
    }
    client.close_open_blocks().unwrap();
    store.kill_mn(2);
    let report = recover_mn(&store, 2).unwrap();
    store.shutdown();
    report
}

/// Public wrapper for Table 2's use of the same crash/recover setup.
pub fn crash_and_recover_public(keys: u64, post_keys: u64, value_len: usize) -> RecoveryReport {
    crash_and_recover(keys, post_keys, value_len)
}

/// Figure 16: lost-data-size sweep.
pub fn fig16(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "MN recovery time (ms) vs lost data size\nkeys     |  Meta |  Index |  Block |  Total\n",
    );
    for mult in [1u64, 2, 4, 8] {
        let keys = scale.keys * mult / 4;
        let r = crash_and_recover(keys, keys / 20, scale.value_len);
        text.push_str(&format!(
            "{keys:8} | {:5.1} | {:6.1} | {:6.1} | {:6.1}\n",
            r.read_meta_ms,
            r.read_ckpt_ms + r.recover_lblock_ms + r.read_rblock_ms + r.scan_kv_ms,
            r.recover_old_lblock_ms,
            r.total_ms(),
        ));
    }
    FigureOutput {
        id: "Figure 16",
        text,
    }
}

/// Figure 17: throughput vs checkpoint interval.
pub fn fig17(scale: BenchScale) -> FigureOutput {
    let mut text =
        String::from("Throughput (Mops) vs checkpoint interval\ninterval |  UPDATE |  SEARCH\n");
    for interval_ms in [100u64, 250, 500, 1000, 5000] {
        let mut row = format!("{interval_ms:5} ms |");
        for op in [Op::Update, Op::Search] {
            let store = AcesoStore::launch(harness::bench_aceso_config()).unwrap();
            for t in 0..scale.threads as u32 {
                harness::preload_aceso(
                    &store,
                    MicroWorkload::new(t, op, scale.keys, scale.value_len).preload_keys(),
                    scale.value_len,
                );
            }
            let bg = harness::ckpt_bg_rate(&store, interval_ms);
            let phase = harness::aceso_phase(&store, scale, bg, |t| {
                MicroWorkload::new(t, op, scale.keys, scale.value_len)
            });
            row.push_str(&format!(" {:7.2} |", phase.report().mops));
            store.shutdown();
        }
        text.push_str(&row);
        text.push('\n');
    }
    FigureOutput {
        id: "Figure 17",
        text,
    }
}

/// Figure 18: recovery time vs checkpoint interval.
///
/// Longer intervals mean more KVs committed after the last checkpoint; the
/// sweep writes `rate × interval` post-checkpoint keys, with `rate` fixed
/// so the 500 ms point matches Figure 16's shape.
pub fn fig18(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "MN recovery time (ms) vs checkpoint interval\ninterval |  Meta |  Index |  Block |  Total\n",
    );
    let keys = scale.keys;
    for interval_ms in [100u64, 250, 500, 1000, 5000] {
        // Post-checkpoint keys proportional to the interval.
        let post = (keys as f64 * interval_ms as f64 / 5000.0) as u64;
        let r = crash_and_recover(keys, post.max(16), scale.value_len);
        text.push_str(&format!(
            "{interval_ms:5} ms | {:5.1} | {:6.1} | {:6.1} | {:6.1}\n",
            r.read_meta_ms,
            r.read_ckpt_ms + r.recover_lblock_ms + r.read_rblock_ms + r.scan_kv_ms,
            r.recover_old_lblock_ms,
            r.total_ms(),
        ));
    }
    FigureOutput {
        id: "Figure 18",
        text,
    }
}
