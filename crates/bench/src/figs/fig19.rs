//! Figure 19 — differential checkpointing vs index size (paper §4.5):
//! compressed delta size and per-step time (Copy&XOR, Compress,
//! Decompress, XOR) for one checkpoint round.
//!
//! The index is synthesized directly (populated to load factor 0.75, then
//! a bounded set of slots dirtied, as one 500 ms window of updates would),
//! because the measurement targets the checkpoint pipeline itself.

use crate::figs::FigureOutput;
use crate::fmt_bytes;
use aceso_core::ckpt::{CkptReceiver, CkptSender};

fn synth_index(bytes: usize, seed: u64) -> Vec<u8> {
    // 75% of 16 B slots populated with plausible slot words.
    let mut v = vec![0u8; bytes];
    let slots = bytes / 16;
    let mut x = seed | 1;
    for s in 0..slots {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if x % 4 != 3 {
            let atomic = x | 0x0100_0000_0000_0001;
            let meta = (x >> 7) & 0x00FF_FFFF_FFFF_FFFE;
            v[s * 16..s * 16 + 8].copy_from_slice(&atomic.to_le_bytes());
            v[s * 16 + 8..s * 16 + 16].copy_from_slice(&meta.to_le_bytes());
        }
    }
    v
}

fn dirty_slots(index: &mut [u8], count: usize, seed: u64) {
    let slots = index.len() / 16;
    let mut x = seed | 1;
    for _ in 0..count.min(slots) {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let s = (x as usize) % slots;
        // A CAS bumps the version byte and swaps the address bits.
        index[s * 16] ^= 0x5A;
        index[s * 16 + 3] = index[s * 16 + 3].wrapping_add(1);
    }
}

/// Runs the index-size sweep. Sizes are scaled to the harness machine; the
/// per-step times scale linearly with size exactly as in the paper.
pub fn fig19(full_scale: bool) -> FigureOutput {
    let sizes_mb: &[usize] = if full_scale {
        &[64, 128, 256, 512, 1024, 2048]
    } else {
        &[16, 32, 64, 128, 256]
    };
    // One 500 ms window of updates dirties at most this many slots (the
    // paper's ~4 Mops of index CASes → 2 M distinct slots per round).
    let dirty = 2_000_000usize;
    let mut text = String::from(
        "Differential checkpointing vs index size (one round)\n\
         index   | ckpt size | Copy&XOR | Compress | Decompr. |    XOR\n",
    );
    for &mb in sizes_mb {
        let bytes = mb << 20;
        let mut index = synth_index(bytes, 7);
        let mut tx = CkptSender::new(bytes);
        let mut rx = CkptReceiver::new(bytes);
        // Round 1 establishes the baseline (full index).
        let (c0, r0, _, _) = tx.round(index.clone());
        rx.apply(&c0, r0, 1).unwrap();
        // Round 2 is the measured differential round.
        dirty_slots(&mut index, dirty, 99);
        let (compressed, raw, copy_xor_us, compress_us) = tx.round(index.clone());
        let (decompress_us, xor_us) = rx.apply(&compressed, raw, 2).unwrap();
        text.push_str(&format!(
            "{:4} MB | {:>9} | {:6.1} ms | {:6.1} ms | {:6.1} ms | {:5.1} ms\n",
            mb,
            fmt_bytes(compressed.len() as u64),
            copy_xor_us / 1e3,
            compress_us / 1e3,
            decompress_us / 1e3,
            xor_us / 1e3,
        ));
    }
    FigureOutput {
        id: "Figure 19",
        text,
    }
}
