//! Table 3 — MN CPU load (paper §4.4): utilization of the four logical
//! server cores (RPC serving, erasure coding, checkpoint sending,
//! checkpoint receiving) under an all-write workload with live
//! checkpointing.

use crate::figs::FigureOutput;
use crate::harness::{self, BenchScale};
use aceso_core::AcesoStore;
use aceso_workloads::{MicroWorkload, Op};
use std::time::Instant;

/// Measures per-role busy time over a write-heavy window.
pub fn table3(scale: BenchScale) -> FigureOutput {
    // A 64 MB index per MN (the paper uses 256 MB) so checkpoint rounds do
    // visible work per 500 ms window.
    let store = AcesoStore::launch(aceso_core::AcesoConfig {
        index_groups: 175_000,
        ..harness::bench_aceso_config()
    })
    .unwrap();
    for s in 0..store.cfg.num_mns {
        store.server(s).meters.reset();
    }
    let wall = Instant::now();
    // Drive inserts while ticking checkpoints at the default interval.
    let writer = {
        let store = std::sync::Arc::clone(&store);
        let keys = scale.keys;
        let value_len = scale.value_len;
        std::thread::spawn(move || {
            let mut client = store.client().unwrap();
            for req in MicroWorkload::new(7, Op::Insert, keys, value_len).take(keys as usize) {
                client
                    .insert(
                        &req.key,
                        &aceso_workloads::value_for(&req.key, 0, req.value_len),
                    )
                    .unwrap();
            }
            let _ = client.close_open_blocks();
        })
    };
    let mut ticks = 0;
    while !writer.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(store.cfg.ckpt_interval_ms));
        let _ = store.checkpoint_tick();
        ticks += 1;
    }
    writer.join().unwrap();
    let wall_ns = wall.elapsed().as_nanos() as f64;

    let mut text = format!(
        "MN logical-core utilization over a {:.1}s all-write window ({} ckpt rounds)\n\
         node | RPC serve | erasure coding | ckpt send | ckpt recv\n",
        wall_ns / 1e9,
        ticks
    );
    for col in 0..store.cfg.num_mns {
        let [rpc, ec, send, recv] = store.server(col).meters.snapshot();
        text.push_str(&format!(
            "mn{col}  | {:8.1}% | {:13.1}% | {:8.1}% | {:8.1}%\n",
            rpc as f64 / wall_ns * 100.0,
            ec as f64 / wall_ns * 100.0,
            send as f64 / wall_ns * 100.0,
            recv as f64 / wall_ns * 100.0,
        ));
    }
    store.shutdown();
    FigureOutput {
        id: "Table 3",
        text,
    }
}
