//! Figure 1 — the motivation experiments (paper §2.4/§2.5).
//!
//! (a) FUSEE throughput and average CAS count per op as the index replica
//!     count grows 1 → 3: write ops degrade with each extra CAS.
//! (b) KV request throughput while the MNs periodically transmit index
//!     checkpoints of growing size: reads lose bandwidth.

use crate::figs::FigureOutput;
use crate::harness::{self, BenchScale};
use aceso_core::AcesoStore;
use aceso_fusee::{FuseeConfig, FuseeStore};
use aceso_workloads::{MicroWorkload, Op};

/// Figure 1(a): replica-count sweep on FUSEE.
pub fn fig1a(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "FUSEE microbenchmark vs index replica count (throughput Mops | avg CAS/op)\n",
    );
    text.push_str(
        "replicas |      INSERT       |      UPDATE       |      SEARCH       |      DELETE\n",
    );
    for r in 1..=3usize {
        let mut row = format!("{r:8} |");
        for op in [Op::Insert, Op::Update, Op::Search, Op::Delete] {
            let scale = BenchScale {
                warmup: if matches!(op, Op::Insert | Op::Delete) {
                    0
                } else {
                    scale.warmup
                },
                ..scale
            };
            let cfg = FuseeConfig {
                replicas: r,
                ..harness::bench_fusee_config()
            };
            let store = FuseeStore::launch(cfg);
            // SEARCH/UPDATE/DELETE phases operate on preloaded keys.
            if op != Op::Insert {
                for t in 0..scale.threads as u32 {
                    harness::preload_fusee(
                        &store,
                        MicroWorkload::new(t, op, scale.keys, scale.value_len).preload_keys(),
                        scale.value_len,
                    );
                }
            }
            // INSERT phases use fresh keys (thread ids shifted past the
            // preloaded range), the others hit the preloaded keys.
            let phase = harness::fusee_phase(&store, scale, |t| {
                let base = if op == Op::Insert { t + 100 } else { t };
                MicroWorkload::new(base, op, scale.keys, scale.value_len)
            });
            let rep = phase.report();
            let avg_cas: f64 = phase.m.records.iter().map(|x| x.cas as f64).sum::<f64>()
                / phase.m.records.len().max(1) as f64;
            row.push_str(&format!(" {:7.2} | {:4.2} cas |", rep.mops, avg_cas));
        }
        text.push_str(&row);
        text.push('\n');
    }
    FigureOutput {
        id: "Figure 1(a)",
        text,
    }
}

/// Figure 1(b): checkpoint-size interference sweep on the four op types.
pub fn fig1b(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "Aceso op throughput (Mops) while transmitting checkpoints of given size every 500 ms\n",
    );
    text.push_str("ckpt size |  INSERT |  UPDATE |  SEARCH |  DELETE\n");
    for ckpt_mb in [0u64, 64, 128, 256, 512] {
        // Synthetic interference: `ckpt_mb` MiB per 500 ms on each node.
        let rate = (ckpt_mb << 20) as f64 / 0.5;
        let mut row = format!("{ckpt_mb:6} MB |");
        for op in [Op::Insert, Op::Update, Op::Search, Op::Delete] {
            let scale = BenchScale {
                warmup: if matches!(op, Op::Insert | Op::Delete) {
                    0
                } else {
                    scale.warmup
                },
                ..scale
            };
            let store = AcesoStore::launch(harness::bench_aceso_config()).unwrap();
            if op != Op::Insert {
                for t in 0..scale.threads as u32 {
                    harness::preload_aceso(
                        &store,
                        MicroWorkload::new(t, op, scale.keys, scale.value_len).preload_keys(),
                        scale.value_len,
                    );
                }
            }
            let bg = harness::uniform_bg(store.cfg.num_mns, rate);
            let phase = harness::aceso_phase(&store, scale, bg, |t| {
                let base = if op == Op::Insert { t + 100 } else { t };
                MicroWorkload::new(base, op, scale.keys, scale.value_len)
            });
            row.push_str(&format!(" {:7.2} |", phase.report().mops));
            store.shutdown();
        }
        text.push_str(&row);
        text.push('\n');
    }
    FigureOutput {
        id: "Figure 1(b)",
        text,
    }
}
