//! MN CPU load (paper §4.4): utilization of the four logical
//! server cores (RPC serving, erasure coding, checkpoint sending,
//! checkpoint receiving) under an all-write workload with live
//! checkpointing.

use crate::figs::FigureOutput;
use crate::harness::{self, BenchScale};
use aceso_core::AcesoStore;
use aceso_rdma::SimCq;
use aceso_workloads::{MicroWorkload, Op};
use std::sync::Arc;
use std::time::Instant;

/// Measures per-role busy time over a write-heavy window.
///
/// Checkpoint rounds fire on *modeled* time, not the wall clock: the
/// writer runs with a virtual completion queue attached, and a round
/// triggers every time the CQ clock crosses `ckpt_interval_ms` (plus one
/// closing round for the tail). The tick schedule is therefore a pure
/// function of the workload — identical on any machine — while the
/// utilization percentages still come from real measured busy-ns over the
/// real elapsed window.
pub fn mn_cpu(scale: BenchScale) -> FigureOutput {
    // A 64 MB index per MN (the paper uses 256 MB) so checkpoint rounds do
    // visible work per 500 ms window.
    let store = AcesoStore::launch(aceso_core::AcesoConfig {
        index_groups: 175_000,
        ..harness::bench_aceso_config()
    })
    .unwrap();
    for s in 0..store.cfg.num_mns {
        store.server(s).meters.reset();
    }
    let wall = Instant::now();
    let interval_us = store.cfg.ckpt_interval_ms as f64 * 1000.0;
    let cq = Arc::new(SimCq::new());
    let mut client = store.client().unwrap();
    client.dm.attach_cq(Arc::clone(&cq));
    let mut ticks: u64 = 0;
    for req in
        MicroWorkload::new(7, Op::Insert, scale.keys, scale.value_len).take(scale.keys as usize)
    {
        client
            .insert(
                &req.key,
                &aceso_workloads::value_for(&req.key, 0, req.value_len),
            )
            .unwrap();
        while cq.now_us() >= (ticks + 1) as f64 * interval_us {
            let _ = store.checkpoint_tick();
            ticks += 1;
        }
    }
    let _ = client.close_open_blocks();
    client.dm.detach_cq();
    // One closing round for the tail of the window (the paper's sender
    // always flushes the current interval's deltas).
    let _ = store.checkpoint_tick();
    ticks += 1;
    let wall_ns = wall.elapsed().as_nanos() as f64;
    let virt_s = cq.now_us() / 1e6;

    let mut text = format!(
        "MN logical-core utilization over a {virt_s:.2}s (modeled) all-write window \
         ({ticks} ckpt rounds)\n\
         node | RPC serve | erasure coding | ckpt send | ckpt recv\n",
    );
    for col in 0..store.cfg.num_mns {
        let [rpc, ec, send, recv] = store.server(col).meters.snapshot();
        text.push_str(&format!(
            "mn{col}  | {:8.1}% | {:13.1}% | {:8.1}% | {:8.1}%\n",
            rpc as f64 / wall_ns * 100.0,
            ec as f64 / wall_ns * 100.0,
            send as f64 / wall_ns * 100.0,
            recv as f64 / wall_ns * 100.0,
        ));
    }
    store.shutdown();
    FigureOutput {
        id: "MN CPU",
        text,
    }
}
