//! Ablations of Aceso's design choices, beyond the paper's own figures.
//!
//! * **Checkpoint scheme** — what differential checkpointing and
//!   compression each buy (§3.2.1 motivates both; this quantifies them):
//!   bytes on the wire per round for (full, full+LZ, differential,
//!   differential+LZ).
//! * **Recovery parallelism** — the paper's §4.5 future work
//!   ("distributing coding stripe recovery tasks across multiple CNs,
//!   similar to RAMCloud"): Block-tier recovery time vs worker count.

use crate::figs::FigureOutput;
use crate::fmt_bytes;
use crate::harness::{self, BenchScale};
use aceso_core::{recover_mn, AcesoConfig, AcesoStore};
use aceso_workloads::{MicroWorkload, Op};

/// Checkpoint-scheme ablation over a synthetic 64 MB index round.
pub fn ablation_ckpt(_scale: BenchScale) -> FigureOutput {
    let bytes = 64 << 20;
    // Populated index + one 500 ms window of updates (as in Figure 19).
    let mut index = vec![0u8; bytes];
    let slots = bytes / 16;
    let mut x = 7u64;
    for s in 0..slots {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        if x % 4 != 3 {
            index[s * 16..s * 16 + 8].copy_from_slice(&(x | 1).to_le_bytes());
        }
    }
    let baseline = index.clone();
    for _ in 0..400_000 {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let s = (x as usize) % slots;
        index[s * 16] ^= 0x5A;
        index[s * 16 + 3] = index[s * 16 + 3].wrapping_add(1);
    }

    let full = index.len();
    let full_lz = aceso_codec::compress(&index).len();
    let mut delta = index.clone();
    aceso_erasure::xor_into(&mut delta, &baseline);
    let diff = delta.len();
    let diff_lz = aceso_codec::compress(&delta).len();

    let text = format!(
        "Checkpoint bytes per round, 64 MB index, one 500 ms update window\n\
         scheme                    |     bytes | vs full\n\
         full snapshot             | {:>9} | 1.00x\n\
         full + LZ                 | {:>9} | {:.2}x\n\
         differential (XOR)        | {:>9} | {:.2}x (incompressible without LZ)\n\
         differential + LZ (Aceso) | {:>9} | {:.4}x\n",
        fmt_bytes(full as u64),
        fmt_bytes(full_lz as u64),
        full_lz as f64 / full as f64,
        fmt_bytes(diff as u64),
        diff as f64 / full as f64,
        fmt_bytes(diff_lz as u64),
        diff_lz as f64 / full as f64,
    );
    FigureOutput {
        id: "Ablation: checkpoint scheme",
        text,
    }
}

/// Recovery-parallelism ablation: Block-tier recovery time vs workers.
pub fn ablation_recovery(scale: BenchScale) -> FigureOutput {
    let mut text = String::from(
        "MN recovery vs parallel recovery workers (RAMCloud-style)\n\
         The network component scales with the read fan-in; the compute\n\
         component is this machine's single-core XOR time (it would also\n\
         drop with real parallel CNs; this box has one core).\n\
         workers | block-tier network (ms) | block-tier compute (ms)\n",
    );
    for workers in [1usize, 2, 4] {
        let cfg = AcesoConfig {
            recovery_workers: workers,
            num_arrays: 96,
            num_delta: 96,
            ..harness::bench_aceso_config()
        };
        let store = AcesoStore::launch(cfg).unwrap();
        let mut client = store.client().unwrap();
        for req in
            MicroWorkload::new(0, Op::Insert, scale.keys, scale.value_len).take(scale.keys as usize)
        {
            client
                .insert(
                    &req.key,
                    &aceso_workloads::value_for(&req.key, 0, req.value_len),
                )
                .unwrap();
        }
        client.close_open_blocks().unwrap();
        store.checkpoint_tick().unwrap();
        store.checkpoint_tick().unwrap();
        store.kill_mn(2);
        let r = recover_mn(&store, 2).unwrap();
        text.push_str(&format!(
            "{workers:7} | {:23.2} | {:22.1}\n",
            r.old_lblock_net_ms, r.old_lblock_cpu_ms,
        ));
        store.shutdown();
    }
    text.push_str("(modeled transfer divides by the read fan-in, capped at the n−1 source NICs)\n");
    FigureOutput {
        id: "Ablation: recovery parallelism",
        text,
    }
}
