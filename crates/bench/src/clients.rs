//! `bench clients` — the coroutine-pipelining sweep.
//!
//! One OS thread hosts `C` client tasks on an [`aceso_rt::Executor`], all
//! sharing one simulated completion queue. Each task is a resumable
//! Aceso op state machine (`search_async` & friends) that suspends at
//! every fabric round trip, so with `C` tasks the thread keeps up to `C`
//! round trips in flight — the paper's client coroutines (§4.1, 8 per
//! thread) generalized until the modeled NIC saturates.
//!
//! For each point the sweep measures the *achieved* overlap depth
//! `busy/now` on the virtual CQ clock and feeds it to the cost model as
//! [`aceso_rdma::PhaseMeasurement::pipeline_depth`]: the client-bound
//! throughput term then reflects real overlap instead of the calibrated
//! pipelining constant. The knee of the curve is the first point where
//! the bottleneck leaves `client-rtt` — beyond it more coroutines buy
//! nothing because a NIC resource, not the closed loop, is the limit.
//!
//! Everything is counted or virtual-clocked, so the sweep output is a
//! pure function of the seed.

use aceso_core::{AcesoConfig, AcesoStore, StoreError};
use aceso_rdma::{Bottleneck, PhaseMeasurement, SimCq};
use aceso_rt::Executor;
use aceso_workloads::ycsb::YcsbKind;
use aceso_workloads::{value_for, Op, YcsbWorkload};
use std::sync::Arc;

/// Keys preloaded per sweep point (zipfian 0.99 over these).
const KEYS: u64 = 1024;
/// Ops each client task issues.
const OPS_PER_TASK: usize = 32;
/// Value payload size.
const VALUE_LEN: usize = 64;
/// Largest client count tried while searching for the knee.
const MAX_TASKS: usize = 1024;

/// One sweep point: `tasks` coroutines on one executor thread.
pub struct SweepRow {
    /// Concurrent client tasks multiplexed on the thread.
    pub tasks: usize,
    /// Peak simultaneously-in-flight ops the executor observed.
    pub peak_inflight: usize,
    /// Measured overlap depth (`busy_us / now_us` on the virtual CQ).
    pub depth: f64,
    /// Virtual microseconds the point spanned.
    pub virtual_us: f64,
    /// Modeled throughput with the measured depth.
    pub mops: f64,
    /// What bound the throughput.
    pub bottleneck: Bottleneck,
    /// Modeled p50 / p99 op latency (µs).
    pub p50_us: f64,
    /// See `p50_us`.
    pub p99_us: f64,
}

/// The full sweep plus its knee.
pub struct ClientsSweep {
    /// Seed the YCSB-A streams were derived from.
    pub seed: u64,
    /// One row per client count (doubling from 1).
    pub rows: Vec<SweepRow>,
    /// First client count whose bottleneck is not the closed loop.
    pub knee: Option<usize>,
}

/// Runs one sweep point: `tasks` coroutine clients over a shared CQ.
fn sweep_point(seed: u64, tasks: usize) -> SweepRow {
    // Every coroutine client pins one open DATA block (plus two delta
    // blocks), so the pool must hold MAX_TASKS of them; smaller blocks
    // keep the total footprint modest.
    let store = AcesoStore::launch(AcesoConfig {
        block_size: 16 << 10,
        num_arrays: 80,
        num_delta: 512,
        index_groups: 4096,
        ..AcesoConfig::small()
    })
    .expect("launch");
    let mut loader = store.client().expect("client");
    for key in YcsbWorkload::preload_keys(KEYS) {
        loader
            .insert(&key, &value_for(&key, 0, VALUE_LEN))
            .expect("preload");
    }
    loader.close_open_blocks().expect("close");
    store.cluster.reset_traffic();

    let cq = Arc::new(SimCq::new());
    let mut exec = Executor::new();
    // Records come back through a shared cell: each task deposits its
    // client's measured ops when it finishes.
    let sink: std::rc::Rc<std::cell::RefCell<Vec<aceso_rdma::OpRecord>>> =
        std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    for t in 0..tasks {
        let mut client = store.client().expect("client");
        client.dm.reset_stats();
        client.dm.attach_cq(Arc::clone(&cq));
        let mut stream =
            YcsbWorkload::new(YcsbKind::A, KEYS, 0.99, VALUE_LEN, t as u32, seed);
        let sink = std::rc::Rc::clone(&sink);
        exec.spawn(async move {
            for opno in 0..OPS_PER_TASK {
                let req = stream.next().expect("ycsb streams are infinite");
                let val = value_for(&req.key, opno as u64, req.value_len);
                let res = match req.op {
                    Op::Search => client.search_async(&req.key).await.map(|_| ()),
                    Op::Update => client.update_async(&req.key, &val).await,
                    Op::Insert => client.insert_async(&req.key, &val).await,
                    Op::Delete => client.delete_async(&req.key).await.map(|_| ()),
                };
                match res {
                    Ok(()) => {}
                    // Hot-key pile-ups at large C can exhaust the commit
                    // retry budget; that is contention, not a bug — count
                    // the op as attempted and move on.
                    Err(StoreError::RetriesExhausted) => {}
                    Err(e) => panic!("task {t} op {opno} ({:?}): {e}", req.op),
                }
            }
            client.dm.detach_cq();
            sink.borrow_mut().extend(client.dm.take_ops().records);
        });
    }
    let stuck = exec.run_until_idle(|| cq.advance_next());
    assert_eq!(stuck, 0, "sweep point wedged with {stuck} tasks in flight");

    let depth = if cq.now_us() > 0.0 {
        cq.busy_us() / cq.now_us()
    } else {
        0.0
    };
    let node_fg: Vec<_> = store
        .cluster
        .nodes()
        .iter()
        .map(|n| n.traffic.snapshot())
        .collect();
    let bg = vec![0.0; node_fg.len()];
    let records = std::rc::Rc::try_unwrap(sink)
        .expect("all tasks done")
        .into_inner();
    let m = PhaseMeasurement {
        n_clients: 1, // One OS thread; overlap comes from measured depth.
        node_fg,
        bg_bytes_per_sec: bg,
        records,
        pipeline_depth: Some(depth),
    };
    let cost = store.cfg.cost;
    let rep = cost.report(&m);
    let lat = cost.latency(&m, None);
    let row = SweepRow {
        tasks,
        peak_inflight: exec.peak_inflight(),
        depth,
        virtual_us: cq.now_us(),
        mops: rep.mops,
        bottleneck: rep.bottleneck,
        p50_us: lat.p50_us,
        p99_us: lat.p99_us,
    };
    store.shutdown();
    row
}

/// Sweeps doubling client counts until the modeled NIC binds (and at
/// least through 512 tasks, the acceptance floor for one OS thread).
pub fn clients_sweep(seed: u64) -> ClientsSweep {
    let mut rows = Vec::new();
    let mut knee = None;
    let mut tasks = 1;
    while tasks <= MAX_TASKS {
        let row = sweep_point(seed, tasks);
        let saturated = row.bottleneck != Bottleneck::ClientRtt;
        if saturated && knee.is_none() {
            knee = Some(tasks);
        }
        rows.push(row);
        if knee.is_some() && tasks >= 512 {
            break;
        }
        tasks *= 2;
    }
    ClientsSweep { seed, rows, knee }
}

impl ClientsSweep {
    /// Renders the sweep as the `results/` table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "clients sweep: YCSB-A, {KEYS} keys, {OPS_PER_TASK} ops/task, seed {:#x}\n\
             one OS thread; depth = measured CQ overlap (busy/now)\n\
             tasks | inflight | depth  | virt µs  |   Mops | bottleneck  | p50 µs | p99 µs\n",
            self.seed
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:5} | {:8} | {:6.1} | {:8.0} | {:6.2} | {:<11} | {:6.1} | {:6.1}\n",
                r.tasks,
                r.peak_inflight,
                r.depth,
                r.virtual_us,
                r.mops,
                r.bottleneck.label(),
                r.p50_us,
                r.p99_us,
            ));
        }
        match self.knee {
            Some(k) => s.push_str(&format!(
                "knee: throughput leaves the closed loop at {k} tasks/thread\n"
            )),
            None => s.push_str("knee: not reached (client-bound throughout)\n"),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One mid-size point: the executor really multiplexes the ops (depth
    /// well above the calibrated constant 4) and the measurement reaches
    /// the cost model.
    #[test]
    fn sweep_point_overlaps_ops() {
        let row = sweep_point(0xace50, 64);
        assert_eq!(row.tasks, 64);
        assert_eq!(row.peak_inflight, 64);
        assert!(row.depth > 8.0, "depth {} too shallow", row.depth);
        assert!(row.mops > 0.0 && row.virtual_us > 0.0);
    }

    /// Acceptance floor: one OS thread sustains ≥ 256 concurrent
    /// in-flight ops end to end against the real store.
    #[test]
    fn one_thread_sustains_256_inflight_ops() {
        let row = sweep_point(0xace50, 256);
        assert!(
            row.peak_inflight >= 256,
            "peak inflight {} < 256",
            row.peak_inflight
        );
        assert!(row.depth > 64.0, "overlap depth {} too shallow", row.depth);
    }

    /// The same seed reproduces the same point bit-for-bit.
    #[test]
    fn sweep_point_is_deterministic() {
        let a = sweep_point(0xace50, 16);
        let b = sweep_point(0xace50, 16);
        assert_eq!(a.depth.to_bits(), b.depth.to_bits());
        assert_eq!(a.mops.to_bits(), b.mops.to_bits());
        assert_eq!(a.virtual_us.to_bits(), b.virtual_us.to_bits());
        assert_eq!(a.bottleneck, b.bottleneck);
    }
}
