//! `bench table3` — the three-way fault-tolerance head-to-head.
//!
//! The paper's Table 3 compares Aceso against replication on the three
//! axes that matter for a fault-tolerant KV store: write cost, memory
//! overhead, and recovery. This slice regenerates that comparison live by
//! driving every [`FtEngine`] implementation — Aceso's hybrid
//! checkpoint+erasure scheme, FUSEE-style full replication, and the
//! SWARM-style 1-RTT engine — through one shared script:
//!
//! 1. preload `KEYS` keys of `VALUE_LEN`-byte values (enough data
//!    that Aceso's block-granular parity and checkpoint overheads
//!    amortize — Table 3 compares loaded stores, not empty ones),
//! 2. a warm-up update pass over every key (so SWARM's cached
//!    same-class 1-RTT path and Aceso's slot caches are both hot),
//! 3. a measured window of updates and searches whose [`aceso_rdma`]
//!    op records feed the NIC cost model,
//! 4. a space report, then a memory-node kill and column rebuild.
//!
//! The first three rows run the matched r=3 geometry of
//! [`aceso_engines::launch`] — equal *two-failure tolerance* (3-way
//! replication vs two-parity X-Code stripes). The last two rows rebuild
//! the replication engines at r=2, the closest replication gets to
//! Aceso's memory budget, at the price of one fewer survivable failure.
//!
//! Every number is counted or modeled (verbs, bytes, cost-model
//! milliseconds), so the rendered table is a pure function of the seed
//! and `results/table3.txt` is diffed byte-for-byte in CI.

use aceso_core::FtEngine;
use aceso_engines::swarm::SwarmConfig;
use aceso_engines::{launch, EngineKind, FuseeEngine, SwarmEngine};
use aceso_fusee::FuseeConfig;
use aceso_rdma::{Bottleneck, CostModel, OpKind, PhaseMeasurement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Keys preloaded per engine.
const KEYS: usize = 3000;
/// Value payload bytes.
const VALUE_LEN: usize = 128;
/// Measured ops (alternating update / search over random preloaded keys).
const OPS: usize = 2000;
/// Modeled concurrent clients fed to the cost model — the same fleet size
/// as `bench quick`, so Mops here reads on the same scale.
const SIM_CLIENTS: usize = 184;

/// One engine variant of the head-to-head.
pub struct Table3Row {
    /// Row label (`aceso`, `fusee r=3`, `swarm r=2`, ...).
    pub label: String,
    /// Mean sequential round trips per committed update.
    pub update_rtts: f64,
    /// Mean verbs per committed update.
    pub update_verbs: f64,
    /// Mean sequential round trips per search.
    pub search_rtts: f64,
    /// Modeled YCSB-window throughput (Mops) at `SIM_CLIENTS` clients.
    pub mops: f64,
    /// What bound the modeled throughput.
    pub bottleneck: Bottleneck,
    /// Memory overhead factor (total footprint / valid bytes).
    pub overhead: f64,
    /// Modeled network milliseconds to rebuild one lost memory node.
    pub recovery_ms: f64,
    /// Bytes moved by that rebuild.
    pub recovery_bytes: u64,
    /// KV pairs scanned or re-replicated during the rebuild.
    pub recovery_kvs: usize,
}

/// The full head-to-head: three r=3 rows plus the r=2 budget rows.
pub struct Table3Slice {
    /// Seed the op streams were derived from.
    pub seed: u64,
    /// One row per engine variant, Table 3 order.
    pub rows: Vec<Table3Row>,
}

/// Runs the shared script against one launched engine.
fn run_engine(label: String, eng: Box<dyn FtEngine>, seed: u64) -> Table3Row {
    let mut rng = StdRng::seed_from_u64(seed ^ label.len() as u64);
    let mut c = eng.client().expect("client");
    let keys: Vec<Vec<u8>> = (0..KEYS)
        .map(|i| format!("t3-{i:04}").into_bytes())
        .collect();
    for key in &keys {
        c.insert(key, &[0xa5u8; VALUE_LEN]).expect("preload");
    }
    // Warm the write path: after one update everywhere, SWARM clients
    // know every cell's address and class, Aceso clients their slots.
    for key in &keys {
        c.update(key, &[0x5au8; VALUE_LEN]).expect("warmup");
    }
    c.quiesce().expect("quiesce");
    eng.tick().expect("tick");

    // Measured window: updates and searches over random preloaded keys,
    // counted from a clean slate.
    eng.cluster().reset_traffic();
    c.reset_stats();
    for opno in 0..OPS {
        let key = &keys[rng.gen_range(0..KEYS)];
        if opno % 2 == 0 {
            let mut val = [0u8; VALUE_LEN];
            val[0] = opno as u8;
            c.update(key, &val).expect("measured update");
        } else {
            c.search(key).expect("measured search");
        }
    }
    let ops = c.take_ops();
    let mean = |kind: OpKind, f: &dyn Fn(&aceso_rdma::OpRecord) -> u32| -> f64 {
        let recs: Vec<_> = ops.records.iter().filter(|r| r.kind == kind).collect();
        recs.iter().map(|r| f(r) as u64).sum::<u64>() as f64 / recs.len() as f64
    };
    let node_fg: Vec<_> = eng
        .cluster()
        .nodes()
        .iter()
        .map(|n| n.traffic.snapshot())
        .collect();
    let bg = vec![0.0; node_fg.len()];
    let m = PhaseMeasurement {
        n_clients: SIM_CLIENTS,
        node_fg,
        bg_bytes_per_sec: bg,
        records: ops.records.clone(),
        pipeline_depth: None,
    };
    // Every engine config in this slice carries the default NIC model, so
    // one shared instance keeps the throughput column apples-to-apples.
    let rep = CostModel::default().report(&m);

    let space = eng.space();

    // Recovery leg: lose the home column of the first key, rebuild it.
    c.quiesce().expect("quiesce");
    drop(c);
    let col = eng.home_col(&keys[0]);
    assert!(eng.kill_column(col), "victim column already dead");
    let summary = eng.recover_column(col).expect("recover_column");
    let check = eng.check().expect("check");
    assert!(check.is_empty(), "[{label}] post-recovery check: {check:?}");

    let row = Table3Row {
        label,
        update_rtts: mean(OpKind::Update, &|r| r.rtts),
        update_verbs: mean(OpKind::Update, &|r| r.verbs),
        search_rtts: mean(OpKind::Search, &|r| r.rtts),
        mops: rep.mops,
        bottleneck: rep.bottleneck,
        overhead: space.overhead_factor(),
        recovery_ms: summary.net_ms,
        recovery_bytes: summary.bytes,
        recovery_kvs: summary.kvs,
    };
    eng.shutdown();
    row
}

/// Builds a replication engine at replication factor `r` on the same
/// matched geometry [`launch`] uses for r=3.
fn replication_at(kind: EngineKind, r: usize) -> Box<dyn FtEngine> {
    match kind {
        EngineKind::Fusee => Box::new(FuseeEngine::launch(FuseeConfig {
            index_groups: 128,
            replicas: r,
            ..FuseeConfig::small()
        })),
        EngineKind::Swarm => Box::new(SwarmEngine::launch(SwarmConfig {
            index_groups: 128,
            replicas: r,
            ..SwarmConfig::small()
        })),
        EngineKind::Aceso => unreachable!("aceso has no replication factor"),
    }
}

/// Runs the five-variant head-to-head.
pub fn table3_slice(seed: u64) -> Table3Slice {
    let mut rows = Vec::new();
    // Equal two-failure tolerance: the conformance-suite geometry.
    for kind in EngineKind::ALL {
        let eng = launch(kind).expect("launch");
        rows.push(run_engine(kind.to_string(), eng, seed));
    }
    // Equal-ish memory budget: replication dropped to r=2 (one survivable
    // failure, vs two for the rows above).
    for kind in [EngineKind::Fusee, EngineKind::Swarm] {
        rows.push(run_engine(
            format!("{kind} r=2"),
            replication_at(kind, 2),
            seed,
        ));
    }
    Table3Slice { seed, rows }
}

impl Table3Slice {
    /// Renders the head-to-head as the `results/table3.txt` table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Table 3 — fault-tolerance head-to-head (modeled), seed {:#x}\n\
             {KEYS} keys x {VALUE_LEN} B, warm caches, {OPS} measured ops, {SIM_CLIENTS} modeled clients\n\
             rows 1-3: equal two-failure tolerance (3-way replication vs two-parity X-Code)\n\
             rows 4-5: replication at r=2 — nearer Aceso's memory budget, one fewer survivable failure\n\
             engine     | wr RTTs | wr verbs | rd RTTs |  Mops | bottleneck  | mem ovh | rebuild ms | rebuild MB |  kvs\n",
            self.seed
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:<10} | {:7.2} | {:8.2} | {:7.2} | {:5.2} | {:<11} | {:6.2}x | {:10.2} | {:10.2} | {:4}\n",
                r.label,
                r.update_rtts,
                r.update_verbs,
                r.search_rtts,
                r.mops,
                r.bottleneck.label(),
                r.overhead,
                r.recovery_ms,
                r.recovery_bytes as f64 / (1024.0 * 1024.0),
                r.recovery_kvs,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One replication row end to end: the 1-RTT engine really commits
    /// warm updates in one round trip and survives the column rebuild.
    #[test]
    fn swarm_row_commits_warm_updates_in_one_rtt() {
        let row = run_engine("swarm".into(), launch(EngineKind::Swarm).unwrap(), 0xace50);
        assert!(
            row.update_rtts < 1.05,
            "swarm warm updates should be ~1 RTT, got {:.2}",
            row.update_rtts
        );
        assert!(row.recovery_bytes > 0 && row.mops > 0.0);
    }

    /// The Table 3 ordering the paper argues for: at equal two-failure
    /// tolerance Aceso's memory overhead sits well under replication's,
    /// while replication wins the write round-trip column.
    #[test]
    fn slice_reproduces_table3_ordering() {
        let slice = table3_slice(0xace50);
        assert_eq!(slice.rows.len(), 5);
        let by = |l: &str| slice.rows.iter().find(|r| r.label == l).unwrap();
        let (aceso, fusee, swarm) = (by("aceso"), by("fusee"), by("swarm"));
        for repl in [fusee, swarm] {
            assert!(aceso.overhead < repl.overhead, "{}", repl.label);
            assert!(repl.overhead > 2.5, "{} r=3 should approach 3x", repl.label);
        }
        assert!(swarm.update_rtts < fusee.update_rtts);
        assert!(by("swarm r=2").overhead < swarm.overhead - 0.5);
        for r in &slice.rows {
            assert!(r.recovery_ms > 0.0 && r.recovery_kvs > 0, "{}", r.label);
        }
    }

    /// The same seed reproduces the same table bit-for-bit (CI diffs the
    /// committed results file).
    #[test]
    fn slice_is_deterministic() {
        let a = run_engine("fusee".into(), launch(EngineKind::Fusee).unwrap(), 0xace50);
        let b = run_engine("fusee".into(), launch(EngineKind::Fusee).unwrap(), 0xace50);
        assert_eq!(a.update_rtts.to_bits(), b.update_rtts.to_bits());
        assert_eq!(a.mops.to_bits(), b.mops.to_bits());
        assert_eq!(a.recovery_ms.to_bits(), b.recovery_ms.to_bits());
        assert_eq!(a.recovery_bytes, b.recovery_bytes);
        assert_eq!(a.bottleneck, b.bottleneck);
    }
}
