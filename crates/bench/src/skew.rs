//! `bench skew` — the Zipfian-θ sweep of the hotness-aware client index
//! cache (PR 10).
//!
//! Each point runs a deterministic read-only (YCSB-C) slice at one
//! Zipfian skew θ with the per-client [`aceso_core::IndexCache`] bounded
//! *below* the keyspace (`CACHE_CAP` < `KEYS`), so the sweep shows the
//! CLOCK / second-chance policy doing its job: at uniform access (θ = 0)
//! the working set does not fit and the hit rate is capped by
//! capacity/keys; as skew grows, the hot set shrinks into the bound and
//! the hit rate — and with it the fraction of 1-RTT SEARCHes — climbs.
//!
//! Two outputs per row, both counted or modeled (never wall-clock), so
//! the table is a pure function of the seed and CI diffs it:
//!
//! * the `client.cache.*` counters from the obs registry (hits, misses,
//!   evictions, invalidations),
//! * the modeled SEARCH p50 from the measured verb records, compared
//!   against the uncontended single-READ reference
//!   `rtt_us + slot_bytes/node_bw` — a cached SEARCH is exactly one slot
//!   READ, so the hot-key acceptance bound is
//!   `p50(θ ≥ 0.99) ≤ 1.2 × single-READ`.

use aceso_core::{kv, AcesoConfig, AcesoStore, ClientTuning};
use aceso_obs::Registry;
use aceso_rdma::{OpKind, PhaseMeasurement};
use aceso_workloads::ycsb::YcsbKind;
use aceso_workloads::{value_for, Op, YcsbWorkload};
use std::sync::Arc;

/// Preloaded keyspace per point (Zipfian over these).
const KEYS: u64 = 512;
/// Per-client cache bound — deliberately a quarter of the keyspace so
/// the eviction policy, not just the fill path, shapes every row.
const CACHE_CAP: usize = 128;
/// Ops per point, round-robin over the clients.
const OPS: usize = 4000;
/// Logical clients (each with its own bounded cache).
const CLIENTS: usize = 4;
/// Value payload size (sets the KV slot class the cached READ fetches).
const VALUE_LEN: usize = 64;
/// The swept skew exponents; 0.99 is the paper's default.
const THETAS: [f64; 5] = [0.0, 0.5, 0.9, 0.99, 1.2];

/// One sweep point at a fixed Zipfian θ.
pub struct SkewRow {
    /// Zipfian exponent of this row.
    pub theta: f64,
    /// `client.cache.hits` summed over the point's clients.
    pub hits: u64,
    /// `client.cache.misses` likewise.
    pub misses: u64,
    /// `client.cache.evictions` likewise.
    pub evictions: u64,
    /// `client.cache.invalidations` likewise.
    pub invalidations: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// Modeled SEARCH p50 over the measured records, µs.
    pub search_p50_us: f64,
    /// `search_p50_us / single_read_us`.
    pub ratio: f64,
}

/// The full θ sweep.
pub struct SkewSweep {
    /// Seed all the YCSB streams derive from.
    pub seed: u64,
    /// Uncontended single slot-READ reference latency, µs.
    pub single_read_us: f64,
    /// One row per swept θ, in ascending `THETAS` order.
    pub rows: Vec<SkewRow>,
}

/// The uncontended modeled latency of one slot READ: base RTT plus the
/// slot's wire bytes. This is what a cache-hit SEARCH costs when the
/// queueing term is negligible.
fn single_read_us(cfg: &AcesoConfig, slot_bytes: u32) -> f64 {
    cfg.cost.rtt_us + slot_bytes as f64 / cfg.cost.node_bw * 1e6
}

/// Runs one read-only slice at skew `theta`.
fn skew_point(seed: u64, theta: f64) -> SkewRow {
    let cfg = AcesoConfig::small();
    let cost = cfg.cost;
    let store = AcesoStore::launch(cfg).expect("launch");

    let mut loader = store.client().expect("client");
    for key in YcsbWorkload::preload_keys(KEYS) {
        loader
            .insert(&key, &value_for(&key, 0, VALUE_LEN))
            .expect("preload");
    }
    loader.close_open_blocks().expect("close");

    // Clients are created after the recorder install so their
    // `client.cache.*` counters land in this point's registry.
    let registry = Registry::new();
    store.install_recorder(Arc::clone(&registry));
    let mut clients = Vec::with_capacity(CLIENTS);
    for _ in 0..CLIENTS {
        clients.push(
            store
                .client_with(ClientTuning {
                    cache_capacity: CACHE_CAP,
                    ..ClientTuning::default()
                })
                .expect("client"),
        );
    }

    store.cluster.reset_traffic();
    for c in &clients {
        c.dm.reset_stats();
    }
    let mut streams: Vec<YcsbWorkload> = (0..CLIENTS)
        .map(|i| YcsbWorkload::new(YcsbKind::C, KEYS, theta, VALUE_LEN, i as u32, seed))
        .collect();
    for opno in 0..OPS {
        let i = opno % CLIENTS;
        let req = streams[i].next().expect("ycsb streams are infinite");
        match req.op {
            Op::Search => {
                clients[i]
                    .search(&req.key)
                    .unwrap_or_else(|e| panic!("op {opno}: {e}"))
                    .expect("preloaded key vanished");
            }
            other => panic!("YCSB-C emitted a non-read op: {other:?}"),
        }
    }

    let mut records = Vec::with_capacity(OPS);
    for c in &mut clients {
        records.extend(c.dm.take_ops().records);
    }
    let node_fg: Vec<_> = store
        .cluster
        .nodes()
        .iter()
        .map(|n| n.traffic.snapshot())
        .collect();
    let bg = vec![0.0; node_fg.len()];
    let m = PhaseMeasurement {
        n_clients: CLIENTS,
        node_fg,
        bg_bytes_per_sec: bg,
        records,
        // The slice really is sequential (round-robin, one op in flight),
        // so the closed-loop bound uses the measured depth 1 instead of
        // the calibrated pipelining constant — the sweep reports cache
        // latency at low load, not saturation throughput.
        pipeline_depth: Some(1.0),
    };
    let search_p50_us = cost.latency(&m, Some(OpKind::Search)).p50_us;

    let snap = registry.snapshot();
    let ctr = |name: &str| snap.counter(name).unwrap_or(0);
    let (hits, misses) = (ctr("client.cache.hits"), ctr("client.cache.misses"));
    let looked = (hits + misses).max(1);
    let slot_bytes =
        kv::class_for(req_key_len(), VALUE_LEN).expect("bench kv fits") as u32 * 64;
    let row = SkewRow {
        theta,
        hits,
        misses,
        evictions: ctr("client.cache.evictions"),
        invalidations: ctr("client.cache.invalidations"),
        hit_rate: hits as f64 / looked as f64,
        search_p50_us,
        ratio: search_p50_us / single_read_us(&store.cfg, slot_bytes),
    };
    store.shutdown();
    row
}

/// Byte length of the sweep's preloaded keys (all `key_bytes` ids share
/// one length, so one slot class covers the whole keyspace).
fn req_key_len() -> usize {
    YcsbWorkload::preload_keys(1).next().expect("one key").len()
}

/// Runs the full θ sweep.
pub fn skew_sweep(seed: u64) -> SkewSweep {
    let cfg = AcesoConfig::small();
    let slot_bytes = kv::class_for(req_key_len(), VALUE_LEN).expect("bench kv fits") as u32 * 64;
    SkewSweep {
        seed,
        single_read_us: single_read_us(&cfg, slot_bytes),
        rows: THETAS.iter().map(|&t| skew_point(seed, t)).collect(),
    }
}

impl SkewSweep {
    /// Renders the sweep as the `results/skew.txt` table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "skew sweep: YCSB-C, {KEYS} keys, {OPS} ops over {CLIENTS} clients, seed {:#x}\n\
             per-client cache: {CACHE_CAP} entries (CLOCK second-chance), \
             single-READ reference {:.2} µs\n\
             theta |   hits | misses | evict | inval | hit rate | search p50 µs | x read\n",
            self.seed, self.single_read_us
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:5.2} | {:6} | {:6} | {:5} | {:5} | {:8.3} | {:13.2} | {:6.2}\n",
                r.theta,
                r.hits,
                r.misses,
                r.evictions,
                r.invalidations,
                r.hit_rate,
                r.search_p50_us,
                r.ratio,
            ));
        }
        let hot = self
            .rows
            .iter()
            .filter(|r| r.theta >= 0.99)
            .map(|r| r.ratio)
            .fold(0.0, f64::max);
        s.push_str(&format!(
            "hot-key bound: worst p50(θ ≥ 0.99) = {hot:.2}× single READ (bound 1.20×)\n"
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bound of PR 10: at paper-default skew (and above)
    /// the median SEARCH is a cache hit, i.e. within 1.2× of one modeled
    /// slot READ, and the hit rate climbs monotonically with θ.
    #[test]
    fn hot_key_search_p50_is_one_read() {
        let sweep = skew_sweep(0xace50);
        let mut last_rate = -1.0;
        for r in &sweep.rows {
            assert!(
                r.hit_rate >= last_rate,
                "hit rate fell as skew grew: θ={} rate={}",
                r.theta,
                r.hit_rate
            );
            last_rate = r.hit_rate;
            if r.theta >= 0.99 {
                assert!(
                    r.ratio <= 1.2,
                    "hot SEARCH p50 {:.2}µs is {:.2}× the single-READ \
                     reference {:.2}µs (bound 1.2×) at θ={}",
                    r.search_p50_us,
                    r.ratio,
                    sweep.single_read_us,
                    r.theta
                );
            }
        }
        // The bounded cache visibly evicts at uniform access (working set
        // 4× the capacity) — the sweep exercises the policy, not just the
        // fill path.
        assert!(sweep.rows[0].evictions > 0, "uniform row never evicted");
    }

    /// The same seed reproduces the same table bit-for-bit (CI diffs
    /// `results/skew.txt`).
    #[test]
    fn skew_sweep_is_deterministic() {
        let a = skew_sweep(0xace50);
        let b = skew_sweep(0xace50);
        assert_eq!(a.render(), b.render());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.search_p50_us.to_bits(), y.search_p50_us.to_bits());
            assert_eq!((x.hits, x.misses), (y.hits, y.misses));
        }
    }
}
