//! `bench quick` — the CI-sized benchmark slice.
//!
//! Runs a deterministic YCSB-A slice (four logical clients, round-robin
//! in one thread, like `chaos analyze`'s traced workload) followed by one
//! MN crash + tiered recovery, with an [`aceso_obs::Registry`] recorder
//! installed so the run doubles as an end-to-end test of the
//! observability layer. Prints the metrics snapshot as a table; with
//! `--json`, additionally writes `BENCH_PR4.json`.
//!
//! Everything in the JSON file is *modeled or counted*, never wall-clock:
//! op latency percentiles come from [`aceso_rdma::CostModel`] over the
//! measured verb records, throughput from the same model over per-node
//! demand, and recovery phase times are the `*_net_ms` columns of
//! [`aceso_core::RecoveryReport`]. Two runs with the same seed therefore
//! produce byte-identical files — CI diffs them.

use aceso_core::{recover_mn, AcesoConfig, AcesoStore};
use aceso_obs::{JsonWriter, Obs, Registry, Snapshot};
use aceso_rdma::{OpKind, PhaseMeasurement, SimCq};
use aceso_rt::Executor;
use aceso_workloads::ycsb::YcsbKind;
use aceso_workloads::{value_for, Op, YcsbWorkload};
use std::sync::Arc;

const CLIENTS: usize = 4;
const KEYS: u64 = 200;
const OPS: usize = 2000;
const VALUE_LEN: usize = 64;
/// Simulated closed-loop client count fed to the cost model (the paper
/// runs 184 clients on 23 CNs).
const SIM_CLIENTS: usize = 184;
/// Column whose MN is crashed and recovered.
const KILL_COL: usize = 1;
const DEFAULT_SEED: u64 = 0xace50;
/// Coroutine tasks in the quick run's pipelined slice.
const RT_TASKS: usize = 8;
/// Ops each of those tasks issues.
const RT_OPS_PER_TASK: usize = 50;

fn usage() -> ! {
    eprintln!(
        "usage: bench quick [--json] [--seed <hex>] [--out <path>]\n\
         \n\
         Runs the deterministic YCSB-A slice + one MN-crash recovery.\n\
         --json writes BENCH_PR4.json (byte-identical across runs of the\n\
         same seed); --out overrides the output path.\n\
         \n\
         usage: bench clients [--seed <hex>] [--out <path>]\n\
         \n\
         Sweeps coroutine clients per OS thread (doubling from 1) until\n\
         the modeled NIC binds; writes the table to results/clients.txt\n\
         (or --out).\n\
         \n\
         usage: bench elastic [--seed <hex>] [--out <path>]\n\
         \n\
         Measures client throughput between every step of an online\n\
         join and drain migration; writes the table to\n\
         results/elastic.txt (or --out).\n\
         \n\
         usage: bench table3 [--seed <hex>] [--out <path>]\n\
         \n\
         Runs the three-way fault-tolerance head-to-head (aceso vs\n\
         fusee vs swarm, plus r=2 budget rows) through the FtEngine\n\
         seam; writes the table to results/table3.txt (or --out).\n\
         The output is a pure function of the seed — CI diffs it."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    let mut json = false;
    let mut seed = DEFAULT_SEED;
    let mut out = match cmd {
        Some("quick") => "BENCH_PR4.json".to_string(),
        Some("clients") => "results/clients.txt".to_string(),
        Some("elastic") => "results/elastic.txt".to_string(),
        Some("skew") => "results/skew.txt".to_string(),
        Some("table3") => "results/table3.txt".to_string(),
        _ => usage(),
    };
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" if cmd == Some("quick") => json = true,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                let v = v.trim_start_matches("0x");
                seed = u64::from_str_radix(v, 16).unwrap_or_else(|_| usage());
            }
            "--out" => out = it.next().unwrap_or_else(|| usage()).clone(),
            _ => usage(),
        }
    }

    match cmd {
        Some("quick") => {
            let quick = run_quick(seed);
            print!("{}", quick.render());
            if json {
                std::fs::write(&out, quick.to_json()).expect("write json");
                println!("wrote {out}");
            }
        }
        Some("clients") => {
            let sweep = aceso_bench::clients_sweep(seed);
            print!("{}", sweep.render());
            std::fs::write(&out, sweep.render()).expect("write sweep");
            println!("wrote {out}");
        }
        Some("elastic") => {
            let slice = aceso_bench::elastic_slice(seed);
            print!("{}", slice.render());
            std::fs::write(&out, slice.render()).expect("write slice");
            println!("wrote {out}");
        }
        Some("skew") => {
            let sweep = aceso_bench::skew_sweep(seed);
            print!("{}", sweep.render());
            std::fs::write(&out, sweep.render()).expect("write sweep");
            println!("wrote {out}");
        }
        Some("table3") => {
            let slice = aceso_bench::table3_slice(seed);
            print!("{}", slice.render());
            std::fs::write(&out, slice.render()).expect("write slice");
            println!("wrote {out}");
        }
        _ => usage(),
    }
}

/// Everything one `bench quick` run measured.
struct Quick {
    seed: u64,
    mops: f64,
    bottleneck: String,
    /// (kind label, p50, p99, p999) — modeled, µs.
    latency: Vec<(&'static str, f64, f64, f64)>,
    /// (kind label, mean rtts, mean batches, mean batched verbs) per op —
    /// the shape of the doorbell-batched pipeline, straight from the
    /// measured [`aceso_rdma::OpRecord`]s.
    pipeline: Vec<(&'static str, f64, f64, f64)>,
    /// Measured coroutine overlap of the RT slice: (depth, virtual µs,
    /// peak in-flight ops on the one executor thread).
    rt_depth: (f64, f64, usize),
    recovery: aceso_core::RecoveryReport,
    snapshot: Snapshot,
}

fn run_quick(seed: u64) -> Quick {
    let cfg = AcesoConfig::small();
    let cost = cfg.cost;
    let store = AcesoStore::launch(cfg).expect("launch");

    // Preload from an uninstrumented client so the recorded counters
    // cover exactly the measured slice.
    let mut loader = store.client().expect("client");
    for key in YcsbWorkload::preload_keys(KEYS) {
        loader
            .insert(&key, &value_for(&key, 0, VALUE_LEN))
            .expect("preload");
    }
    loader.close_open_blocks().expect("close");

    let registry = Registry::new();
    store.install_recorder(Arc::clone(&registry));
    let mut clients = Vec::with_capacity(CLIENTS);
    for _ in 0..CLIENTS {
        clients.push(store.client().expect("client"));
    }
    // One synchronized checkpoint round so recovery reads a real
    // (compressed, non-empty) checkpoint and ckpt.* counters light up.
    store.checkpoint_tick().expect("ckpt");

    // The measured slice: single-threaded round-robin, so the schedule —
    // and with it every verb count — is a pure function of the seed.
    store.cluster.reset_traffic();
    for c in &clients {
        c.dm.reset_stats();
    }
    let mut streams: Vec<YcsbWorkload> = (0..CLIENTS)
        .map(|i| YcsbWorkload::new(YcsbKind::A, KEYS, 0.99, VALUE_LEN, i as u32, seed))
        .collect();
    for opno in 0..OPS {
        let i = opno % CLIENTS;
        let req = streams[i].next().expect("ycsb streams are infinite");
        let val = value_for(&req.key, opno as u64, req.value_len);
        let res = match req.op {
            Op::Search => clients[i].search(&req.key).map(|_| ()),
            Op::Update => clients[i].update(&req.key, &val),
            Op::Insert => clients[i].insert(&req.key, &val),
            Op::Delete => clients[i].delete(&req.key).map(|_| ()),
        };
        res.unwrap_or_else(|e| panic!("op {opno} ({:?}): {e}", req.op));
    }
    let mut records = Vec::with_capacity(OPS);
    for c in &mut clients {
        c.flush_bitmaps().expect("flush");
        records.extend(c.dm.take_ops().records);
    }
    let node_fg: Vec<_> = store
        .cluster
        .nodes()
        .iter()
        .map(|n| n.traffic.snapshot())
        .collect();
    let bg = vec![0.0; node_fg.len()];
    let m = PhaseMeasurement {
        n_clients: SIM_CLIENTS,
        node_fg,
        bg_bytes_per_sec: bg,
        records,
        pipeline_depth: None,
    };
    let rep = cost.report(&m);
    let latency = [
        ("all", None),
        ("search", Some(OpKind::Search)),
        ("update", Some(OpKind::Update)),
    ]
    .into_iter()
    .map(|(label, filter)| {
        let s = cost.latency_samples(&m, filter);
        (label, pct(&s, 0.50), pct(&s, 0.99), pct(&s, 0.999))
    })
    .collect();
    let pipeline = [
        ("search", OpKind::Search),
        ("update", OpKind::Update),
        ("insert", OpKind::Insert),
    ]
    .into_iter()
    .map(|(label, kind)| {
        let rs = m.records.iter().filter(|r| r.kind == kind);
        let (mut n, mut rtts, mut batches, mut bverbs) = (0u32, 0u64, 0u64, 0u64);
        for r in rs {
            n += 1;
            rtts += r.rtts as u64;
            batches += r.batches as u64;
            bverbs += r.batched_verbs as u64;
        }
        let d = n.max(1) as f64;
        (
            label,
            rtts as f64 / d,
            batches as f64 / d,
            bverbs as f64 / d,
        )
    })
    .collect();

    // A short coroutine-pipelined slice: RT_TASKS resumable clients on
    // one executor thread over a shared virtual CQ. Measures the overlap
    // depth the runtime actually achieves and exercises the rt.* metrics
    // end to end (both land in the JSON below).
    let cq = Arc::new(SimCq::new());
    let mut exec = Executor::with_obs(Obs::on(Arc::clone(&registry)));
    for t in 0..RT_TASKS {
        let mut client = store.client().expect("client");
        client.dm.attach_cq(Arc::clone(&cq));
        let mut stream = YcsbWorkload::new(
            YcsbKind::A,
            KEYS,
            0.99,
            VALUE_LEN,
            (CLIENTS + t) as u32,
            seed,
        );
        exec.spawn(async move {
            for opno in 0..RT_OPS_PER_TASK {
                let req = stream.next().expect("ycsb streams are infinite");
                let val = value_for(&req.key, opno as u64, req.value_len);
                let res = match req.op {
                    Op::Search => client.search_async(&req.key).await.map(|_| ()),
                    Op::Update => client.update_async(&req.key, &val).await,
                    Op::Insert => client.insert_async(&req.key, &val).await,
                    Op::Delete => client.delete_async(&req.key).await.map(|_| ()),
                };
                res.unwrap_or_else(|e| panic!("rt op {opno} ({:?}): {e}", req.op));
            }
            client.dm.detach_cq();
        });
    }
    let stuck = exec.run_until_idle(|| cq.advance_next());
    assert_eq!(stuck, 0, "rt slice wedged with {stuck} tasks in flight");
    let rt_depth = (
        if cq.now_us() > 0.0 {
            cq.busy_us() / cq.now_us()
        } else {
            0.0
        },
        cq.now_us(),
        exec.peak_inflight(),
    );

    // One MN crash + full tiered recovery (Meta → Index → Block →
    // parity); phase spans land in the registry via the store recorder.
    assert!(store.kill_mn(KILL_COL), "node already dead");
    let recovery = recover_mn(&store, KILL_COL).expect("recovery");

    let snapshot = registry.snapshot();
    store.shutdown();
    Quick {
        seed,
        mops: rep.mops,
        bottleneck: rep.bottleneck.label(),
        latency,
        pipeline,
        rt_depth,
        recovery,
        snapshot,
    }
}

/// Percentile by the cost model's deterministic pick rule: the sample at
/// index `⌊(len−1)·q⌋` of the ascending-sorted distribution.
fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

impl Quick {
    fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "bench quick: seed {:#x}, {} ycsb-a ops over {} clients, {} keys\n",
            self.seed, OPS, CLIENTS, KEYS
        ));
        s.push_str(&format!(
            "  modeled throughput {:.2} Mops (bottleneck {})\n",
            self.mops, self.bottleneck
        ));
        for (label, p50, p99, p999) in &self.latency {
            s.push_str(&format!(
                "  latency[{label}] p50 {p50:.1} µs, p99 {p99:.1} µs, p999 {p999:.1} µs\n"
            ));
        }
        for (label, rtts, batches, bverbs) in &self.pipeline {
            s.push_str(&format!(
                "  pipeline[{label}] mean rtts {rtts:.2}, batches {batches:.2}, \
                 batched verbs {bverbs:.2}\n"
            ));
        }
        let (depth, vus, peak) = self.rt_depth;
        s.push_str(&format!(
            "  rt slice: {RT_TASKS} tasks × {RT_OPS_PER_TASK} ops on one thread, \
             measured depth {depth:.2} over {vus:.0} virtual µs (peak inflight {peak})\n"
        ));
        let r = &self.recovery;
        s.push_str(&format!(
            "  recovery of col {KILL_COL}: meta {:.3} ms, index {:.3} ms, parity {:.3} ms \
             (modeled net; {} KVs scanned, {} local + {} remote new blocks)\n",
            r.meta_net_ms,
            r.index_tier_net_ms() - r.meta_net_ms,
            r.parity_net_ms,
            r.kv_count,
            r.lblock_count,
            r.rblock_count,
        ));
        s.push_str("\nmetrics snapshot:\n");
        s.push_str(&self.snapshot.render_table());
        s
    }

    /// `BENCH_PR4.json` — modeled/counted values only, so the file is a
    /// pure function of the seed (schema `aceso.bench.quick.v1`).
    fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.str_field("schema", "aceso.bench.quick.v1");
        w.u64_field("seed", self.seed);
        w.begin_object_key("workload");
        w.str_field("kind", "ycsb-a");
        w.u64_field("clients", CLIENTS as u64);
        w.u64_field("keys", KEYS);
        w.u64_field("ops", OPS as u64);
        w.u64_field("value_len", VALUE_LEN as u64);
        w.end_object();
        w.begin_object_key("throughput");
        w.f64_field("mops", self.mops);
        w.str_field("bottleneck", &self.bottleneck);
        w.end_object();
        w.begin_object_key("latency_us");
        for (label, p50, p99, p999) in &self.latency {
            w.begin_object_key(label);
            w.f64_field("p50", *p50);
            w.f64_field("p99", *p99);
            w.f64_field("p999", *p999);
            w.end_object();
        }
        w.end_object();
        w.begin_object_key("pipeline");
        for (label, rtts, batches, bverbs) in &self.pipeline {
            w.begin_object_key(label);
            w.f64_field("mean_rtts", *rtts);
            w.f64_field("mean_batches", *batches);
            w.f64_field("mean_batched_verbs", *bverbs);
            w.end_object();
        }
        w.end_object();
        // The coroutine slice: virtual-clock values only, so still a pure
        // function of the seed.
        w.begin_object_key("pipeline_depth");
        w.u64_field("tasks", RT_TASKS as u64);
        w.u64_field("ops_per_task", RT_OPS_PER_TASK as u64);
        w.f64_field("depth", self.rt_depth.0);
        w.f64_field("virtual_us", self.rt_depth.1);
        w.u64_field("peak_inflight", self.rt_depth.2 as u64);
        w.end_object();
        let r = &self.recovery;
        w.begin_object_key("recovery");
        w.f64_field("meta_net_ms", r.meta_net_ms);
        w.f64_field("ckpt_net_ms", r.ckpt_net_ms);
        w.f64_field("lblock_net_ms", r.lblock_net_ms);
        w.f64_field("rblock_net_ms", r.rblock_net_ms);
        w.f64_field("index_tier_net_ms", r.index_tier_net_ms());
        w.f64_field("parity_net_ms", r.parity_net_ms);
        w.u64_field("kv_scanned", r.kv_count as u64);
        w.u64_field("lblock_count", r.lblock_count as u64);
        w.u64_field("rblock_count", r.rblock_count as u64);
        w.u64_field(
            "net_bytes",
            r.meta_bytes + r.ckpt_bytes + r.lblock_net_bytes + r.rblock_net_bytes
                + r.parity_net_bytes,
        );
        w.end_object();
        // Counters are exact event counts (never timings), so the whole
        // section is reproducible; histograms are wall-clock and stay out.
        w.begin_object_key("counters");
        for (name, v) in &self.snapshot.counters {
            w.u64_field(name, *v);
        }
        w.end_object();
        w.end_object();
        let mut s = w.finish();
        s.push('\n');
        s
    }
}
