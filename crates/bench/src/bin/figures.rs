//! Regenerates the tables and figures of the Aceso paper (SOSP'24).
//!
//! ```text
//! figures [--scale quick|default|big] [--out DIR] <experiment>...
//! figures --all
//! ```
//!
//! Experiments: `fig1a fig1b fig8 fig9 fig10 fig11 fig12 fig13 fig14
//! fig15 fig16 fig17 fig18 fig19 fig20 table2 mn_cpu`. (The paper's
//! Table 3 head-to-head lives in `bench table3`, which is deterministic
//! and CI-diffed; `mn_cpu` is the wall-clock §4.4 utilization table.)
//!
//! Each experiment prints the same rows/series the paper reports and is
//! also written to `<out>/<experiment>.txt` (default `results/`).

use aceso_bench::figs::{self, FigureOutput};
use aceso_bench::harness::BenchScale;
use std::io::Write;

fn scale_by_name(name: &str) -> BenchScale {
    match name {
        "quick" => BenchScale {
            keys: 4_000,
            ops: 6_000,
            warmup: 4_000,
            ..BenchScale::default()
        },
        "big" => BenchScale {
            keys: 100_000,
            ops: 100_000,
            warmup: 100_000,
            ..BenchScale::default()
        },
        _ => BenchScale::default(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = BenchScale::default();
    let mut full19 = false;
    let mut out_dir = String::from("results");
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = scale_by_name(&v);
                full19 = v == "big";
            }
            "--out" => out_dir = it.next().expect("--out needs a value"),
            "--all" => {
                wanted = [
                    "fig1a",
                    "fig1b",
                    "fig8",
                    "fig9",
                    "fig10",
                    "fig11",
                    "fig12",
                    "fig13",
                    "fig14",
                    "fig15",
                    "fig16",
                    "fig17",
                    "fig18",
                    "fig19",
                    "fig20",
                    "table2",
                    "mn_cpu",
                    "ablation_ckpt",
                    "ablation_recovery",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect();
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: figures [--scale quick|default|big] [--out DIR] (<experiment>... | --all)"
        );
        eprintln!(
            "experiments: fig1a fig1b fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 \
             fig16 fig17 fig18 fig19 fig20 table2 mn_cpu ablation_ckpt ablation_recovery"
        );
        std::process::exit(2);
    }
    std::fs::create_dir_all(&out_dir).expect("create results dir");

    for name in wanted {
        let t = std::time::Instant::now();
        let out: FigureOutput = match name.as_str() {
            "fig1a" => figs::fig1::fig1a(scale),
            "fig1b" => figs::fig1::fig1b(scale),
            "fig8" => figs::fig8_9::fig8(scale),
            "fig9" => figs::fig8_9::fig9(scale),
            "fig10" => figs::fig10_11::fig10(scale),
            "fig11" => figs::fig10_11::fig11(scale),
            "fig12" => figs::fig12::fig12(scale),
            "fig13" => figs::fig13::fig13(scale),
            "fig14" => figs::fig14::fig14(scale),
            "fig15" => figs::fig15::fig15(scale),
            "fig16" => figs::fig16_18::fig16(scale),
            "fig17" => figs::fig16_18::fig17(scale),
            "fig18" => figs::fig16_18::fig18(scale),
            "fig19" => figs::fig19::fig19(full19),
            "fig20" => figs::fig20::fig20(scale),
            "table2" => figs::table2::table2(scale),
            "mn_cpu" => figs::mn_cpu::mn_cpu(scale),
            "ablation_ckpt" => figs::ablation::ablation_ckpt(scale),
            "ablation_recovery" => figs::ablation::ablation_recovery(scale),
            other => {
                eprintln!("unknown experiment: {other}");
                continue;
            }
        };
        out.print();
        eprintln!("[{name} took {:.1}s]", t.elapsed().as_secs_f64());
        let path = format!("{out_dir}/{name}.txt");
        let mut f = std::fs::File::create(&path).expect("write result");
        writeln!(f, "===== {} =====", out.id).unwrap();
        f.write_all(out.text.as_bytes()).unwrap();
    }
}
