//! `bench elastic` — throughput during an online membership change.
//!
//! Drives one elastic migration (a capacity **join**, then a planned
//! **drain**) through its step machine boundary by boundary, running a
//! fixed window of deterministic YCSB-A client ops between every step —
//! the same interleaving the chaos elastic axis kills nodes inside, here
//! measured instead of crashed. Each window reports the ops that
//! committed and the modeled throughput over that window's verb records,
//! so the table shows what live traffic costs while blocks are being
//! re-placed and parity re-encoded under it.
//!
//! Every number is counted or modeled (wall-clock stays out), so the
//! rendered table is a pure function of the seed.

use aceso_core::{scrub, AcesoConfig, AcesoStore, ElasticStep, StoreError};
use aceso_obs::Registry;
use aceso_rdma::PhaseMeasurement;
use aceso_workloads::ycsb::YcsbKind;
use aceso_workloads::{value_for, Op, YcsbWorkload};
use std::sync::Arc;

/// Logical clients driven round-robin in one thread.
const CLIENTS: usize = 4;
/// Keys preloaded before the migration begins.
const KEYS: u64 = 160;
/// Ops issued between consecutive migrator steps.
const WINDOW_OPS: usize = 120;
/// Value payload size.
const VALUE_LEN: usize = 64;
/// Simulated closed-loop client count fed to the cost model.
const SIM_CLIENTS: usize = 184;
/// Column migrated onto the fresh node.
const MIG_COL: usize = 1;

/// Whether the measured migration was a join or a drain.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A fresh node joins and takes over the migrated column.
    Join,
    /// The migrated column is evacuated off its node before retirement.
    Drain,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Join => "join",
            Kind::Drain => "drain",
        }
    }
}

/// One inter-step traffic window.
pub struct WindowRow {
    /// The migrator step that ran *before* this window (`baseline` for
    /// the pre-migration window).
    pub step: String,
    /// Ops that committed inside the window.
    pub committed: usize,
    /// Ops attempted (committed + commit-retry exhaustions).
    pub attempted: usize,
    /// Modeled throughput over this window's verb records.
    pub mops: f64,
}

/// One full migration measured window by window.
pub struct ElasticPhase {
    /// Join or drain.
    pub kind: Kind,
    /// One row per window, in step order.
    pub rows: Vec<WindowRow>,
    /// `elastic.batches` — copy batches the migrator executed.
    pub batches: u64,
    /// `elastic.blocks_moved` — data/delta blocks copied.
    pub blocks_moved: u64,
    /// Whether the post-migration scrub found every invariant intact.
    pub scrub_clean: bool,
}

/// Both phases of the slice.
pub struct ElasticSlice {
    /// Seed the YCSB-A streams were derived from.
    pub seed: u64,
    /// The join phase followed by the drain phase.
    pub phases: Vec<ElasticPhase>,
}

/// Runs `WINDOW_OPS` round-robin ops and measures the window.
fn run_window(
    store: &Arc<AcesoStore>,
    clients: &mut [aceso_core::AcesoClient],
    streams: &mut [YcsbWorkload],
    opno: &mut usize,
    step: String,
) -> WindowRow {
    store.cluster.reset_traffic();
    for c in clients.iter() {
        c.dm.reset_stats();
    }
    let (mut committed, mut attempted) = (0usize, 0usize);
    for _ in 0..WINDOW_OPS {
        let i = *opno % CLIENTS;
        let req = streams[i].next().expect("ycsb streams are infinite");
        let val = value_for(&req.key, *opno as u64, req.value_len);
        *opno += 1;
        attempted += 1;
        let res = match req.op {
            Op::Search => clients[i].search(&req.key).map(|_| ()),
            Op::Update => clients[i].update(&req.key, &val),
            Op::Insert => clients[i].insert(&req.key, &val),
            Op::Delete => clients[i].delete(&req.key).map(|_| ()),
        };
        match res {
            Ok(()) => committed += 1,
            // A fence storm right at a step boundary can exhaust one
            // op's commit budget; that is backpressure, not corruption —
            // the scrub below proves the store stayed intact.
            Err(StoreError::RetriesExhausted) => {}
            Err(e) => panic!("window '{step}' op ({:?}): {e}", req.op),
        }
    }
    let mut records = Vec::with_capacity(WINDOW_OPS);
    for c in clients.iter_mut() {
        records.extend(c.dm.take_ops().records);
    }
    let node_fg: Vec<_> = store
        .cluster
        .nodes()
        .iter()
        .map(|n| n.traffic.snapshot())
        .collect();
    let bg = vec![0.0; node_fg.len()];
    let m = PhaseMeasurement {
        n_clients: SIM_CLIENTS,
        node_fg,
        bg_bytes_per_sec: bg,
        records,
        pipeline_depth: None,
    };
    let mops = store.cfg.cost.report(&m).mops;
    WindowRow {
        step,
        committed,
        attempted,
        mops,
    }
}

/// Measures one migration kind end to end.
pub(crate) fn run_phase(seed: u64, kind: Kind) -> ElasticPhase {
    let store = AcesoStore::launch(AcesoConfig::small()).expect("launch");
    let mut loader = store.client().expect("client");
    for key in YcsbWorkload::preload_keys(KEYS) {
        loader
            .insert(&key, &value_for(&key, 0, VALUE_LEN))
            .expect("preload");
    }
    loader.close_open_blocks().expect("close");

    let registry = Registry::new();
    store.install_recorder(Arc::clone(&registry));
    let mut clients: Vec<_> = (0..CLIENTS)
        .map(|_| store.client().expect("client"))
        .collect();
    let mut streams: Vec<YcsbWorkload> = (0..CLIENTS)
        .map(|i| YcsbWorkload::new(YcsbKind::A, KEYS, 0.99, VALUE_LEN, i as u32, seed))
        .collect();
    let mut opno = 0usize;

    let mut rows = vec![run_window(
        &store,
        &mut clients,
        &mut streams,
        &mut opno,
        "baseline".into(),
    )];
    let mut mig = match kind {
        Kind::Join => store.begin_join(MIG_COL).expect("begin join"),
        Kind::Drain => store.begin_drain(MIG_COL).expect("begin drain"),
    };
    loop {
        let step = mig.step().expect("migrator step");
        if step == ElasticStep::Done {
            break;
        }
        rows.push(run_window(
            &store,
            &mut clients,
            &mut streams,
            &mut opno,
            step.to_string(),
        ));
    }
    for c in &mut clients {
        c.flush_bitmaps().expect("flush");
    }
    let scrub_clean = scrub(&store).expect("scrub").is_clean();
    let counter = |name: &str| -> u64 {
        registry
            .snapshot()
            .counters
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let phase = ElasticPhase {
        kind,
        rows,
        batches: counter("elastic.batches"),
        blocks_moved: counter("elastic.blocks_moved"),
        scrub_clean,
    };
    store.shutdown();
    phase
}

/// Runs the full slice: a join migration, then a drain, each with live
/// traffic between every migrator step.
pub fn elastic_slice(seed: u64) -> ElasticSlice {
    ElasticSlice {
        seed,
        phases: vec![run_phase(seed, Kind::Join), run_phase(seed, Kind::Drain)],
    }
}

impl ElasticSlice {
    /// Renders the slice as the `results/` table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "elastic slice: YCSB-A between migrator steps, {KEYS} keys, \
             {WINDOW_OPS} ops/window over {CLIENTS} clients, col {MIG_COL}, seed {:#x}\n\
             kind  | step         | committed | attempted |  Mops\n",
            self.seed
        );
        for p in &self.phases {
            for r in &p.rows {
                s.push_str(&format!(
                    "{:<5} | {:<12} | {:9} | {:9} | {:5.2}\n",
                    p.kind.label(),
                    r.step,
                    r.committed,
                    r.attempted,
                    r.mops,
                ));
            }
            s.push_str(&format!(
                "{}: {} copy batches, {} blocks moved, scrub {}\n",
                p.kind.label(),
                p.batches,
                p.blocks_moved,
                if p.scrub_clean { "clean" } else { "DIRTY" },
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance: every inter-step window — join *and* drain — commits
    /// client ops while the migration is in flight, and the store scrubs
    /// clean afterwards.
    #[test]
    fn every_window_commits_ops_for_both_kinds() {
        let slice = elastic_slice(0xace50);
        assert_eq!(slice.phases.len(), 2);
        for p in &slice.phases {
            assert!(p.scrub_clean, "{} phase left the store dirty", p.kind.label());
            assert!(p.batches > 0 && p.blocks_moved > 0);
            // baseline + announce + copy batches + reencode + publish + free.
            assert!(p.rows.len() >= 5, "only {} windows", p.rows.len());
            for r in &p.rows {
                assert!(
                    r.committed > 0,
                    "{} window '{}' committed no ops ({} attempted)",
                    p.kind.label(),
                    r.step,
                    r.attempted
                );
                assert!(r.mops > 0.0, "window '{}' modeled zero throughput", r.step);
            }
        }
    }

    /// The same seed reproduces the same join phase bit for bit.
    #[test]
    fn phase_is_deterministic() {
        let a = run_phase(0xace50, Kind::Join);
        let b = run_phase(0xace50, Kind::Join);
        assert_eq!(a.rows.len(), b.rows.len());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.step, rb.step);
            assert_eq!(ra.committed, rb.committed);
            assert_eq!(ra.mops.to_bits(), rb.mops.to_bits());
        }
        assert_eq!(a.blocks_moved, b.blocks_moved);
    }
}
