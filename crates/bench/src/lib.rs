//! Benchmark harness shared by the `figures` binary and the Criterion
//! kernels.
//!
//! Every performance figure follows the same recipe:
//!
//! 1. run a *real* multi-client phase against the store (all protocol code
//!    executes, contention and retries happen for real),
//! 2. collect the measured verb profile (per-node demand + per-op records),
//! 3. feed it to the calibrated NIC cost model
//!    ([`aceso_rdma::CostModel`]), which converts it into the
//!    throughput/latency numbers the paper reports.
//!
//! The split makes figures deterministic and hardware-independent: the
//! *demand* is measured from real execution, the *capacity* is the modeled
//! ConnectX-3 NIC. `EXPERIMENTS.md` records the calibration.

#![forbid(unsafe_code)]

pub mod clients;
pub mod elastic;
pub mod figs;
pub mod harness;
pub mod skew;
pub mod table3;

pub use clients::{clients_sweep, ClientsSweep, SweepRow};
pub use elastic::{elastic_slice, ElasticPhase, ElasticSlice};
pub use harness::{BenchScale, Phase};
pub use skew::{skew_sweep, SkewRow, SkewSweep};
pub use table3::{table3_slice, Table3Row, Table3Slice};

/// Formats a Mops number for tables.
pub fn fmt_mops(x: f64) -> String {
    format!("{x:7.2}")
}

/// Formats microseconds for tables.
pub fn fmt_us(x: f64) -> String {
    format!("{x:7.1}")
}

/// Formats bytes in a human unit.
pub fn fmt_bytes(x: u64) -> String {
    if x >= 1 << 30 {
        format!("{:.2} GiB", x as f64 / (1u64 << 30) as f64)
    } else if x >= 1 << 20 {
        format!("{:.2} MiB", x as f64 / (1u64 << 20) as f64)
    } else if x >= 1 << 10 {
        format!("{:.2} KiB", x as f64 / (1u64 << 10) as f64)
    } else {
        format!("{x} B")
    }
}
