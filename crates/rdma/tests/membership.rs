//! Membership-service coverage for the node replacement path: kill
//! idempotency, `add_node`, and the master's event stream across a
//! kill → replace cycle.

use aceso_rdma::{Cluster, ClusterConfig, CostModel, FailureEvent, NodeId};

fn cluster(n: usize) -> std::sync::Arc<Cluster> {
    Cluster::new(ClusterConfig {
        num_mns: n,
        region_len: 4096,
        cost: CostModel::default(),
    })
}

#[test]
fn kill_is_idempotent_and_notifies_once() {
    let c = cluster(3);
    let rx = c.master.subscribe();
    assert!(c.kill_node(NodeId(1)));
    assert!(!c.kill_node(NodeId(1)));
    assert!(!c.kill_node(NodeId(1)));
    assert_eq!(rx.recv().unwrap(), FailureEvent::NodeFailed(NodeId(1)));
    // Exactly one failure event despite three kills.
    assert!(rx.try_recv().is_err());
}

#[test]
fn replacement_node_joins_membership() {
    let c = cluster(2);
    let rx = c.master.subscribe();
    let epoch0 = c.master.view().epoch;

    c.kill_node(NodeId(0));
    let n = c.add_node(4096);
    assert_eq!(n.id, NodeId(2));
    assert!(n.is_alive());

    // The master view reflects the swap: node 0 gone, node 2 in.
    let view = c.master.view();
    assert!(view.epoch >= epoch0 + 2);
    assert!(!view.alive.contains(&NodeId(0)));
    assert!(view.alive.contains(&NodeId(1)));
    assert!(view.alive.contains(&NodeId(2)));

    // Subscribers saw the failure then the join, in order.
    assert_eq!(rx.recv().unwrap(), FailureEvent::NodeFailed(NodeId(0)));
    assert_eq!(rx.recv().unwrap(), FailureEvent::NodeJoined(NodeId(2)));

    // The replacement accepts verbs; the dead node keeps failing.
    let cl = c.client();
    let a = aceso_rdma::GlobalAddr::new(NodeId(2), 0);
    cl.write(a, &[1u8; 8]).unwrap();
    assert!(cl
        .write(aceso_rdma::GlobalAddr::new(NodeId(0), 0), &[1u8; 8])
        .is_err());
}

#[test]
fn double_kill_then_replace_keeps_ids_stable() {
    let c = cluster(3);
    c.kill_node(NodeId(2));
    c.kill_node(NodeId(2)); // Well-defined no-op.
    let a = c.add_node(4096);
    let b = c.add_node(4096);
    // Appended ids never reuse a crashed slot.
    assert_eq!((a.id, b.id), (NodeId(3), NodeId(4)));
    assert_eq!(c.len(), 5);
    assert!(c.node(NodeId(3)).is_ok());
    assert!(c.node(NodeId(4)).is_ok());
    assert!(c.node(NodeId(2)).is_err());
}
