//! Scenario tests of the NIC cost model: each paper-relevant regime must
//! bind on the right resource.

use aceso_rdma::{Bottleneck, CostModel, OpKind, OpRecord, PhaseMeasurement};

fn rec(kind: OpKind, rtts: u32, verbs: u32, cas: u32, rd: u32, wr: u32) -> OpRecord {
    OpRecord {
        kind,
        rtts,
        verbs,
        cas,
        rpcs: 0,
        read_bytes: rd,
        write_bytes: wr,
        retries: 0,
        batch_max: 0,
        batches: 0,
        batched_verbs: 0,
    }
}

fn snapshot(
    reads: u64,
    writes: u64,
    cas: u64,
    rd_b: u64,
    wr_b: u64,
) -> aceso_rdma::stats::VerbSnapshot {
    aceso_rdma::stats::VerbSnapshot {
        reads,
        writes,
        cas,
        faa: 0,
        rpcs: 0,
        read_bytes: rd_b,
        write_bytes: wr_b,
        batched: 0,
    }
}

/// Few clients with long operations are client-bound, not NIC-bound.
#[test]
fn small_client_count_binds_on_round_trips() {
    let model = CostModel::default();
    let m = PhaseMeasurement {
        n_clients: 2,
        node_fg: vec![snapshot(100, 100, 10, 100_000, 100_000)],
        bg_bytes_per_sec: vec![0.0],
        records: (0..1000)
            .map(|_| rec(OpKind::Update, 6, 8, 1, 256, 1024))
            .collect(),
        pipeline_depth: None,
    };
    let r = model.report(&m);
    assert_eq!(r.bottleneck, Bottleneck::ClientRtt);
    // 2 clients × 4 outstanding / ~18 µs ≈ 0.44 Mops.
    assert!(r.mops < 1.0, "{}", r.mops);
}

/// Heavy background traffic cannot drive available bandwidth negative.
#[test]
fn background_over_line_rate_clamps() {
    let model = CostModel::default();
    let m = PhaseMeasurement {
        n_clients: 200,
        node_fg: vec![snapshot(1000, 0, 0, 4_096_000, 0)],
        bg_bytes_per_sec: vec![1e12], // Absurd: far over line rate.
        records: (0..1000)
            .map(|_| rec(OpKind::Search, 1, 1, 0, 4096, 0))
            .collect(),
        pipeline_depth: None,
    };
    let r = model.report(&m);
    assert!(r.mops > 0.0 && r.mops.is_finite());
    assert!(matches!(r.bottleneck, Bottleneck::NodeBandwidth(_)));
}

/// Latency percentiles are ordered and respond to retries.
#[test]
fn latency_percentiles_ordered_and_retry_sensitive() {
    let model = CostModel::default();
    let mk = |retry_every: usize| PhaseMeasurement {
        n_clients: 100,
        node_fg: vec![snapshot(500, 500, 500, 500_000, 500_000)],
        bg_bytes_per_sec: vec![0.0],
        records: (0..2000)
            .map(|i| {
                let extra = if i % retry_every == 0 { 4 } else { 0 };
                rec(OpKind::Update, 3 + extra, 4 + extra, 1, 16, 1024)
            })
            .collect(),
        pipeline_depth: None,
    };
    let calm = model.latency(&mk(1000), Some(OpKind::Update));
    let contended = model.latency(&mk(4), Some(OpKind::Update));
    assert!(calm.p50_us <= calm.p99_us);
    assert!(
        contended.p99_us > calm.p99_us,
        "retries must fatten the tail"
    );
    assert!(calm.mean_us > 0.0);
}

/// The per-kind latency filter really filters.
#[test]
fn latency_filter_by_kind() {
    let model = CostModel::default();
    let m = PhaseMeasurement {
        n_clients: 100,
        node_fg: vec![snapshot(100, 100, 0, 100_000, 100_000)],
        bg_bytes_per_sec: vec![0.0],
        records: (0..100)
            .flat_map(|_| {
                [
                    rec(OpKind::Search, 1, 2, 0, 1024, 0),
                    rec(OpKind::Update, 8, 10, 1, 0, 4096),
                ]
            })
            .collect(),
        pipeline_depth: None,
    };
    let s = model.latency(&m, Some(OpKind::Search));
    let u = model.latency(&m, Some(OpKind::Update));
    let all = model.latency(&m, None);
    assert!(s.p50_us < u.p50_us);
    assert!(all.p50_us >= s.p50_us && all.p50_us <= u.p50_us);
}

/// Demand concentrated on one node binds that node, not the average.
#[test]
fn hot_node_binds() {
    let model = CostModel::default();
    let m = PhaseMeasurement {
        n_clients: 500,
        node_fg: vec![
            snapshot(0, 10_000, 10_000, 0, 1_000_000),
            snapshot(0, 10, 10, 0, 1_000),
        ],
        bg_bytes_per_sec: vec![0.0, 0.0],
        records: (0..10_000)
            .map(|_| rec(OpKind::Update, 2, 2, 1, 0, 100))
            .collect(),
        pipeline_depth: None,
    };
    let r = model.report(&m);
    assert_eq!(r.bottleneck, Bottleneck::NodeAtomics(0));
    assert_eq!(r.bottleneck.label(), "atomics@mn0");
}
