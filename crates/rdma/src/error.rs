//! Error types for the simulated fabric.

use crate::addr::NodeId;
use crate::fault::VerbKind;
use core::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = core::result::Result<T, RdmaError>;

/// Errors surfaced by verbs and RPC on the simulated fabric.
///
/// Under the paper's fail-stop model the only runtime failure a client
/// observes is an unreachable node; the remaining variants are programming
/// errors (bad addresses) or shutdown races, kept as errors rather than
/// panics so the store's failure-handling paths can exercise them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RdmaError {
    /// The target memory node has crashed (fail-stop) or been removed.
    NodeUnreachable(NodeId),
    /// The address is outside the node's registered region.
    OutOfBounds {
        /// Offending node.
        node: NodeId,
        /// Requested byte offset.
        offset: u64,
        /// Requested access length in bytes.
        len: usize,
        /// Size of the registered region in bytes.
        region: usize,
    },
    /// An atomic verb was issued on a non-8-byte-aligned address.
    Unaligned(u64),
    /// A CAS/FAA targeted a misaligned or out-of-region word. Caught at the
    /// verb layer before the memory is touched: a real RNIC would complete
    /// such an atomic with undefined semantics, so the simulation fails it
    /// loudly instead (see `aceso-san`'s alignment lints).
    Misaligned {
        /// The offending verb's class.
        verb: VerbKind,
        /// The verb's target node.
        node: NodeId,
        /// The misaligned byte offset.
        offset: u64,
    },
    /// The RPC server side has shut down.
    RpcClosed,
    /// The RPC call timed out (used by lease/membership machinery).
    RpcTimeout,
    /// An installed [`crate::FaultPlan`] failed this verb. Unlike
    /// `NodeUnreachable` (which clients retry across recovery), an injected
    /// failure propagates, standing in for a client that crashed at this
    /// exact protocol step.
    Injected {
        /// The failed verb's class.
        verb: VerbKind,
        /// The verb's target node.
        node: NodeId,
    },
    /// The verb targeted a range whose placement moved in a newer epoch
    /// than the client's session epoch (see
    /// [`crate::MemoryNode::install_fence`]). The client must refresh its
    /// placement view and re-resolve the address; retrying the same verb
    /// verbatim fails forever.
    EpochFenced {
        /// The node that rejected the access.
        node: NodeId,
        /// The placement epoch the client must catch up to.
        required: u64,
    },
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::NodeUnreachable(n) => write!(f, "node {n} unreachable"),
            RdmaError::OutOfBounds {
                node,
                offset,
                len,
                region,
            } => write!(
                f,
                "access [{offset:#x}, +{len}) out of bounds on {node} (region {region} bytes)"
            ),
            RdmaError::Unaligned(off) => write!(f, "atomic verb on unaligned offset {off:#x}"),
            RdmaError::Misaligned { verb, node, offset } => {
                write!(f, "{verb} on {node} targets misaligned word {offset:#x}")
            }
            RdmaError::RpcClosed => write!(f, "rpc endpoint closed"),
            RdmaError::RpcTimeout => write!(f, "rpc timed out"),
            RdmaError::Injected { verb, node } => {
                write!(f, "injected fault on {verb} to {node}")
            }
            RdmaError::EpochFenced { node, required } => {
                write!(
                    f,
                    "access fenced on {node}: placement moved at epoch {required}"
                )
            }
        }
    }
}

impl std::error::Error for RdmaError {}
