//! The reliable master and its lease-based membership service.
//!
//! Following the paper (§2.1, §3.4), a reliable master maintains a
//! membership view of all memory nodes, detects fail-stop crashes, and
//! disseminates failure notifications to clients. Master fault tolerance
//! (state-machine replication) is out of scope, as in the paper.

use crate::addr::NodeId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::BTreeSet;

/// A membership change broadcast to subscribers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureEvent {
    /// A memory node crashed (fail-stop: its memory contents are lost).
    NodeFailed(NodeId),
    /// A fresh memory node joined (e.g. the recovery target).
    NodeJoined(NodeId),
    /// A memory node was retired after a planned drain: its contents were
    /// re-encoded elsewhere first, so subscribers must *not* trigger
    /// recovery (contrast [`FailureEvent::NodeFailed`]).
    NodeDrained(NodeId),
}

/// A point-in-time view of cluster membership.
#[derive(Clone, Debug)]
pub struct MembershipView {
    /// Monotone view number; bumped on every membership change.
    pub epoch: u64,
    /// Ids of currently alive memory nodes, ascending.
    pub alive: Vec<NodeId>,
}

struct MasterInner {
    epoch: u64,
    alive: BTreeSet<NodeId>,
    subscribers: Vec<Sender<FailureEvent>>,
}

/// The cluster master: tracks which memory nodes hold a live lease and
/// notifies subscribed clients of failures.
pub struct Master {
    inner: Mutex<MasterInner>,
}

impl Default for Master {
    fn default() -> Self {
        Self::new()
    }
}

impl Master {
    /// Creates a master with an empty membership.
    pub fn new() -> Self {
        Master {
            inner: Mutex::new(MasterInner {
                epoch: 0,
                alive: BTreeSet::new(),
                subscribers: Vec::new(),
            }),
        }
    }

    /// Registers a node as alive (called by the cluster on node start).
    pub fn register(&self, node: NodeId) {
        let mut g = self.inner.lock();
        if g.alive.insert(node) {
            g.epoch += 1;
            g.subscribers
                .retain(|s| s.send(FailureEvent::NodeJoined(node)).is_ok());
        }
    }

    /// Marks a node's lease as expired and broadcasts the failure.
    pub fn mark_failed(&self, node: NodeId) {
        let mut g = self.inner.lock();
        if g.alive.remove(&node) {
            g.epoch += 1;
            g.subscribers
                .retain(|s| s.send(FailureEvent::NodeFailed(node)).is_ok());
        }
    }

    /// Retires a node's lease after a planned drain and broadcasts
    /// [`FailureEvent::NodeDrained`]. Like a failure the node leaves the
    /// alive set and the epoch advances, but the event tells subscribers
    /// the contents were moved, not lost.
    pub fn mark_drained(&self, node: NodeId) {
        let mut g = self.inner.lock();
        if g.alive.remove(&node) {
            g.epoch += 1;
            g.subscribers
                .retain(|s| s.send(FailureEvent::NodeDrained(node)).is_ok());
        }
    }

    /// Returns whether `node` currently holds a lease.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.inner.lock().alive.contains(&node)
    }

    /// Returns the current membership view.
    pub fn view(&self) -> MembershipView {
        let g = self.inner.lock();
        MembershipView {
            epoch: g.epoch,
            alive: g.alive.iter().copied().collect(),
        }
    }

    /// Subscribes to future membership events.
    ///
    /// Events that occurred before the subscription are not replayed; callers
    /// should reconcile against [`Master::view`] after subscribing.
    pub fn subscribe(&self) -> Receiver<FailureEvent> {
        let (tx, rx) = unbounded();
        self.inner.lock().subscribers.push(tx);
        rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_fail() {
        let m = Master::new();
        m.register(NodeId(0));
        m.register(NodeId(1));
        assert!(m.is_alive(NodeId(0)));
        let v = m.view();
        assert_eq!(v.alive.len(), 2);

        m.mark_failed(NodeId(0));
        assert!(!m.is_alive(NodeId(0)));
        assert!(m.is_alive(NodeId(1)));
        assert!(m.view().epoch > v.epoch);
    }

    #[test]
    fn double_fail_is_idempotent() {
        let m = Master::new();
        m.register(NodeId(0));
        let e1 = m.view().epoch;
        m.mark_failed(NodeId(0));
        let e2 = m.view().epoch;
        m.mark_failed(NodeId(0));
        assert_eq!(m.view().epoch, e2);
        assert!(e2 > e1);
    }

    #[test]
    fn drain_retires_lease_with_distinct_event() {
        let m = Master::new();
        let rx = m.subscribe();
        m.register(NodeId(2));
        let e1 = m.view().epoch;
        m.mark_drained(NodeId(2));
        assert!(!m.is_alive(NodeId(2)));
        assert!(m.view().epoch > e1);
        // Idempotent, like mark_failed.
        let e2 = m.view().epoch;
        m.mark_drained(NodeId(2));
        assert_eq!(m.view().epoch, e2);
        assert_eq!(rx.recv().unwrap(), FailureEvent::NodeJoined(NodeId(2)));
        assert_eq!(rx.recv().unwrap(), FailureEvent::NodeDrained(NodeId(2)));
    }

    #[test]
    fn subscribers_receive_events() {
        let m = Master::new();
        let rx = m.subscribe();
        m.register(NodeId(7));
        m.mark_failed(NodeId(7));
        assert_eq!(rx.recv().unwrap(), FailureEvent::NodeJoined(NodeId(7)));
        assert_eq!(rx.recv().unwrap(), FailureEvent::NodeFailed(NodeId(7)));
    }
}
