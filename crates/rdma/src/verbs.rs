//! Client-side one-sided verbs with transparent accounting.
//!
//! A [`DmClient`] is the simulated equivalent of a compute-node thread's set
//! of RC queue pairs. Every verb performs the real memory operation on the
//! target node's region *and* records its cost:
//!
//! * into the client's own [`VerbCounters`] and the current operation's
//!   profile (round trips, verbs, bytes, retries), and
//! * into the target node's foreground or background counters, depending on
//!   whether the client was created with [`crate::Cluster::client`] or
//!   [`crate::Cluster::background_client`].
//!
//! Doorbell batching is modelled by [`DmClient::batch`]: verbs issued inside
//! the closure count individually against NIC IOPS but share a single
//! sequential round trip in the latency profile, mirroring how a doorbell
//! batch posts several WQEs with one PCIe doorbell and overlapping flight
//! times.

use crate::addr::{GlobalAddr, NodeId};
use crate::cluster::{Cluster, MemoryNode};
use crate::cq::SimCq;
use crate::error::{RdmaError, Result};
use crate::fault::{FaultAction, FaultPlan, FaultSite, VerbKind};
use crate::rpc::RpcClient;
use crate::stats::{OpKind, OpRecord, OpStats, VerbCounters};
use crate::trace::{TraceEvent, TraceOp};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Default)]
struct CurOp {
    active: bool,
    rtts: u32,
    verbs: u32,
    cas: u32,
    rpcs: u32,
    read_bytes: u32,
    write_bytes: u32,
    retries: u32,
    batch_depth: u32,
    batch_rtt_counted: bool,
    /// Verbs issued so far inside the current outermost batch.
    batch_verbs: u32,
    /// Deepest doorbell batch seen during this op.
    batch_max: u32,
    /// Doorbell batches that posted at least one verb.
    batches: u32,
    /// Total verbs posted inside batches during this op.
    batched_total: u32,
}

enum VerbClass {
    Read,
    Write,
    Cas,
    Faa,
}

/// Modeled latency accrued since the last [`DmClient::settle`]. Only
/// maintained while a completion queue is attached; independent of the
/// per-op profile so preload and background paths accrue too.
#[derive(Default)]
struct Accrual {
    /// Microseconds of fabric wait owed to the completion queue.
    us: f64,
    /// The next verb is the first of an outermost doorbell batch (pays a
    /// full round trip; the chained rest pay only the posting tax).
    batch_first: bool,
}

/// Marker type returned by [`DmClient::batch`] scopes; exists so the closure
/// signature documents that verbs inside share one round trip.
pub struct WriteBatch;

/// A client endpoint on the simulated fabric.
///
/// One `DmClient` belongs to one thread of execution (it is `Sync` only for
/// convenience of sharing through `Arc` in tests; per-op profiles assume the
/// owner serializes its own operations, as a real client coroutine does).
pub struct DmClient {
    cluster: Arc<Cluster>,
    background: bool,
    counters: Arc<VerbCounters>,
    ops: Mutex<OpStats>,
    cur: Mutex<CurOp>,
    fault: Mutex<Option<Arc<FaultPlan>>>,
    /// Attached completion queue, if this client runs in async mode.
    cq: Mutex<Option<Arc<SimCq>>>,
    /// Fast-path flag mirroring `cq.is_some()`.
    cq_on: AtomicBool,
    /// Latency accrued since the last [`DmClient::settle`].
    accr: Mutex<Accrual>,
    /// Dense per-cluster id identifying this client in verb traces.
    trace_id: u32,
    /// Per-client event sequence number for the trace stream.
    trace_seq: AtomicU64,
    /// Session placement epoch checked against node fences (see
    /// [`DmClient::set_placement_epoch`]). Defaults to `u64::MAX`, which
    /// passes every fence: clients that do not participate in placement
    /// (background, recovery, control plane) stay unaffected.
    placement_epoch: AtomicU64,
}

impl DmClient {
    pub(crate) fn new(cluster: Arc<Cluster>, background: bool) -> Self {
        let trace_id = cluster.next_trace_client();
        DmClient {
            cluster,
            background,
            counters: Arc::new(VerbCounters::new()),
            ops: Mutex::new(OpStats::new()),
            cur: Mutex::new(CurOp::default()),
            fault: Mutex::new(None),
            cq: Mutex::new(None),
            cq_on: AtomicBool::new(false),
            accr: Mutex::new(Accrual::default()),
            trace_id,
            trace_seq: AtomicU64::new(0),
            placement_epoch: AtomicU64::new(u64::MAX),
        }
    }

    /// Declares the placement epoch this client's address resolution is
    /// based on. Verbs targeting a range fenced at a newer epoch (see
    /// [`crate::MemoryNode::install_fence`]) fail with
    /// [`RdmaError::EpochFenced`] until the client refreshes its placement
    /// view and calls this again. Stands in for the epoch tag a real
    /// fabric would carry in each request header.
    pub fn set_placement_epoch(&self, epoch: u64) {
        self.placement_epoch.store(epoch, Ordering::Release);
    }

    /// The placement epoch last declared via
    /// [`DmClient::set_placement_epoch`] (`u64::MAX` if never set).
    pub fn placement_epoch(&self) -> u64 {
        self.placement_epoch.load(Ordering::Acquire)
    }

    /// Rejects an access overlapping a range fenced at a newer placement
    /// epoch than this client has declared. One relaxed load when the
    /// node carries no fences.
    #[inline]
    fn check_fence(&self, node: &MemoryNode, offset: u64, len: usize) -> Result<()> {
        if let Some(required) = node.fence_required(offset, len) {
            if self.placement_epoch.load(Ordering::Acquire) < required {
                return Err(RdmaError::EpochFenced {
                    node: node.id,
                    required,
                });
            }
        }
        Ok(())
    }

    /// This client's id in verb traces (see [`crate::TraceEvent`]).
    pub fn trace_id(&self) -> u32 {
        self.trace_id
    }

    /// Delivers one event to the cluster's trace sink, if installed. Called
    /// only after the verb's memory effect landed, so the trace is exactly
    /// the set of accesses a remote NIC executed.
    #[inline]
    fn trace(&self, node: NodeId, op: TraceOp, offset: u64, len: usize) {
        if !self.cluster.trace_enabled() {
            return;
        }
        if let Some(sink) = self.cluster.trace_sink() {
            let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
            sink.record(TraceEvent {
                client: self.trace_id,
                seq,
                node,
                op,
                offset,
                len,
            });
        }
    }

    /// Rejects CAS/FAA targets that a real RNIC would corrupt silently:
    /// the word must be 8-byte aligned and entirely inside the region.
    /// Checked unconditionally (the typed error *is* the assertion) so the
    /// protocol lints in `aceso-san` can exercise the failure path.
    fn check_atomic_target(&self, node: &MemoryNode, kind: VerbKind, offset: u64) -> Result<()> {
        let aligned = offset.is_multiple_of(8);
        let in_region = offset
            .checked_add(8)
            .is_some_and(|end| end as usize <= node.region.len());
        if !aligned || !in_region {
            return Err(RdmaError::Misaligned {
                verb: kind,
                node: node.id,
                offset,
            });
        }
        Ok(())
    }

    /// Installs a fault plan intercepting every verb this client issues.
    pub fn install_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.fault.lock() = Some(plan);
    }

    /// Removes this client's fault plan, if any.
    pub fn clear_fault_plan(&self) {
        *self.fault.lock() = None;
    }

    /// Consults the client-side then the node-side fault plan for one verb.
    /// `Ok(true)` means "execute the verb, then fail-stop the target node"
    /// ([`FaultAction::KillNode`]); delays are served inline; `Fail`
    /// surfaces as [`RdmaError::Injected`] before the memory is touched.
    fn intercept(&self, node: &MemoryNode, kind: VerbKind, offset: u64, len: usize) -> Result<bool> {
        let site = FaultSite {
            kind,
            node: node.id,
            offset,
            len,
        };
        let mut kill_after = false;
        let plans = [self.fault.lock().clone(), node.fault_plan()];
        for plan in plans.into_iter().flatten() {
            match plan.intercept(site) {
                None => {}
                Some(FaultAction::Fail) => {
                    return Err(RdmaError::Injected {
                        verb: kind,
                        node: node.id,
                    })
                }
                Some(FaultAction::Delay(us)) => FaultPlan::apply_delay(us),
                Some(FaultAction::KillNode) => kill_after = true,
            }
        }
        Ok(kill_after)
    }

    /// The cluster this client is attached to.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// This client's cumulative verb counters.
    pub fn counters(&self) -> &Arc<VerbCounters> {
        &self.counters
    }

    fn node(&self, id: NodeId) -> Result<Arc<MemoryNode>> {
        self.cluster.node(id)
    }

    fn account(&self, node: &MemoryNode, class: VerbClass, rd: usize, wr: usize) {
        // CAS stays out of the doorbell discount: the commit CAS is the
        // ordered release edge and never rides inside a batch.
        let batchable = !matches!(class, VerbClass::Cas);
        let in_batch = {
            let mut cur = self.cur.lock();
            let in_batch = cur.batch_depth > 0;
            if cur.active {
                cur.verbs += 1;
                if matches!(class, VerbClass::Cas) {
                    cur.cas += 1;
                }
                cur.read_bytes = cur.read_bytes.saturating_add(rd as u32);
                cur.write_bytes = cur.write_bytes.saturating_add(wr as u32);
                if in_batch {
                    if !cur.batch_rtt_counted {
                        cur.batch_rtt_counted = true;
                        cur.rtts += 1;
                        cur.batches += 1;
                    }
                    cur.batch_verbs += 1;
                    cur.batch_max = cur.batch_max.max(cur.batch_verbs);
                    if batchable {
                        cur.batched_total += 1;
                    }
                } else {
                    cur.rtts += 1;
                }
            }
            in_batch
        };
        let node_ctr = if self.background {
            &node.background
        } else {
            &node.traffic
        };
        for ctr in [node_ctr, self.counters.as_ref()] {
            match class {
                VerbClass::Read => ctr.reads.fetch_add(1, Ordering::Relaxed),
                VerbClass::Write => ctr.writes.fetch_add(1, Ordering::Relaxed),
                VerbClass::Cas => ctr.cas.fetch_add(1, Ordering::Relaxed),
                VerbClass::Faa => ctr.faa.fetch_add(1, Ordering::Relaxed),
            };
            ctr.read_bytes.fetch_add(rd as u64, Ordering::Relaxed);
            ctr.write_bytes.fetch_add(wr as u64, Ordering::Relaxed);
            if in_batch && batchable {
                ctr.batched.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.accrue_verb(in_batch, batchable, rd + wr);
    }

    /// Accrues one verb's modeled latency toward the next
    /// [`DmClient::settle`], mirroring [`crate::CostModel`]'s base-latency
    /// accounting: an unbatched verb (or the first of a doorbell batch)
    /// costs a full round trip, a chained batchable verb costs only the
    /// posting tax, and every verb pays its wire bytes.
    #[inline]
    fn accrue_verb(&self, in_batch: bool, batchable: bool, bytes: usize) {
        if !self.cq_on.load(Ordering::Relaxed) {
            return;
        }
        let cost = &self.cluster.cost;
        let mut a = self.accr.lock();
        let base = if in_batch {
            if a.batch_first {
                a.batch_first = false;
                cost.rtt_us
            } else if batchable {
                cost.post_us
            } else {
                // CAS inside a batch: the release edge is never chained, so
                // it is charged like an unbatched verb.
                cost.rtt_us
            }
        } else {
            cost.rtt_us
        };
        a.us += base + bytes as f64 / cost.node_bw * 1e6;
    }

    /// Accrues one RPC round trip toward the next [`DmClient::settle`].
    #[inline]
    fn accrue_rpc(&self, bytes: usize) {
        if !self.cq_on.load(Ordering::Relaxed) {
            return;
        }
        let cost = &self.cluster.cost;
        self.accr.lock().us += cost.rpc_rtt_us + bytes as f64 / cost.node_bw * 1e6;
    }

    /// `RDMA_READ`: reads `dst.len()` bytes at `addr`.
    pub fn read(&self, addr: GlobalAddr, dst: &mut [u8]) -> Result<()> {
        let node = self.node(addr.node)?;
        self.check_fence(&node, addr.offset, dst.len())?;
        let kill = self.intercept(&node, VerbKind::Read, addr.offset, dst.len())?;
        node.region.read(addr.offset, dst)?;
        self.account(&node, VerbClass::Read, dst.len(), 0);
        self.trace(node.id, TraceOp::Read, addr.offset, dst.len());
        self.kill_after(&node, kill);
        Ok(())
    }

    /// `RDMA_READ` into a fresh vector.
    pub fn read_vec(&self, addr: GlobalAddr, len: usize) -> Result<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v)?;
        Ok(v)
    }

    /// Atomically loads the 8-byte word at `addr` (an 8 B `RDMA_READ`).
    pub fn read_u64(&self, addr: GlobalAddr) -> Result<u64> {
        let node = self.node(addr.node)?;
        self.check_fence(&node, addr.offset, 8)?;
        let kill = self.intercept(&node, VerbKind::Read, addr.offset, 8)?;
        let v = node.region.load64(addr.offset)?;
        self.account(&node, VerbClass::Read, 8, 0);
        self.trace(node.id, TraceOp::Read, addr.offset, 8);
        self.kill_after(&node, kill);
        Ok(v)
    }

    /// `RDMA_WRITE`: writes `src` at `addr`.
    pub fn write(&self, addr: GlobalAddr, src: &[u8]) -> Result<()> {
        let node = self.node(addr.node)?;
        self.check_fence(&node, addr.offset, src.len())?;
        let kill = self.intercept(&node, VerbKind::Write, addr.offset, src.len())?;
        node.region.write(addr.offset, src)?;
        self.account(&node, VerbClass::Write, 0, src.len());
        self.trace(node.id, TraceOp::Write, addr.offset, src.len());
        self.kill_after(&node, kill);
        Ok(())
    }

    /// Inline `RDMA_WRITE` for small payloads (≤ 64 B on real NICs). The
    /// simulation treats it as a normal write; it exists so call sites read
    /// like the paper's implementation notes.
    pub fn write_inline(&self, addr: GlobalAddr, src: &[u8]) -> Result<()> {
        debug_assert!(src.len() <= 64, "inline writes are limited to 64 B");
        self.write(addr, src)
    }

    /// `RDMA_CAS` on the 8-byte word at `addr`.
    ///
    /// Returns the value observed before the operation; the swap succeeded
    /// iff it equals `expected`.
    pub fn cas(&self, addr: GlobalAddr, expected: u64, new: u64) -> Result<u64> {
        let node = self.node(addr.node)?;
        self.check_atomic_target(&node, VerbKind::Cas, addr.offset)?;
        self.check_fence(&node, addr.offset, 8)?;
        let kill = self.intercept(&node, VerbKind::Cas, addr.offset, 8)?;
        let prev = node.region.cas64(addr.offset, expected, new)?;
        self.account(&node, VerbClass::Cas, 8, 8);
        self.trace(
            node.id,
            TraceOp::Cas {
                success: prev == expected,
            },
            addr.offset,
            8,
        );
        self.kill_after(&node, kill);
        Ok(prev)
    }

    /// `RDMA_FAA` on the 8-byte word at `addr`; returns the pre-add value.
    pub fn faa(&self, addr: GlobalAddr, delta: u64) -> Result<u64> {
        let node = self.node(addr.node)?;
        self.check_atomic_target(&node, VerbKind::Faa, addr.offset)?;
        self.check_fence(&node, addr.offset, 8)?;
        let kill = self.intercept(&node, VerbKind::Faa, addr.offset, 8)?;
        let prev = node.region.faa64(addr.offset, delta)?;
        self.account(&node, VerbClass::Faa, 8, 8);
        self.trace(node.id, TraceOp::Faa, addr.offset, 8);
        self.kill_after(&node, kill);
        Ok(prev)
    }

    /// Applies a pending [`FaultAction::KillNode`]: the verb has executed,
    /// now the target fail-stops (crash-right-after-the-access timing).
    fn kill_after(&self, node: &MemoryNode, kill: bool) {
        if kill {
            self.cluster.kill_node(node.id);
        }
    }

    /// Issues several verbs as one doorbell batch: they count individually
    /// against NIC IOPS but add only a single sequential round trip to the
    /// current operation's latency profile. The peak batch size is kept in
    /// the op profile ([`OpRecord::batch_max`]) for observability.
    ///
    /// ```
    /// use aceso_rdma::{Cluster, ClusterConfig, CostModel, GlobalAddr, NodeId, OpKind};
    ///
    /// let cluster = Cluster::new(ClusterConfig {
    ///     num_mns: 1,
    ///     region_len: 4096,
    ///     cost: CostModel::default(),
    /// });
    /// let client = cluster.client();
    /// let base = GlobalAddr::new(NodeId(0), 0);
    ///
    /// client.begin_op();
    /// client.batch(|c| {
    ///     // One doorbell: both writes share a single round trip.
    ///     c.write(base, &[1u8; 64]).unwrap();
    ///     c.write(base.add(64), &[2u8; 64]).unwrap();
    /// });
    /// let record = client.end_op(OpKind::Update).unwrap();
    /// assert_eq!((record.verbs, record.rtts, record.batch_max), (2, 1, 2));
    /// assert_eq!((record.batches, record.batched_verbs), (1, 2));
    /// ```
    pub fn batch<R>(&self, f: impl FnOnce(&Self) -> R) -> R {
        let outermost = {
            let mut cur = self.cur.lock();
            cur.batch_depth += 1;
            if cur.batch_depth == 1 {
                cur.batch_rtt_counted = false;
                cur.batch_verbs = 0;
            }
            cur.batch_depth == 1
        };
        if outermost && self.cq_on.load(Ordering::Relaxed) {
            self.accr.lock().batch_first = true;
        }
        let r = f(self);
        let closed = {
            let mut cur = self.cur.lock();
            cur.batch_depth -= 1;
            cur.batch_depth == 0
        };
        if closed && self.cq_on.load(Ordering::Relaxed) {
            // An empty batch posts nothing; drop the unconsumed marker.
            self.accr.lock().batch_first = false;
        }
        r
    }

    /// Two-sided RPC to the server on `node` with cost accounting.
    ///
    /// `req_bytes` approximates the request payload; responses are charged a
    /// flat 256 B (RPC is off Aceso's critical path, only its round trip and
    /// existence matter).
    pub fn rpc<Req: Send, Resp: Send>(
        &self,
        node_id: NodeId,
        rpc: &RpcClient<Req, Resp>,
        req: Req,
        req_bytes: usize,
    ) -> Result<Resp> {
        const RESP_BYTES: usize = 256;
        let node = self.node(node_id)?;
        let kill = self.intercept(&node, VerbKind::Rpc, 0, req_bytes)?;
        let resp = rpc.call(req)?;
        self.trace(node.id, TraceOp::Rpc, 0, req_bytes);
        self.kill_after(&node, kill);
        let node_ctr = if self.background {
            &node.background
        } else {
            &node.traffic
        };
        for ctr in [node_ctr, self.counters.as_ref()] {
            ctr.rpcs.fetch_add(1, Ordering::Relaxed);
            ctr.write_bytes
                .fetch_add(req_bytes as u64, Ordering::Relaxed);
            ctr.read_bytes
                .fetch_add(RESP_BYTES as u64, Ordering::Relaxed);
        }
        {
            let mut cur = self.cur.lock();
            if cur.active {
                cur.rpcs += 1;
                cur.write_bytes = cur.write_bytes.saturating_add(req_bytes as u32);
                cur.read_bytes = cur.read_bytes.saturating_add(RESP_BYTES as u32);
            }
        }
        self.accrue_rpc(req_bytes + RESP_BYTES);
        Ok(resp)
    }

    /// Fire-and-forget RPC with the same cost accounting as [`DmClient::rpc`]
    /// minus the response bytes. Stands in for a one-sided replication write.
    pub fn rpc_cast<Req: Send, Resp: Send>(
        &self,
        node_id: NodeId,
        rpc: &RpcClient<Req, Resp>,
        req: Req,
        req_bytes: usize,
    ) -> Result<()> {
        let node = self.node(node_id)?;
        let kill = self.intercept(&node, VerbKind::Rpc, 0, req_bytes)?;
        rpc.cast(req)?;
        self.trace(node.id, TraceOp::Rpc, 0, req_bytes);
        self.kill_after(&node, kill);
        let node_ctr = if self.background {
            &node.background
        } else {
            &node.traffic
        };
        for ctr in [node_ctr, self.counters.as_ref()] {
            ctr.rpcs.fetch_add(1, Ordering::Relaxed);
            ctr.write_bytes
                .fetch_add(req_bytes as u64, Ordering::Relaxed);
        }
        {
            let mut cur = self.cur.lock();
            if cur.active {
                cur.rpcs += 1;
                cur.write_bytes = cur.write_bytes.saturating_add(req_bytes as u32);
            }
        }
        self.accrue_rpc(req_bytes);
        Ok(())
    }

    /// Attaches a completion queue, switching this client to async cost
    /// accounting: verbs keep their synchronous memory effects but their
    /// modeled latency accrues until the next [`DmClient::settle`] instead
    /// of being treated as blocking time. Many clients on one executor
    /// thread share one CQ.
    pub fn attach_cq(&self, cq: Arc<SimCq>) {
        *self.accr.lock() = Accrual::default();
        *self.cq.lock() = Some(cq);
        self.cq_on.store(true, Ordering::Release);
    }

    /// Detaches the completion queue, returning to blocking accounting.
    /// Any unsettled accrual is dropped.
    pub fn detach_cq(&self) {
        self.cq_on.store(false, Ordering::Release);
        *self.cq.lock() = None;
        *self.accr.lock() = Accrual::default();
    }

    /// The attached completion queue, if any.
    pub fn cq(&self) -> Option<Arc<SimCq>> {
        if !self.cq_on.load(Ordering::Acquire) {
            return None;
        }
        self.cq.lock().clone()
    }

    /// Suspends until the virtual clock covers all latency accrued since
    /// the previous settle — the async analogue of "wait for the round
    /// trip". Async client ops call this at every point the real protocol
    /// blocks on the fabric. A no-op (and never suspends) when no CQ is
    /// attached or nothing has accrued.
    ///
    /// The pending completion is tagged with this client's trace id, so a
    /// scheduler inspecting [`SimCq::pending_entries`] can attribute every
    /// suspended round trip to the client that posted it (the exhaustive
    /// explorer branches on exactly that set).
    pub async fn settle(&self) {
        if !self.cq_on.load(Ordering::Acquire) {
            return;
        }
        let us = std::mem::take(&mut self.accr.lock().us);
        if us <= 0.0 {
            return;
        }
        let cq = self.cq.lock().clone();
        if let Some(cq) = cq {
            cq.complete_in_tagged(us, self.trace_id).await;
        }
    }

    /// Deterministic backoff for retry policies: when a completion queue
    /// is attached the delay accrues as virtual CQ time (paid at the next
    /// [`DmClient::settle`]); otherwise the calling thread sleeps.
    /// Keeping backoff on the virtual clock makes contention schedules
    /// reproducible under the chaos harness.
    pub fn backoff(&self, us: u64) {
        if us == 0 {
            return;
        }
        if self.cq_on.load(Ordering::Relaxed) {
            self.accr.lock().us += us as f64;
        } else {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }

    /// Starts profiling a KV operation.
    pub fn begin_op(&self) {
        let mut cur = self.cur.lock();
        *cur = CurOp {
            active: true,
            ..CurOp::default()
        };
    }

    /// Notes a commit retry (CAS conflict) for the current operation.
    pub fn note_retry(&self) {
        let mut cur = self.cur.lock();
        if cur.active {
            cur.retries += 1;
        }
    }

    /// Finishes profiling the current operation and records it as `kind`.
    /// Returns the record (also appended to [`DmClient::take_ops`]) so
    /// instrumentation can attach verb counts and doorbell-batch depth to
    /// the owning span; `None` if no operation was active.
    pub fn end_op(&self, kind: OpKind) -> Option<OpRecord> {
        let rec = {
            let mut cur = self.cur.lock();
            if !cur.active {
                return None;
            }
            let rec = OpRecord {
                kind,
                rtts: cur.rtts,
                verbs: cur.verbs,
                cas: cur.cas,
                rpcs: cur.rpcs,
                read_bytes: cur.read_bytes,
                write_bytes: cur.write_bytes,
                retries: cur.retries,
                batch_max: cur.batch_max,
                batches: cur.batches,
                batched_verbs: cur.batched_total,
            };
            cur.active = false;
            rec
        };
        self.ops.lock().records.push(rec);
        Some(rec)
    }

    /// Abandons the current operation without recording it (failure paths).
    pub fn abort_op(&self) {
        self.cur.lock().active = false;
    }

    /// Takes all accumulated operation records, leaving the store empty.
    pub fn take_ops(&self) -> OpStats {
        std::mem::take(&mut *self.ops.lock())
    }

    /// Resets both counters and operation records.
    pub fn reset_stats(&self) {
        self.counters.reset();
        self.ops.lock().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::cost::CostModel;
    use crate::fault::FaultRule;

    fn cluster() -> Arc<Cluster> {
        Cluster::new(ClusterConfig {
            num_mns: 2,
            region_len: 1 << 16,
            cost: CostModel::default(),
        })
    }

    #[test]
    fn verbs_account_to_client_and_node() {
        let c = cluster();
        let cl = c.client();
        let a = GlobalAddr::new(NodeId(0), 128);
        cl.write(a, &[1, 2, 3, 4]).unwrap();
        let _ = cl.read_vec(a, 4).unwrap();
        let _ = cl.cas(GlobalAddr::new(NodeId(0), 0), 0, 1).unwrap();

        let s = cl.counters().snapshot();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.cas, 1);
        assert_eq!(s.write_bytes, 4 + 8);
        assert_eq!(s.read_bytes, 4 + 8);

        let node = c.node(NodeId(0)).unwrap();
        assert_eq!(node.traffic.snapshot(), s);
        assert_eq!(node.background.snapshot().verbs(), 0);
    }

    #[test]
    fn background_client_accounts_separately() {
        let c = cluster();
        let bg = c.background_client();
        bg.write(GlobalAddr::new(NodeId(1), 0), &[0u8; 64]).unwrap();
        let node = c.node(NodeId(1)).unwrap();
        assert_eq!(node.background.snapshot().writes, 1);
        assert_eq!(node.traffic.snapshot().writes, 0);
    }

    #[test]
    fn op_profile_counts_rtts_and_batches() {
        let c = cluster();
        let cl = c.client();
        let a = GlobalAddr::new(NodeId(0), 0);
        cl.begin_op();
        cl.batch(|cl| {
            cl.write(a.add(64), &[0u8; 32]).unwrap();
            cl.write(a.add(128), &[0u8; 32]).unwrap();
        });
        let _ = cl.cas(a, 0, 5).unwrap();
        cl.note_retry();
        let _ = cl.cas(a, 5, 6).unwrap();
        cl.end_op(OpKind::Update);

        let ops = cl.take_ops();
        assert_eq!(ops.records.len(), 1);
        let r = ops.records[0];
        assert_eq!(r.verbs, 4);
        assert_eq!(r.cas, 2);
        // One RTT for the batch, one per CAS.
        assert_eq!(r.rtts, 3);
        assert_eq!(r.retries, 1);
        assert_eq!(r.batch_max, 2);
        // The two batched writes share one posting; the CASes stay unbatched.
        assert_eq!((r.batches, r.batched_verbs), (1, 2));
    }

    #[test]
    fn batch_max_tracks_deepest_batch() {
        let c = cluster();
        let cl = c.client();
        let a = GlobalAddr::new(NodeId(0), 0);
        cl.begin_op();
        cl.batch(|cl| {
            cl.write(a, &[0u8; 8]).unwrap();
        });
        cl.batch(|cl| {
            for i in 0..3u64 {
                cl.write(a.add(64 + i * 8), &[0u8; 8]).unwrap();
            }
        });
        let r = cl.end_op(OpKind::Insert).unwrap();
        assert_eq!(r.batch_max, 3, "second batch is deepest");
        assert_eq!(r.rtts, 2);
        assert_eq!((r.batches, r.batched_verbs), (2, 4));
        assert_eq!(cl.counters().snapshot().batched, 4);

        // No batch at all → batch_max stays 0.
        cl.begin_op();
        cl.write(a, &[0u8; 8]).unwrap();
        let r = cl.end_op(OpKind::Update).unwrap();
        assert_eq!((r.batch_max, r.batches, r.batched_verbs), (0, 0, 0));
    }

    #[test]
    fn cq_accrual_matches_blocking_cost_model() {
        use crate::cq::{block_on, SimCq};
        let c = cluster();
        let cl = c.client();
        let cq = Arc::new(SimCq::new());
        cl.attach_cq(Arc::clone(&cq));
        let a = GlobalAddr::new(NodeId(0), 0);
        let cost = c.cost;

        // Unbatched write + read: two full round trips plus wire bytes.
        cl.write(a, &[0u8; 64]).unwrap();
        let _ = cl.read_vec(a, 64).unwrap();
        block_on(Some(Arc::clone(&cq)), cl.settle());
        let expect = 2.0 * cost.rtt_us + 2.0 * 64.0 / cost.node_bw * 1e6;
        assert!((cq.now_us() - expect).abs() < 1e-3, "{}", cq.now_us());

        // A doorbell batch: first verb pays the RTT, chained ones the
        // posting tax — same shape as `CostModel::base_latency_us`.
        let before = cq.now_us();
        cl.batch(|cl| {
            for i in 0..3u64 {
                cl.write(a.add(64 + i * 8), &[0u8; 8]).unwrap();
            }
        });
        block_on(Some(Arc::clone(&cq)), cl.settle());
        let batch_us = cost.rtt_us + 2.0 * cost.post_us + 3.0 * 8.0 / cost.node_bw * 1e6;
        assert!((cq.now_us() - before - batch_us).abs() < 1e-3);

        // Settle with nothing accrued never suspends; detaching stops
        // accrual entirely.
        block_on(Some(Arc::clone(&cq)), cl.settle());
        cl.detach_cq();
        cl.write(a, &[0u8; 8]).unwrap();
        block_on(None, cl.settle());
        assert_eq!(cq.pending(), 0);
    }

    #[test]
    fn fences_reject_stale_epochs_only() {
        let c = cluster();
        let cl = c.client();
        let node = c.node(NodeId(0)).unwrap();
        let a = GlobalAddr::new(NodeId(0), 256);
        cl.write(a, &[1u8; 8]).unwrap();
        node.install_fence(256, 64, 5);

        // No epoch declared (u64::MAX) passes: background/control clients.
        assert!(cl.read_vec(a, 8).is_ok());

        cl.set_placement_epoch(4);
        let err = Err(RdmaError::EpochFenced {
            node: NodeId(0),
            required: 5,
        });
        assert_eq!(cl.write(a, &[2u8; 8]), err.clone());
        assert_eq!(cl.read_vec(a, 8), err.clone().map(|()| vec![]));
        assert_eq!(cl.cas(a, 0, 1), err.clone().map(|()| 0));
        assert_eq!(cl.faa(a, 1), err.map(|()| 0));
        // Fenced verbs never reached the NIC: memory and counters intact.
        assert_eq!(cl.counters().snapshot().cas, 0);

        // Outside the fenced range, and after a refresh, verbs proceed.
        assert!(cl.write(a.add(64), &[3u8; 8]).is_ok());
        cl.set_placement_epoch(5);
        assert_eq!(cl.placement_epoch(), 5);
        assert!(cl.write(a, &[4u8; 8]).is_ok());
        node.clear_fences();
        cl.set_placement_epoch(0);
        assert!(cl.read_vec(a, 8).is_ok());
    }

    #[test]
    fn backoff_accrues_on_virtual_clock() {
        use crate::cq::{block_on, SimCq};
        let c = cluster();
        let cl = c.client();
        let cq = Arc::new(SimCq::new());
        cl.attach_cq(Arc::clone(&cq));
        cl.backoff(750);
        cl.backoff(0); // no-op
        block_on(Some(Arc::clone(&cq)), cl.settle());
        assert!((cq.now_us() - 750.0).abs() < 1e-6, "{}", cq.now_us());
    }

    #[test]
    fn verbs_fail_on_dead_node() {
        let c = cluster();
        let cl = c.client();
        c.kill_node(NodeId(0));
        let a = GlobalAddr::new(NodeId(0), 0);
        assert!(cl.read_vec(a, 8).is_err());
        assert!(cl.write(a, &[0]).is_err());
        assert!(cl.cas(a, 0, 1).is_err());
        // And nothing was accounted.
        assert_eq!(cl.counters().snapshot().verbs(), 0);
    }

    #[test]
    fn injected_fail_leaves_memory_untouched() {
        let c = cluster();
        let cl = c.client();
        let a = GlobalAddr::new(NodeId(0), 64);
        cl.write(a, &[7u8; 8]).unwrap();
        cl.install_fault_plan(FaultPlan::with_rules(vec![FaultRule::new(FaultAction::Fail)
            .on_kind(VerbKind::Write)
            .on_node(NodeId(0))]));
        assert_eq!(
            cl.write(a, &[9u8; 8]),
            Err(RdmaError::Injected {
                verb: VerbKind::Write,
                node: NodeId(0)
            })
        );
        // One fire only: the retry goes through, and the failed write never
        // reached memory.
        assert_eq!(cl.read_vec(a, 8).unwrap(), vec![7u8; 8]);
        cl.write(a, &[9u8; 8]).unwrap();
        assert_eq!(cl.read_vec(a, 8).unwrap(), vec![9u8; 8]);
    }

    #[test]
    fn kill_after_nth_verb_executes_then_kills() {
        let c = cluster();
        let cl = c.client();
        let a = GlobalAddr::new(NodeId(1), 0);
        cl.install_fault_plan(FaultPlan::with_rules(vec![FaultRule::new(
            FaultAction::KillNode,
        )
        .on_node(NodeId(1))
        .after(1)]));
        cl.write(a, &[1u8; 8]).unwrap(); // verb 0: passes
        cl.write(a.add(8), &[2u8; 8]).unwrap(); // verb 1: lands, then node dies
        assert!(c.node(NodeId(1)).is_err());
        assert!(!c.master.is_alive(NodeId(1)));
        // The killing write did execute (forensic read of the dead region).
        let dead = c.node_any(NodeId(1)).unwrap();
        let mut buf = [0u8; 8];
        dead.region.read(8, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 8]);
        // Subsequent verbs fail with NodeUnreachable, not Injected.
        assert_eq!(
            cl.write(a, &[3u8; 8]),
            Err(RdmaError::NodeUnreachable(NodeId(1)))
        );
    }

    #[test]
    fn node_side_plan_hits_every_client() {
        let c = cluster();
        let node = c.node(NodeId(0)).unwrap();
        node.install_fault_plan(FaultPlan::with_rules(vec![FaultRule::new(FaultAction::Fail)
            .on_kind(VerbKind::Cas)
            .fires(2)]));
        let a = GlobalAddr::new(NodeId(0), 0);
        assert!(c.client().cas(a, 0, 1).is_err());
        assert!(c.background_client().cas(a, 0, 1).is_err());
        node.clear_fault_plan();
        assert!(c.client().cas(a, 0, 1).is_ok());
    }

    #[test]
    fn end_without_begin_is_noop() {
        let c = cluster();
        let cl = c.client();
        cl.end_op(OpKind::Search);
        assert!(cl.take_ops().records.is_empty());
    }

    #[test]
    fn misaligned_atomics_rejected_before_memory() {
        let c = cluster();
        let cl = c.client();
        let odd = GlobalAddr::new(NodeId(0), 12);
        assert_eq!(
            cl.cas(odd, 0, 1),
            Err(RdmaError::Misaligned {
                verb: VerbKind::Cas,
                node: NodeId(0),
                offset: 12
            })
        );
        // The trailing word of the region is fine; one past it is not.
        let end = GlobalAddr::new(NodeId(0), (1 << 16) - 8);
        assert!(cl.faa(end, 1).is_ok());
        assert_eq!(
            cl.faa(end.add(8), 1),
            Err(RdmaError::Misaligned {
                verb: VerbKind::Faa,
                node: NodeId(0),
                offset: 1 << 16
            })
        );
        // Rejected verbs are not accounted (they never reached the NIC).
        assert_eq!(cl.counters().snapshot().faa, 1);
        assert_eq!(cl.counters().snapshot().cas, 0);
    }

    #[test]
    fn trace_sink_sees_memory_effective_verbs_only() {
        use crate::trace::{TraceOp, VecSink};
        let c = cluster();
        let sink = Arc::new(VecSink::new());
        let cl = c.client();
        // Issued before install: not traced.
        cl.write(GlobalAddr::new(NodeId(0), 0), &[1u8; 8]).unwrap();
        c.install_trace_sink(sink.clone());

        let a = GlobalAddr::new(NodeId(0), 64);
        cl.write(a, &[2u8; 16]).unwrap();
        let _ = cl.read_vec(a, 16).unwrap();
        let _ = cl.read_u64(a).unwrap();
        assert_eq!(cl.cas(GlobalAddr::new(NodeId(0), 128), 0, 7), Ok(0));
        let _ = cl.faa(GlobalAddr::new(NodeId(0), 8), 1).unwrap();
        // A failing verb never reaches memory and is never traced.
        assert!(cl.cas(GlobalAddr::new(NodeId(0), 3), 0, 1).is_err());
        c.trace_barrier();
        c.clear_trace_sink();
        cl.write(a, &[3u8; 8]).unwrap(); // after clear: not traced

        let evs = sink.take();
        let ops: Vec<TraceOp> = evs.iter().map(|e| e.op).collect();
        assert_eq!(evs.len(), 6);
        assert!(matches!(ops[0], TraceOp::Write));
        assert!(matches!(ops[1], TraceOp::Read));
        assert!(matches!(ops[2], TraceOp::Read));
        assert!(matches!(ops[3], TraceOp::Cas { .. }));
        assert!(matches!(ops[4], TraceOp::Faa));
        assert!(matches!(ops[5], TraceOp::Barrier));
        // Same client, strictly increasing seq, correct address metadata.
        assert!(evs[..5].iter().all(|e| e.client == cl.trace_id()));
        assert!(evs[..5]
            .windows(2)
            .all(|w| w[1].seq == w[0].seq + 1));
        assert_eq!(evs[0].offset, 64);
        assert_eq!(evs[0].len, 16);
        assert_eq!(evs[5].client, crate::trace::TraceEvent::BARRIER_CLIENT);
    }

    #[test]
    fn cas_trace_records_outcome() {
        use crate::trace::{TraceOp, VecSink};
        let c = cluster();
        let sink = Arc::new(VecSink::new());
        c.install_trace_sink(sink.clone());
        let cl = c.client();
        let a = GlobalAddr::new(NodeId(0), 0);
        assert_eq!(cl.cas(a, 0, 5), Ok(0)); // lands
        assert_eq!(cl.cas(a, 0, 6), Ok(5)); // loses
        let evs = sink.take();
        assert_eq!(evs[0].op, TraceOp::Cas { success: true });
        assert_eq!(evs[1].op, TraceOp::Cas { success: false });
    }

    #[test]
    fn distinct_clients_get_distinct_trace_ids() {
        let c = cluster();
        let a = c.client();
        let b = c.background_client();
        assert_ne!(a.trace_id(), b.trace_id());
    }
}
