//! Global addressing of the disaggregated memory pool.

use core::fmt;

/// Identifier of a memory node (MN) inside a cluster.
///
/// Node ids are dense and assigned by the [`crate::cluster::Cluster`] at
/// construction time. When a crashed MN is replaced during recovery, the
/// replacement receives a *fresh* id so stale pointers to the dead node keep
/// failing loudly instead of silently reading the replacement's memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mn{}", self.0)
    }
}

/// A global address in the memory pool: `(node, byte offset)`.
///
/// The paper packs global addresses into 48 bits inside an index slot; this
/// simulation keeps the two components separate in APIs and provides
/// [`GlobalAddr::pack48`]/[`GlobalAddr::unpack48`] for the on-"wire" slot
/// encoding (16-bit node id, 32-bit offset in 64-byte units, which covers
/// 256 GB per MN — more than the paper's 48 GB per MN).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GlobalAddr {
    /// The memory node holding the bytes.
    pub node: NodeId,
    /// Byte offset within the node's registered region.
    pub offset: u64,
}

impl GlobalAddr {
    /// A sentinel "null" address (node `u16::MAX`, offset 0).
    pub const NULL: GlobalAddr = GlobalAddr {
        node: NodeId(u16::MAX),
        offset: 0,
    };

    /// Creates a new global address.
    #[inline]
    pub const fn new(node: NodeId, offset: u64) -> Self {
        GlobalAddr { node, offset }
    }

    /// Returns `true` if this is the null sentinel.
    #[inline]
    pub const fn is_null(&self) -> bool {
        self.node.0 == u16::MAX
    }

    /// Returns the address `delta` bytes past this one on the same node.
    #[inline]
    pub const fn add(&self, delta: u64) -> Self {
        GlobalAddr {
            node: self.node,
            offset: self.offset + delta,
        }
    }

    /// Packs the address into 48 bits for storage inside an index slot.
    ///
    /// The offset must be 64-byte aligned (index slots only ever point at
    /// KV pairs, which the allocator aligns to 64 B) and below 2^38.
    ///
    /// # Panics
    ///
    /// Panics if the offset is unaligned or out of range, both of which
    /// indicate allocator bugs rather than recoverable conditions.
    #[inline]
    pub fn pack48(&self) -> u64 {
        assert_eq!(self.offset % 64, 0, "packed addresses must be 64B-aligned");
        let units = self.offset / 64;
        assert!(units < (1 << 32), "offset out of 48-bit packing range");
        ((self.node.0 as u64) << 32) | units
    }

    /// Unpacks a 48-bit slot encoding produced by [`GlobalAddr::pack48`].
    #[inline]
    pub fn unpack48(packed: u64) -> Self {
        let node = NodeId(((packed >> 32) & 0xFFFF) as u16);
        let offset = (packed & 0xFFFF_FFFF) * 64;
        GlobalAddr { node, offset }
    }
}

impl fmt::Display for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else {
            write!(f, "{}+{:#x}", self.node, self.offset)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let a = GlobalAddr::new(NodeId(3), 2 * 1024 * 1024 + 192);
        let b = GlobalAddr::unpack48(a.pack48());
        assert_eq!(a, b);
    }

    #[test]
    fn pack_roundtrip_extremes() {
        for (node, off) in [(0u16, 0u64), (4095, 64), (7, ((1u64 << 32) - 1) * 64)] {
            let a = GlobalAddr::new(NodeId(node), off);
            assert_eq!(GlobalAddr::unpack48(a.pack48()), a);
        }
    }

    #[test]
    #[should_panic]
    fn pack_rejects_unaligned() {
        GlobalAddr::new(NodeId(0), 63).pack48();
    }

    #[test]
    fn null_is_null() {
        assert!(GlobalAddr::NULL.is_null());
        assert!(!GlobalAddr::new(NodeId(0), 0).is_null());
    }

    #[test]
    fn add_offsets() {
        let a = GlobalAddr::new(NodeId(1), 128);
        assert_eq!(a.add(64).offset, 192);
        assert_eq!(a.add(64).node, NodeId(1));
    }
}
