//! Deterministic verb-level fault injection.
//!
//! A [`FaultPlan`] is an interceptor a chaos harness installs on a
//! [`crate::DmClient`] (per-endpoint faults) or a [`crate::MemoryNode`]
//! (per-NIC faults, hit by every client). Each plan holds an ordered list
//! of [`FaultRule`]s; every verb consults the plan *before* touching
//! memory, and the first rule whose filter matches and whose skip count
//! has elapsed fires its [`FaultAction`]:
//!
//! * [`FaultAction::Fail`] — the verb returns [`crate::RdmaError::Injected`]
//!   without executing, modelling a lost/NACKed work request.
//! * [`FaultAction::Delay`] — the verb sleeps, then proceeds, modelling
//!   fabric congestion.
//! * [`FaultAction::KillNode`] — the verb *executes*, then the target node
//!   fail-stops, modelling a crash immediately after the Nth access (the
//!   most adversarial timing for commit protocols: the write landed but
//!   nothing after it did).
//!
//! Rules are matched and counted under a lock, so a plan shared by
//! concurrent clients still fires each rule exactly `max_fires` times and
//! a seeded schedule replays identically. Fired events are logged and
//! retrievable via [`FaultPlan::fired`] for coverage reporting.

use crate::addr::NodeId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The verb classes an injection rule can match.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VerbKind {
    /// `RDMA_READ` (including 8 B atomic loads).
    Read,
    /// `RDMA_WRITE` (including inline writes).
    Write,
    /// `RDMA_CAS`.
    Cas,
    /// `RDMA_FAA`.
    Faa,
    /// Two-sided RPC (send/recv), including casts.
    Rpc,
}

impl core::fmt::Display for VerbKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            VerbKind::Read => "read",
            VerbKind::Write => "write",
            VerbKind::Cas => "cas",
            VerbKind::Faa => "faa",
            VerbKind::Rpc => "rpc",
        };
        f.write_str(s)
    }
}

/// One fabric access as seen by the interceptor.
#[derive(Clone, Copy, Debug)]
pub struct FaultSite {
    /// Verb class.
    pub kind: VerbKind,
    /// Target memory node.
    pub node: NodeId,
    /// Byte offset within the target region (0 for RPC).
    pub offset: u64,
    /// Access length in bytes (request payload for RPC).
    pub len: usize,
}

/// What happens when a rule fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// The verb fails with [`crate::RdmaError::Injected`]; memory is not
    /// touched.
    Fail,
    /// The verb is delayed by this many microseconds, then proceeds.
    Delay(u64),
    /// The verb executes, then the *target node* fail-stops (kill-after-
    /// the-Nth-matching-verb semantics).
    KillNode,
}

/// Filter + firing schedule for one injected fault.
///
/// A rule matches a [`FaultSite`] when every set filter agrees; unset
/// filters are wildcards. The rule counts matches and fires on matches
/// `skip .. skip + max_fires`.
#[derive(Clone, Copy, Debug)]
pub struct FaultRule {
    /// Match only this verb class (`None` = any).
    pub kind: Option<VerbKind>,
    /// Match only this target node (`None` = any).
    pub node: Option<NodeId>,
    /// Match only offsets in `[start, end)` (`None` = any).
    pub range: Option<(u64, u64)>,
    /// Match only while the plan's phase (see [`FaultPlan::set_phase`])
    /// equals this value (`None` = any phase). Out-of-phase accesses are
    /// not counted toward `skip`, so "the Nth verb of migration step k"
    /// is exact.
    pub phase: Option<u32>,
    /// Number of matching verbs to let through before firing.
    pub skip: u64,
    /// Number of times to fire once armed (0 disables the rule).
    pub max_fires: u64,
    /// Action taken on each firing.
    pub action: FaultAction,
}

impl FaultRule {
    /// A rule with wildcard filters that fires `action` on the first match.
    pub fn new(action: FaultAction) -> Self {
        FaultRule {
            kind: None,
            node: None,
            range: None,
            phase: None,
            skip: 0,
            max_fires: 1,
            action,
        }
    }

    /// Restricts the rule to one verb class.
    pub fn on_kind(mut self, kind: VerbKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restricts the rule to one target node.
    pub fn on_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// Restricts the rule to accesses overlapping `[start, end)`.
    pub fn in_range(mut self, start: u64, end: u64) -> Self {
        self.range = Some((start, end));
        self
    }

    /// Restricts the rule to one plan phase (a chaos harness advances the
    /// plan's phase at protocol step boundaries, e.g. migrator steps, so
    /// a rule can target "the first write of the parity re-encode step").
    pub fn in_phase(mut self, phase: u32) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Lets `skip` matching verbs through before firing ("fail the Nth").
    pub fn after(mut self, skip: u64) -> Self {
        self.skip = skip;
        self
    }

    /// Fires at most `n` times (default 1).
    pub fn fires(mut self, n: u64) -> Self {
        self.max_fires = n;
        self
    }

    fn matches(&self, site: &FaultSite) -> bool {
        if let Some(k) = self.kind {
            if k != site.kind {
                return false;
            }
        }
        if let Some(n) = self.node {
            if n != site.node {
                return false;
            }
        }
        if let Some((start, end)) = self.range {
            let site_end = site.offset.saturating_add(site.len as u64);
            if site.offset >= end || site_end <= start {
                return false;
            }
        }
        true
    }
}

/// A fault that actually fired, for coverage reports.
#[derive(Clone, Copy, Debug)]
pub struct FiredFault {
    /// The intercepted access.
    pub site: FaultSite,
    /// The action that was taken.
    pub action: FaultAction,
    /// Index of the firing rule within the plan.
    pub rule: usize,
}

struct RuleState {
    rule: FaultRule,
    matched: u64,
    fired: u64,
}

/// An installable set of fault rules plus the log of fired faults.
///
/// Plans are shared via `Arc`: the same plan may be installed on several
/// clients and nodes, and the harness keeps its own handle to read the
/// firing log afterwards.
#[derive(Default)]
pub struct FaultPlan {
    rules: Mutex<Vec<RuleState>>,
    log: Mutex<Vec<FiredFault>>,
    /// Current protocol phase, consulted by phase-filtered rules
    /// (see [`FaultRule::in_phase`]).
    phase: AtomicU32,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Arc<Self> {
        Arc::new(FaultPlan::default())
    }

    /// A plan pre-loaded with `rules` (matched in order).
    pub fn with_rules(rules: Vec<FaultRule>) -> Arc<Self> {
        let plan = FaultPlan::new();
        for r in rules {
            plan.push(r);
        }
        plan
    }

    /// Appends a rule.
    pub fn push(&self, rule: FaultRule) {
        self.rules.lock().push(RuleState {
            rule,
            matched: 0,
            fired: 0,
        });
    }

    /// Removes all rules (the firing log is kept).
    pub fn clear(&self) {
        self.rules.lock().clear();
    }

    /// All faults fired so far, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.log.lock().clone()
    }

    /// Number of faults fired so far.
    pub fn fired_count(&self) -> usize {
        self.log.lock().len()
    }

    /// Advances the plan to protocol phase `p`: rules built with
    /// [`FaultRule::in_phase`] match only while the plan sits in their
    /// phase. The chaos harness calls this at migration step boundaries.
    pub fn set_phase(&self, p: u32) {
        self.phase.store(p, Ordering::Release);
    }

    /// The plan's current protocol phase (0 until [`FaultPlan::set_phase`]
    /// is called).
    pub fn phase(&self) -> u32 {
        self.phase.load(Ordering::Acquire)
    }

    /// Consults the plan for one access. Returns the action of the first
    /// rule that fires, or `None` to proceed normally. Match counters
    /// advance on every call, so "fail the Nth read" is exact even when
    /// earlier matches fired nothing.
    pub fn intercept(&self, site: FaultSite) -> Option<FaultAction> {
        let phase = self.phase.load(Ordering::Acquire);
        let mut rules = self.rules.lock();
        for (i, rs) in rules.iter_mut().enumerate() {
            if rs.rule.phase.is_some_and(|p| p != phase) {
                continue;
            }
            if !rs.rule.matches(&site) {
                continue;
            }
            let seq = rs.matched;
            rs.matched += 1;
            if seq < rs.rule.skip || rs.fired >= rs.rule.max_fires {
                continue;
            }
            rs.fired += 1;
            let action = rs.rule.action;
            drop(rules);
            self.log.lock().push(FiredFault {
                site,
                action,
                rule: i,
            });
            return Some(action);
        }
        None
    }

    /// Blocks for a [`FaultAction::Delay`]'s duration (helper for verb
    /// implementations).
    pub fn apply_delay(micros: u64) {
        std::thread::sleep(Duration::from_micros(micros));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(kind: VerbKind, node: u16, offset: u64, len: usize) -> FaultSite {
        FaultSite {
            kind,
            node: NodeId(node),
            offset,
            len,
        }
    }

    #[test]
    fn fires_on_nth_match_only() {
        let plan = FaultPlan::with_rules(vec![FaultRule::new(FaultAction::Fail)
            .on_kind(VerbKind::Write)
            .after(2)]);
        let w = site(VerbKind::Write, 0, 64, 8);
        assert!(plan.intercept(site(VerbKind::Read, 0, 0, 8)).is_none());
        assert!(plan.intercept(w).is_none()); // match 0
        assert!(plan.intercept(w).is_none()); // match 1
        assert_eq!(plan.intercept(w), Some(FaultAction::Fail)); // match 2
        assert!(plan.intercept(w).is_none()); // max_fires exhausted
        assert_eq!(plan.fired_count(), 1);
        assert_eq!(plan.fired()[0].rule, 0);
    }

    #[test]
    fn node_and_range_filters() {
        let plan = FaultPlan::with_rules(vec![FaultRule::new(FaultAction::KillNode)
            .on_node(NodeId(3))
            .in_range(100, 200)
            .fires(10)]);
        assert!(plan.intercept(site(VerbKind::Write, 2, 150, 8)).is_none());
        assert!(plan.intercept(site(VerbKind::Write, 3, 300, 8)).is_none());
        // Overlapping access fires.
        assert_eq!(
            plan.intercept(site(VerbKind::Write, 3, 96, 8)),
            Some(FaultAction::KillNode)
        );
        // Access ending exactly at range start does not overlap.
        assert!(plan.intercept(site(VerbKind::Write, 3, 92, 8)).is_none());
    }

    #[test]
    fn rules_match_in_order() {
        let plan = FaultPlan::with_rules(vec![
            FaultRule::new(FaultAction::Delay(1)).on_kind(VerbKind::Cas),
            FaultRule::new(FaultAction::Fail).fires(2),
        ]);
        // First CAS hits rule 0; everything else falls through to rule 1.
        assert_eq!(
            plan.intercept(site(VerbKind::Cas, 0, 0, 8)),
            Some(FaultAction::Delay(1))
        );
        assert_eq!(
            plan.intercept(site(VerbKind::Cas, 0, 0, 8)),
            Some(FaultAction::Fail)
        );
        let log = plan.fired();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].rule, 0);
        assert_eq!(log[1].rule, 1);
    }

    #[test]
    fn phase_filter_gates_matching_and_counting() {
        let plan = FaultPlan::with_rules(vec![FaultRule::new(FaultAction::Fail)
            .in_phase(2)
            .after(1)]);
        let w = site(VerbKind::Write, 0, 0, 8);
        // Phase 0: out-of-phase accesses neither fire nor count.
        assert!(plan.intercept(w).is_none());
        assert!(plan.intercept(w).is_none());
        plan.set_phase(2);
        assert_eq!(plan.phase(), 2);
        assert!(plan.intercept(w).is_none()); // in-phase match 0 (skipped)
        assert_eq!(plan.intercept(w), Some(FaultAction::Fail)); // match 1
        plan.set_phase(3);
        assert!(plan.intercept(w).is_none());
    }

    #[test]
    fn clear_disarms() {
        let plan = FaultPlan::with_rules(vec![FaultRule::new(FaultAction::Fail)]);
        plan.clear();
        assert!(plan.intercept(site(VerbKind::Read, 0, 0, 8)).is_none());
    }
}
