//! Simulated completion queue: the async submission surface of the fabric.
//!
//! Real RDMA clients overlap work by posting verbs and polling a
//! *completion queue* (CQ) instead of blocking per verb. This module is the
//! simulation's equivalent: a [`SimCq`] carries a **virtual clock** (ns) and
//! a min-heap of pending completion deadlines. A [`DmClient`] with an
//! attached CQ (see [`DmClient::attach_cq`]) keeps executing every verb's
//! *memory effect* synchronously — so linearizability, traces and fault
//! injection are untouched — but *accrues* each verb's modeled latency
//! instead of accounting it as blocking time. An async operation then calls
//! [`DmClient::settle`] at every point where the real protocol would wait
//! for a round trip; `settle` converts the accrued microseconds into a
//! pending [`Completion`] on the CQ and suspends until the virtual clock
//! reaches its deadline.
//!
//! Whoever owns the executor drives the clock with [`SimCq::advance_next`]:
//! pop the earliest deadline, advance virtual time to it, wake the waiting
//! task. With many client tasks multiplexed on one OS thread this yields
//! exactly the coroutine pipelining of the paper's client: while one op's
//! round trip is "in flight" (its deadline pending), other ops run. The
//! achieved overlap is measurable: [`SimCq::busy_us`] (total charged wait)
//! divided by [`SimCq::now_us`] (virtual elapsed) is the *effective
//! pipeline depth* that the cost model's client bound uses via
//! [`crate::PhaseMeasurement::pipeline_depth`].
//!
//! Everything is deterministic: deadlines are ordered by (time, submission
//! sequence), so equal deadlines resolve in submission order and the same
//! schedule replays bit-for-bit.
//!
//! [`DmClient`]: crate::DmClient
//! [`DmClient::attach_cq`]: crate::DmClient::attach_cq
//! [`DmClient::settle`]: crate::DmClient::settle

use parking_lot::Mutex;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Completion state shared between a [`Completion`] future and the CQ.
#[derive(Default)]
struct CompletionState {
    done: AtomicBool,
    waker: Mutex<Option<Waker>>,
}

/// A heap entry: min-ordered by `(deadline_ns, seq)` so simultaneous
/// completions resolve deterministically in submission order.
struct Entry {
    deadline_ns: u64,
    seq: u64,
    tag: u32,
    state: Arc<CompletionState>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline_ns, self.seq) == (other.deadline_ns, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline.
        (other.deadline_ns, other.seq).cmp(&(self.deadline_ns, self.seq))
    }
}

struct CqInner {
    now_ns: u64,
    seq: u64,
    busy_ns: u64,
    heap: BinaryHeap<Entry>,
}

/// A simulated completion queue with a virtual clock (see module docs).
///
/// One `SimCq` is shared by every client task multiplexed on one executor
/// thread; the executor's driver closure calls [`SimCq::advance_next`]
/// whenever all tasks are suspended.
pub struct SimCq {
    inner: Mutex<CqInner>,
}

impl Default for SimCq {
    fn default() -> Self {
        Self::new()
    }
}

impl SimCq {
    /// A fresh CQ with the virtual clock at zero.
    pub fn new() -> Self {
        SimCq {
            inner: Mutex::new(CqInner {
                now_ns: 0,
                seq: 0,
                busy_ns: 0,
                heap: BinaryHeap::new(),
            }),
        }
    }

    /// Posts a completion `us` microseconds of modeled fabric time from
    /// now; the returned future resolves when [`SimCq::advance_next`] has
    /// moved the virtual clock past its deadline.
    pub fn complete_in(&self, us: f64) -> Completion {
        self.complete_in_tagged(us, 0)
    }

    /// [`SimCq::complete_in`] with a submitter tag attached to the pending
    /// entry. Tags let a scheduler that drives the clock attribute each
    /// pending completion to the task that posted it (a `DmClient` tags
    /// with its trace id): [`SimCq::pending_entries`] exposes `(seq, tag)`
    /// pairs and [`SimCq::deliver_seq`] delivers a chosen one. Delivery
    /// order and the virtual clock are unaffected by the tag itself.
    pub fn complete_in_tagged(&self, us: f64, tag: u32) -> Completion {
        let state = Arc::new(CompletionState::default());
        let wait_ns = (us * 1000.0).round().max(0.0) as u64;
        let mut g = self.inner.lock();
        g.seq += 1;
        g.busy_ns += wait_ns;
        let entry = Entry {
            deadline_ns: g.now_ns + wait_ns,
            seq: g.seq,
            tag,
            state: Arc::clone(&state),
        };
        g.heap.push(entry);
        Completion { state }
    }

    /// Delivers the earliest pending completion: advances the virtual
    /// clock to its deadline, marks it done and wakes its waiter. Returns
    /// `false` if nothing was pending (the clock does not move).
    pub fn advance_next(&self) -> bool {
        let entry = {
            let mut g = self.inner.lock();
            let Some(e) = g.heap.pop() else {
                return false;
            };
            g.now_ns = g.now_ns.max(e.deadline_ns);
            e
        };
        entry.state.done.store(true, Ordering::Release);
        if let Some(w) = entry.state.waker.lock().take() {
            w.wake();
        }
        true
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> f64 {
        self.inner.lock().now_ns as f64 / 1000.0
    }

    /// Total modeled wait charged across all completions ever posted, in
    /// microseconds. `busy_us / now_us` is the effective overlap depth of
    /// the schedule (≈ 1.0 for a single blocking client, ≫ 1 for many
    /// pipelined tasks).
    pub fn busy_us(&self) -> f64 {
        self.inner.lock().busy_ns as f64 / 1000.0
    }

    /// Number of completions currently pending delivery.
    pub fn pending(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// `(seq, tag)` of every pending completion, in submission order.
    ///
    /// This is the *enabled set* a model checker branches on: each entry is
    /// one suspended task's next wake-up, and [`SimCq::deliver_seq`] picks
    /// which of them the virtual fabric "finishes" first.
    pub fn pending_entries(&self) -> Vec<(u64, u32)> {
        let g = self.inner.lock();
        let mut v: Vec<(u64, u32)> = g.heap.iter().map(|e| (e.seq, e.tag)).collect();
        v.sort_unstable();
        v
    }

    /// Delivers the pending completion with submission sequence `seq`,
    /// regardless of its deadline — the virtual-clock *fork* used by the
    /// exhaustive explorer. The clock advances to the entry's deadline if
    /// that is later than now (it never moves backwards), modelling a
    /// fabric where any in-flight round trip may finish first. Returns
    /// `false` if no pending entry has that sequence number.
    pub fn deliver_seq(&self, seq: u64) -> bool {
        let entry = {
            let mut g = self.inner.lock();
            let mut rest: Vec<Entry> = Vec::with_capacity(g.heap.len());
            let mut found = None;
            while let Some(e) = g.heap.pop() {
                if e.seq == seq && found.is_none() {
                    found = Some(e);
                } else {
                    rest.push(e);
                }
            }
            for e in rest {
                g.heap.push(e);
            }
            let Some(e) = found else {
                return false;
            };
            g.now_ns = g.now_ns.max(e.deadline_ns);
            e
        };
        entry.state.done.store(true, Ordering::Release);
        if let Some(w) = entry.state.waker.lock().take() {
            w.wake();
        }
        true
    }
}

/// Future returned by [`SimCq::complete_in`]; resolves once the virtual
/// clock has reached the completion's deadline.
pub struct Completion {
    state: Arc<CompletionState>,
}

impl Future for Completion {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.state.done.load(Ordering::Acquire) {
            return Poll::Ready(());
        }
        *self.state.waker.lock() = Some(cx.waker().clone());
        // Re-check: a wake between the first check and storing the waker
        // must not be lost (the stored waker would never fire again).
        if self.state.done.load(Ordering::Acquire) {
            return Poll::Ready(());
        }
        Poll::Pending
    }
}

/// Waker used by [`block_on`]: wakes are irrelevant because the loop polls
/// again after every clock advance.
struct NoopWake;
impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

/// Runs a future to completion on the current thread, driving `cq`'s
/// virtual clock whenever the future suspends.
///
/// This is how the *blocking* client API wraps the async one: a lone
/// blocking op owns the whole clock, so its modeled latency is identical
/// to the pre-async accounting (overlap depth 1).
///
/// # Panics
///
/// Panics if the future suspends while `cq` is `None` or has no pending
/// completion — the future is waiting on an event nobody can deliver.
///
/// ```
/// use aceso_rdma::cq::{block_on, SimCq};
/// use std::sync::Arc;
///
/// let cq = Arc::new(SimCq::new());
/// let c = cq.complete_in(3.0);
/// block_on(Some(Arc::clone(&cq)), c);
/// assert_eq!(cq.now_us(), 3.0);
/// assert_eq!(block_on(None, async { 7 }), 7);
/// ```
pub fn block_on<F: Future>(cq: Option<Arc<SimCq>>, fut: F) -> F::Output {
    let mut fut = Box::pin(fut);
    let waker = Waker::from(Arc::new(NoopWake));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => {
                let advanced = cq.as_ref().is_some_and(|c| c.advance_next());
                assert!(
                    advanced,
                    "future suspended with no pending completion to drive"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_deliver_in_deadline_order() {
        let cq = SimCq::new();
        let _late = cq.complete_in(10.0);
        let early = cq.complete_in(2.0);
        assert_eq!(cq.pending(), 2);
        assert!(cq.advance_next());
        assert_eq!(cq.now_us(), 2.0);
        // The early completion resolved; the late one is still pending.
        block_on_ready(early);
        assert!(cq.advance_next());
        assert_eq!(cq.now_us(), 10.0);
        assert!(!cq.advance_next());
        assert_eq!(cq.busy_us(), 12.0);
    }

    #[test]
    fn equal_deadlines_resolve_in_submission_order() {
        let cq = SimCq::new();
        let a = cq.complete_in(5.0);
        let b = cq.complete_in(5.0);
        assert!(cq.advance_next());
        assert!(a.state.done.load(Ordering::Acquire));
        assert!(!b.state.done.load(Ordering::Acquire));
    }

    #[test]
    fn block_on_drives_chained_completions() {
        let cq = Arc::new(SimCq::new());
        let cq2 = Arc::clone(&cq);
        let v = block_on(Some(Arc::clone(&cq)), async move {
            cq2.complete_in(1.5).await;
            cq2.complete_in(2.5).await;
            42
        });
        assert_eq!(v, 42);
        assert_eq!(cq.now_us(), 4.0);
    }

    #[test]
    fn deliver_seq_forks_the_deadline_order() {
        let cq = SimCq::new();
        let late = cq.complete_in_tagged(10.0, 7);
        let early = cq.complete_in_tagged(2.0, 9);
        assert_eq!(cq.pending_entries(), vec![(1, 7), (2, 9)]);
        // Deliver the *late* completion first: the clock jumps to its
        // deadline and the early one stays pending.
        assert!(cq.deliver_seq(1));
        assert_eq!(cq.now_us(), 10.0);
        block_on_ready(late);
        assert_eq!(cq.pending_entries(), vec![(2, 9)]);
        // Delivering the early one now must not move the clock backwards.
        assert!(cq.deliver_seq(2));
        assert_eq!(cq.now_us(), 10.0);
        block_on_ready(early);
        assert!(!cq.deliver_seq(2));
        assert!(cq.pending_entries().is_empty());
    }

    #[test]
    #[should_panic(expected = "no pending completion")]
    fn block_on_panics_when_stuck() {
        let cq = Arc::new(SimCq::new());
        block_on(Some(cq), std::future::pending::<()>());
    }

    /// Polls a future that must already be ready.
    fn block_on_ready<F: Future>(fut: F) -> F::Output {
        block_on(None, fut)
    }
}
