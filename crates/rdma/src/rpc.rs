//! Typed RPC transport standing in for RDMA UD send/recv queue pairs.
//!
//! Aceso's clients talk to MN servers over RDMA unreliable-datagram RPC for
//! coarse-grained management (block allocation, block-filled notifications,
//! free-bitmap flushes). This module provides the equivalent as typed
//! channels; cost accounting happens in [`crate::verbs::DmClient::rpc`].

use crate::error::{RdmaError, Result};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::time::Duration;

/// One in-flight call: the request plus a oneshot reply channel.
pub struct Envelope<Req, Resp> {
    /// The request payload.
    pub req: Req,
    reply: Sender<Resp>,
}

impl<Req, Resp> Envelope<Req, Resp> {
    /// Sends the response back to the caller.
    pub fn respond(self, resp: Resp) {
        // A vanished caller (client crash) is fine under fail-stop.
        let _ = self.reply.send(resp);
    }

    /// Splits into the request and a responder (lets servers move the
    /// request out before computing the reply).
    pub fn into_parts(self) -> (Req, Responder<Resp>) {
        (self.req, Responder { reply: self.reply })
    }
}

/// The reply half of a split [`Envelope`].
pub struct Responder<Resp> {
    reply: Sender<Resp>,
}

impl<Resp> Responder<Resp> {
    /// Sends the response; a vanished caller is ignored (fail-stop model).
    pub fn send(self, resp: Resp) {
        let _ = self.reply.send(resp);
    }
}

/// Client end of an RPC channel.
pub struct RpcClient<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
}

impl<Req, Resp> Clone for RpcClient<Req, Resp> {
    fn clone(&self) -> Self {
        RpcClient {
            tx: self.tx.clone(),
        }
    }
}

impl<Req: Send, Resp: Send> RpcClient<Req, Resp> {
    /// Issues a blocking call and waits for the response.
    pub fn call(&self, req: Req) -> Result<Resp> {
        let (reply, rx) = unbounded();
        self.tx
            .send(Envelope { req, reply })
            .map_err(|_| RdmaError::RpcClosed)?;
        rx.recv().map_err(|_| RdmaError::RpcClosed)
    }

    /// Fire-and-forget send: no reply is awaited. Used for asynchronous
    /// replication flows that on real hardware are one-sided `RDMA_WRITE`s
    /// (Meta Area replication, §3.1) — waiting would serialize servers
    /// against each other.
    pub fn cast(&self, req: Req) -> Result<()> {
        let (reply, _discard) = unbounded();
        self.tx
            .send(Envelope { req, reply })
            .map_err(|_| RdmaError::RpcClosed)
    }

    /// Issues a call with a timeout (used by failure-handling paths that must
    /// not block on a dead server).
    pub fn call_timeout(&self, req: Req, timeout: Duration) -> Result<Resp> {
        let (reply, rx) = unbounded();
        self.tx
            .send(Envelope { req, reply })
            .map_err(|_| RdmaError::RpcClosed)?;
        rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => RdmaError::RpcTimeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => RdmaError::RpcClosed,
        })
    }
}

/// Server end of an RPC channel.
pub struct RpcServer<Req, Resp> {
    rx: Receiver<Envelope<Req, Resp>>,
}

impl<Req: Send, Resp: Send> RpcServer<Req, Resp> {
    /// Blocks until a request arrives or all clients have disconnected.
    pub fn recv(&self) -> Result<Envelope<Req, Resp>> {
        self.rx.recv().map_err(|_| RdmaError::RpcClosed)
    }

    /// Waits up to `timeout` for a request.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<Req, Resp>> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => RdmaError::RpcTimeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => RdmaError::RpcClosed,
        })
    }

    /// Non-blocking poll for a request.
    pub fn try_recv(&self) -> Option<Envelope<Req, Resp>> {
        self.rx.try_recv().ok()
    }
}

/// Creates a connected RPC client/server pair.
pub fn rpc_channel<Req: Send, Resp: Send>() -> (RpcClient<Req, Resp>, RpcServer<Req, Resp>) {
    let (tx, rx) = unbounded();
    (RpcClient { tx }, RpcServer { rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_and_respond() {
        let (cl, sv) = rpc_channel::<u32, u32>();
        let t = std::thread::spawn(move || {
            let env = sv.recv().unwrap();
            let v = env.req;
            env.respond(v * 2);
        });
        assert_eq!(cl.call(21).unwrap(), 42);
        t.join().unwrap();
    }

    #[test]
    fn closed_server_errors() {
        let (cl, sv) = rpc_channel::<u32, u32>();
        drop(sv);
        assert!(matches!(cl.call(1), Err(RdmaError::RpcClosed)));
    }

    #[test]
    fn timeout_fires() {
        let (cl, _sv) = rpc_channel::<u32, u32>();
        assert!(matches!(
            cl.call_timeout(1, Duration::from_millis(10)),
            Err(RdmaError::RpcTimeout)
        ));
    }

    #[test]
    fn many_clients_one_server() {
        let (cl, sv) = rpc_channel::<u32, u32>();
        let t = std::thread::spawn(move || {
            for _ in 0..20 {
                let env = sv.recv().unwrap();
                let v = env.req;
                env.respond(v + 1);
            }
        });
        let clients: Vec<_> = (0..4)
            .map(|i| {
                let cl = cl.clone();
                std::thread::spawn(move || {
                    for j in 0..5 {
                        assert_eq!(cl.call(i * 10 + j).unwrap(), i * 10 + j + 1);
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        t.join().unwrap();
    }
}
