//! Analytic NIC cost model: turns measured verb profiles into figures.
//!
//! The paper's performance arguments are *resource-bound* arguments:
//!
//! * small writes and atomics are bound by the RNIC's IOPS and PCIe
//!   read-modify-write budget (its Figure 1a shows write throughput falling
//!   as the replica count multiplies the CAS count);
//! * large reads are bound by NIC bandwidth (its §2.4 notes the pronounced
//!   read/write asymmetry);
//! * background checkpoint transmission steals bandwidth from foreground
//!   SEARCHes (its Figure 1b).
//!
//! Accordingly, throughput is computed as the tightest of four bounds, each
//! evaluated from the *measured* per-operation demand of a benchmark phase:
//!
//! 1. per-node small-verb IOPS,
//! 2. per-node atomic-verb (CAS/FAA) rate — scarcer than plain verbs because
//!    each atomic serializes a PCIe RMW transaction on the host bridge,
//! 3. per-node NIC bandwidth net of background traffic,
//! 4. the clients' closed-loop round-trip bound (coroutines × clients / mean
//!    operation latency).
//!
//! Latency percentiles come from the per-operation profile distribution
//! (sequential round trips including CAS retries) plus an M/M/1-style
//! queueing term whose randomness is a deterministic hash of the operation
//! index, so every report is reproducible bit-for-bit.
//!
//! Calibration: the default constants approximate one 56 Gbps ConnectX-3
//! port (the paper's testbed). They were fixed once against the paper's
//! Figure 1 and are shared by every other figure; see `EXPERIMENTS.md`.

use crate::stats::{OpKind, OpRecord, VerbSnapshot};

/// NIC and client performance constants.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Base one-sided verb round trip in microseconds.
    pub rtt_us: f64,
    /// Two-sided RPC round trip in microseconds.
    pub rpc_rtt_us: f64,
    /// Per-MN NIC bandwidth in bytes/second.
    pub node_bw: f64,
    /// Per-MN small-verb capacity (READ/WRITE/FAA) in verbs/second.
    pub node_iops: f64,
    /// Per-MN atomic capacity (CAS/FAA PCIe RMW) in verbs/second.
    pub node_atomic_iops: f64,
    /// Outstanding operations per client (coroutine depth).
    pub client_pipeline: f64,
    /// Utilization cap applied in the latency queueing term. Closed-loop
    /// clients cannot build unbounded queues, so waiting time is evaluated
    /// at `min(utilization, queue_cap)`.
    pub queue_cap: f64,
    /// Per-WQE posting overhead inside a doorbell batch, in microseconds.
    /// Verbs chained behind the first WQE of a batch skip the full round
    /// trip but still pay this SQ-processing cost, so batch latency grows
    /// gently with depth instead of staying flat.
    pub post_us: f64,
    /// IOPS cost of a doorbell-batched verb relative to a singly-posted
    /// one (0..=1). One doorbell rings for the whole chain, so the NIC
    /// amortizes descriptor fetch across the batch; 1.0 disables the
    /// discount.
    pub batched_verb_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rtt_us: 3.0,
            rpc_rtt_us: 8.0,
            node_bw: 6.9e9,
            node_iops: 19.0e6,
            node_atomic_iops: 2.6e6,
            client_pipeline: 4.0,
            queue_cap: 0.85,
            post_us: 0.15,
            batched_verb_cost: 0.6,
        }
    }
}

/// Which resource limited a phase's throughput.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Bottleneck {
    /// Closed-loop client round trips.
    ClientRtt,
    /// Small-verb IOPS on the given node (cluster index).
    NodeIops(usize),
    /// Atomic-verb rate on the given node.
    NodeAtomics(usize),
    /// NIC bandwidth on the given node.
    NodeBandwidth(usize),
}

impl Bottleneck {
    /// Short human-readable label.
    pub fn label(&self) -> String {
        match self {
            Bottleneck::ClientRtt => "client-rtt".into(),
            Bottleneck::NodeIops(n) => format!("iops@mn{n}"),
            Bottleneck::NodeAtomics(n) => format!("atomics@mn{n}"),
            Bottleneck::NodeBandwidth(n) => format!("bw@mn{n}"),
        }
    }
}

/// Latency percentiles for a set of operations, in microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyReport {
    /// Mean latency.
    pub mean_us: f64,
    /// Median latency.
    pub p50_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
}

/// Everything measured during one benchmark phase.
pub struct PhaseMeasurement {
    /// Number of client threads driving load.
    pub n_clients: usize,
    /// Foreground verb demand accumulated at each node during the phase.
    pub node_fg: Vec<VerbSnapshot>,
    /// Sustained background traffic per node in bytes/second (checkpoint
    /// transmission, offline encoding reads, recovery), subtracted from the
    /// bandwidth bound.
    pub bg_bytes_per_sec: Vec<f64>,
    /// Concatenated per-operation profiles from all clients.
    pub records: Vec<OpRecord>,
    /// Measured overlap depth per client thread, when the phase ran on the
    /// coroutine runtime (`aceso-rt`): total modeled fabric wait divided by
    /// virtual elapsed time (see `aceso_rdma::cq::SimCq::busy_us`). `None`
    /// falls back to the calibrated [`CostModel::client_pipeline`]
    /// constant, keeping legacy phases bit-identical.
    pub pipeline_depth: Option<f64>,
}

impl PhaseMeasurement {
    /// Number of profiled operations.
    pub fn ops(&self) -> u64 {
        self.records.len() as u64
    }
}

/// The model's verdict on a phase: throughput, bottleneck, latency.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Achievable throughput in million operations per second.
    pub mops: f64,
    /// The binding resource.
    pub bottleneck: Bottleneck,
    /// Utilization of the most loaded NIC resource at the operating point
    /// (1.0 when a NIC resource is itself the bottleneck).
    pub utilization: f64,
    /// Latency over all operations in the phase.
    pub latency: LatencyReport,
}

/// SplitMix64: deterministic per-index randomness for the queueing term.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform in (0, 1] from a hash.
fn unit(x: u64) -> f64 {
    ((splitmix64(x) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

impl CostModel {
    /// Base (uncontended) latency of one profiled operation in µs.
    ///
    /// A doorbell batch counts one round trip; every WQE chained behind the
    /// first adds [`CostModel::post_us`] of SQ processing on top.
    fn base_latency_us(&self, r: &OpRecord) -> f64 {
        let transfer = (r.read_bytes as f64 + r.write_bytes as f64) / self.node_bw * 1e6;
        let chained = r.batched_verbs.saturating_sub(r.batches) as f64;
        r.rtts as f64 * self.rtt_us
            + r.rpcs as f64 * self.rpc_rtt_us
            + chained * self.post_us
            + transfer
    }

    /// Small-verb demand with the doorbell discount applied: batched verbs
    /// cost [`CostModel::batched_verb_cost`] of a singly-posted one.
    fn effective_verbs(&self, d: &VerbSnapshot) -> f64 {
        let batched = d.batched.min(d.verbs()) as f64;
        d.verbs() as f64 - batched * (1.0 - self.batched_verb_cost)
    }

    /// Computes throughput bounds and picks the tightest.
    fn bounds(&self, m: &PhaseMeasurement) -> (f64, Bottleneck, f64) {
        let ops = m.ops().max(1) as f64;
        let mut best = f64::INFINITY;
        let mut which = Bottleneck::ClientRtt;

        for (i, d) in m.node_fg.iter().enumerate() {
            let verbs_per_op = self.effective_verbs(d) / ops;
            let atomics_per_op = (d.cas + d.faa) as f64 / ops;
            let bytes_per_op = d.bytes() as f64 / ops;
            let bg = m.bg_bytes_per_sec.get(i).copied().unwrap_or(0.0);
            let bw_avail = (self.node_bw - bg).max(self.node_bw * 0.02);

            if verbs_per_op > 0.0 {
                let x = self.node_iops / verbs_per_op;
                if x < best {
                    best = x;
                    which = Bottleneck::NodeIops(i);
                }
            }
            if atomics_per_op > 0.0 {
                let x = self.node_atomic_iops / atomics_per_op;
                if x < best {
                    best = x;
                    which = Bottleneck::NodeAtomics(i);
                }
            }
            if bytes_per_op > 0.0 {
                let x = bw_avail / bytes_per_op;
                if x < best {
                    best = x;
                    which = Bottleneck::NodeBandwidth(i);
                }
            }
        }

        // Client closed-loop bound at base (uncontended) latency.
        let mean_base = if m.records.is_empty() {
            self.rtt_us
        } else {
            m.records
                .iter()
                .map(|r| self.base_latency_us(r))
                .sum::<f64>()
                / m.records.len() as f64
        };
        let depth = m.pipeline_depth.unwrap_or(self.client_pipeline);
        let client_bound = m.n_clients as f64 * depth / (mean_base * 1e-6);
        if client_bound < best {
            best = client_bound;
            which = Bottleneck::ClientRtt;
        }

        // Utilization of the most loaded NIC resource at the operating point.
        let mut util: f64 = 0.0;
        for (i, d) in m.node_fg.iter().enumerate() {
            let bg = m.bg_bytes_per_sec.get(i).copied().unwrap_or(0.0);
            let u_iops = best * (self.effective_verbs(d) / ops) / self.node_iops;
            let u_atom = best * ((d.cas + d.faa) as f64 / ops) / self.node_atomic_iops;
            let u_bw = (best * (d.bytes() as f64 / ops) + bg) / self.node_bw;
            util = util.max(u_iops).max(u_atom).max(u_bw);
        }
        (best, which, util.min(1.0))
    }

    /// Full report for a phase.
    pub fn report(&self, m: &PhaseMeasurement) -> PhaseReport {
        let (x, which, util) = self.bounds(m);
        PhaseReport {
            mops: x / 1e6,
            bottleneck: which,
            utilization: util,
            latency: self.latency(m, None),
        }
    }

    /// Latency percentiles for operations of `filter` (or all operations).
    ///
    /// Per-op latency = base (round trips + transfer) + an exponential
    /// queueing term with mean `ρ/(1−ρ) · base_mean`, where ρ is the phase's
    /// NIC utilization capped at [`CostModel::queue_cap`]. The exponential
    /// draw is a deterministic hash of the operation index.
    pub fn latency(&self, m: &PhaseMeasurement, filter: Option<OpKind>) -> LatencyReport {
        let lat = self.latency_samples(m, filter);
        if lat.is_empty() {
            return LatencyReport::default();
        }
        let pick = |q: f64| lat[((lat.len() - 1) as f64 * q) as usize];
        LatencyReport {
            mean_us: lat.iter().sum::<f64>() / lat.len() as f64,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
        }
    }

    /// The full modeled per-operation latency distribution behind
    /// [`CostModel::latency`], sorted ascending, in µs. Callers wanting
    /// percentiles beyond the standard report (e.g. p999 in `bench quick`)
    /// index this directly; the queueing draw is a deterministic hash of
    /// the operation index, so the samples are reproducible bit-for-bit.
    pub fn latency_samples(&self, m: &PhaseMeasurement, filter: Option<OpKind>) -> Vec<f64> {
        let sel: Vec<(usize, &OpRecord)> = m
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| filter.is_none_or(|k| r.kind == k))
            .collect();
        if sel.is_empty() {
            return Vec::new();
        }
        let (_, _, util) = self.bounds(m);
        let rho = util.min(self.queue_cap);
        let mean_base = sel
            .iter()
            .map(|(_, r)| self.base_latency_us(r))
            .sum::<f64>()
            / sel.len() as f64;
        let wait_mean = mean_base * rho / (1.0 - rho);

        let mut lat: Vec<f64> = sel
            .iter()
            .map(|(i, r)| {
                let w = -unit(*i as u64).ln() * wait_mean;
                self.base_latency_us(r) + w
            })
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        lat
    }

    /// Time to move `bytes` over one NIC at full bandwidth, in seconds.
    /// Used by recovery-stage timing (Table 2, Figures 16/18/20).
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.node_bw + self.rtt_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: OpKind, rtts: u32, cas: u32, rd: u32, wr: u32) -> OpRecord {
        OpRecord {
            kind,
            rtts,
            verbs: rtts,
            cas,
            rpcs: 0,
            read_bytes: rd,
            write_bytes: wr,
            retries: 0,
            batch_max: 0,
            batches: 0,
            batched_verbs: 0,
        }
    }

    fn demand(reads: u64, writes: u64, cas: u64, rd_b: u64, wr_b: u64) -> VerbSnapshot {
        VerbSnapshot {
            reads,
            writes,
            cas,
            faa: 0,
            rpcs: 0,
            read_bytes: rd_b,
            write_bytes: wr_b,
            batched: 0,
        }
    }

    /// A CAS-heavy phase must be atomic-bound and scale inversely with the
    /// CAS count per op — the paper's Figure 1a effect.
    #[test]
    fn cas_count_halves_throughput() {
        let model = CostModel::default();
        let mk = |cas_per_op: u64| PhaseMeasurement {
            n_clients: 200,
            node_fg: vec![demand(0, 1000, cas_per_op * 1000, 0, 1_024_000)],
            bg_bytes_per_sec: vec![0.0],
            records: (0..1000)
                .map(|_| {
                    rec(
                        OpKind::Update,
                        1 + cas_per_op as u32,
                        cas_per_op as u32,
                        0,
                        1024,
                    )
                })
                .collect(),
            pipeline_depth: None,
        };
        let r1 = model.report(&mk(1));
        let r3 = model.report(&mk(3));
        assert!(matches!(r3.bottleneck, Bottleneck::NodeAtomics(0)));
        let ratio = r1.mops / r3.mops;
        assert!((2.0..4.0).contains(&ratio), "ratio {ratio}");
    }

    /// Background checkpoint traffic must eat into a bandwidth-bound phase —
    /// the paper's Figure 1b effect.
    #[test]
    fn background_traffic_degrades_reads() {
        let model = CostModel::default();
        let mk = |bg: f64| PhaseMeasurement {
            n_clients: 200,
            node_fg: vec![demand(1000, 0, 0, 2_048_000, 0)],
            bg_bytes_per_sec: vec![bg],
            records: (0..1000)
                .map(|_| rec(OpKind::Search, 2, 0, 2048, 0))
                .collect(),
            pipeline_depth: None,
        };
        let quiet = model.report(&mk(0.0));
        let busy = model.report(&mk(2.0e9));
        assert!(matches!(quiet.bottleneck, Bottleneck::NodeBandwidth(0)));
        assert!(
            busy.mops < quiet.mops * 0.85,
            "{} vs {}",
            busy.mops,
            quiet.mops
        );
    }

    /// More sequential round trips means strictly higher latency.
    #[test]
    fn latency_tracks_rtts() {
        let model = CostModel::default();
        let m = PhaseMeasurement {
            n_clients: 8,
            node_fg: vec![demand(10, 10, 10, 1000, 1000)],
            bg_bytes_per_sec: vec![0.0],
            records: (0..500)
                .map(|i| {
                    if i % 2 == 0 {
                        rec(OpKind::Search, 2, 0, 1024, 0)
                    } else {
                        rec(OpKind::Update, 5, 3, 0, 1024)
                    }
                })
                .collect(),
            pipeline_depth: None,
        };
        let s = model.latency(&m, Some(OpKind::Search));
        let u = model.latency(&m, Some(OpKind::Update));
        assert!(u.p50_us > s.p50_us);
        assert!(u.p99_us >= u.p50_us);
        assert!(s.p99_us >= s.p50_us);
    }

    /// The report is deterministic: same inputs, same numbers.
    #[test]
    fn deterministic() {
        let model = CostModel::default();
        let mk = || PhaseMeasurement {
            n_clients: 16,
            node_fg: vec![demand(100, 100, 50, 100_000, 50_000)],
            bg_bytes_per_sec: vec![1e8],
            records: (0..200)
                .map(|i| rec(OpKind::Update, 2 + (i % 3), 1, 0, 1024))
                .collect(),
            pipeline_depth: None,
        };
        let a = model.report(&mk());
        let b = model.report(&mk());
        assert_eq!(a.mops, b.mops);
        assert_eq!(a.latency.p99_us, b.latency.p99_us);
        // The raw sample vector is sorted, complete, and agrees with the
        // percentiles the report picked from it.
        let s = model.latency_samples(&mk(), None);
        assert_eq!(s.len(), 200);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s[(199.0 * 0.99) as usize], a.latency.p99_us);
    }

    /// Coalescing dependent writes into a doorbell batch must lower modeled
    /// latency (fewer sequential round trips, small per-post tax) and relax
    /// an IOPS-bound phase (batched verbs cost less than singly-posted ones).
    #[test]
    fn doorbell_batching_cuts_latency_and_iops_demand() {
        let model = CostModel::default();
        // Serial schedule: 3 dependent small writes, 3 RTTs, nothing batched.
        let serial = |_: u64| rec(OpKind::Update, 3, 0, 0, 192);
        // Batched schedule: the same 3 writes in one doorbell, 1 RTT.
        let batched = |_: u64| OpRecord {
            batches: 1,
            batched_verbs: 3,
            batch_max: 3,
            ..rec(OpKind::Update, 1, 0, 0, 192)
        };
        let mk = |f: &dyn Fn(u64) -> OpRecord, batched_demand: u64| PhaseMeasurement {
            n_clients: 200,
            node_fg: vec![VerbSnapshot {
                batched: batched_demand,
                ..demand(0, 3000, 0, 0, 192_000)
            }],
            bg_bytes_per_sec: vec![0.0],
            records: (0..1000).map(f).collect(),
            pipeline_depth: None,
        };
        let s = mk(&serial, 0);
        let b = mk(&batched, 3000);
        let ls = model.latency(&s, None);
        let lb = model.latency(&b, None);
        assert!(lb.p50_us < ls.p50_us, "{} vs {}", lb.p50_us, ls.p50_us);
        assert!(lb.p99_us < ls.p99_us, "{} vs {}", lb.p99_us, ls.p99_us);
        // The chained WQEs still cost something: deeper than 1 RTT flat.
        let one = mk(&|_| rec(OpKind::Update, 1, 0, 0, 1024), 0);
        assert!(model.latency(&one, None).p50_us < lb.p50_us);
        // Effective IOPS demand shrinks by the batched-verb discount.
        let rs = model.report(&s);
        let rb = model.report(&b);
        assert!(rb.mops > rs.mops, "{} vs {}", rb.mops, rs.mops);
    }

    /// A measured overlap depth must replace the calibrated pipelining
    /// constant in the client bound: doubling the depth doubles a
    /// client-bound phase's throughput, and `None` reproduces the legacy
    /// constant exactly.
    #[test]
    fn measured_pipeline_depth_overrides_constant() {
        let model = CostModel::default();
        let mk = |depth: Option<f64>| PhaseMeasurement {
            n_clients: 1,
            node_fg: vec![demand(100, 0, 0, 100_000, 0)],
            bg_bytes_per_sec: vec![0.0],
            records: (0..100).map(|_| rec(OpKind::Search, 2, 0, 1024, 0)).collect(),
            pipeline_depth: depth,
        };
        let legacy = model.report(&mk(None));
        let same = model.report(&mk(Some(model.client_pipeline)));
        assert!(matches!(legacy.bottleneck, Bottleneck::ClientRtt));
        assert_eq!(legacy.mops, same.mops);
        let deep = model.report(&mk(Some(model.client_pipeline * 2.0)));
        assert!((deep.mops / legacy.mops - 2.0).abs() < 1e-9);
        let serial = model.report(&mk(Some(1.0)));
        assert!(serial.mops < legacy.mops);
    }

    /// Empty phases do not divide by zero.
    #[test]
    fn empty_phase_is_safe() {
        let model = CostModel::default();
        let m = PhaseMeasurement {
            n_clients: 1,
            node_fg: vec![],
            bg_bytes_per_sec: vec![],
            records: vec![],
            pipeline_depth: None,
        };
        let r = model.report(&m);
        assert!(r.mops.is_finite());
        assert_eq!(r.latency.p50_us, 0.0);
    }
}
