//! Verb tracing: the sanitizer's tap into the fabric.
//!
//! A [`TraceSink`] installed on a [`crate::Cluster`] observes every verb
//! that *reached memory*: reads, writes, atomics (with their outcome), and
//! RPCs. Verbs that fail before touching the region — dead node, injected
//! fault, bad address — are never traced, so the stream is exactly the set
//! of accesses a remote NIC would have executed.
//!
//! Recording is zero-cost when disabled: the hot path is a single relaxed
//! atomic load on the cluster (see [`crate::Cluster::trace_enabled`]).
//!
//! Events carry a *trace client id*: a dense integer assigned to each
//! [`crate::DmClient`] at creation, standing in for the thread id of a
//! happens-before model (one `DmClient` = one logical thread of execution).
//! `seq` is a per-client sequence number, so `(client, seq)` names an event
//! uniquely and per-client program order is reconstructible from any
//! interleaving.

use crate::addr::NodeId;
use core::fmt;

/// What a traced verb did to remote memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `RDMA_READ` (including 8-byte atomic loads).
    Read,
    /// `RDMA_WRITE` / inline write.
    Write,
    /// `RDMA_CAS`; `success` is whether the swap landed.
    Cas {
        /// Whether the observed value equalled `expected` (swap landed).
        success: bool,
    },
    /// `RDMA_FAA` (always succeeds).
    Faa,
    /// Two-sided RPC to the server thread on the target node.
    Rpc,
    /// A synchronization barrier emitted by the harness (recovery and test
    /// phase boundaries): everything traced before it happens-before
    /// everything traced after it.
    Barrier,
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceOp::Read => write!(f, "READ"),
            TraceOp::Write => write!(f, "WRITE"),
            TraceOp::Cas { success: true } => write!(f, "CAS(ok)"),
            TraceOp::Cas { success: false } => write!(f, "CAS(fail)"),
            TraceOp::Faa => write!(f, "FAA"),
            TraceOp::Rpc => write!(f, "RPC"),
            TraceOp::Barrier => write!(f, "BARRIER"),
        }
    }
}

/// One fabric event, as delivered to a [`TraceSink`].
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Trace id of the issuing client ([`TraceEvent::BARRIER_CLIENT`] for
    /// harness barriers, which no client issues).
    pub client: u32,
    /// Per-client sequence number (0-based, no gaps).
    pub seq: u64,
    /// Target node.
    pub node: NodeId,
    /// Verb class and outcome.
    pub op: TraceOp,
    /// Byte offset of the access in the node's region (0 for RPC/Barrier).
    pub offset: u64,
    /// Access length in bytes (RPC: request payload bytes; Barrier: 0).
    pub len: usize,
}

impl TraceEvent {
    /// Synthetic client id used by [`TraceOp::Barrier`] events.
    pub const BARRIER_CLIENT: u32 = u32::MAX;
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{}#{} {} {}@[{:#x}, +{})",
            self.client, self.seq, self.op, self.node, self.offset, self.len
        )
    }
}

/// Receiver of the fabric's verb stream.
///
/// Implementations must be cheap and non-blocking relative to the workload
/// (they run inline on the verb path) and must tolerate concurrent calls
/// from multiple clients.
pub trait TraceSink: Send + Sync {
    /// Delivers one event. Called after the verb's memory effect landed.
    fn record(&self, ev: TraceEvent);
}

/// A sink that buffers every event (tests and trace dumps).
#[derive(Default)]
pub struct VecSink {
    events: parking_lot::Mutex<Vec<TraceEvent>>,
}

impl VecSink {
    /// An empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the buffered events, leaving the sink empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl TraceSink for VecSink {
    fn record(&self, ev: TraceEvent) {
        self.events.lock().push(ev);
    }
}
