//! A simulated RDMA-connected disaggregated-memory (DM) fabric.
//!
//! The Aceso paper runs on a CloudLab testbed with 56 Gbps ConnectX-3 RNICs.
//! This crate replaces that hardware with an in-process substitute that keeps
//! the two properties every protocol in the paper depends on:
//!
//! 1. **Real one-sided semantics.** Memory-node regions are arrays of
//!    [`std::sync::atomic::AtomicU64`]; `RDMA_READ`/`RDMA_WRITE` are per-word
//!    atomic accesses and `RDMA_CAS`/`RDMA_FAA` are genuine hardware atomics
//!    on 8-byte-aligned words. Concurrent clients race for real, so the
//!    linearizability arguments of the store are exercised, not mocked.
//! 2. **A calibrated NIC performance envelope.** Every verb a client issues
//!    is recorded into per-client and per-node counters. The [`cost`] module
//!    converts those *measured* profiles into throughput and latency numbers
//!    using an analytic bottleneck model of the RNIC (IOPS bound, atomic-op
//!    bound, bandwidth bound, client round-trip bound).
//!
//! The crate additionally provides the surrounding datacenter scaffolding the
//! paper assumes: a [`cluster::Cluster`] of memory nodes, a lease-based
//! [`master::Master`] membership service that notifies clients of fail-stop
//! crashes, failure injection, and a typed RPC transport standing in for
//! RDMA UD send/recv.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cluster;
pub mod cost;
pub mod cq;
pub mod error;
pub mod fault;
pub mod master;
pub mod region;
pub mod rpc;
pub mod stats;
pub mod trace;
pub mod verbs;

pub use addr::{GlobalAddr, NodeId};
pub use cluster::{Cluster, ClusterConfig, MemoryNode};
pub use cost::{Bottleneck, CostModel, LatencyReport, PhaseMeasurement, PhaseReport};
pub use cq::{block_on, Completion, SimCq};
pub use error::{RdmaError, Result};
pub use fault::{FaultAction, FaultPlan, FaultRule, FaultSite, FiredFault, VerbKind};
pub use master::{FailureEvent, Master, MembershipView};
pub use region::Region;
pub use rpc::rpc_channel;
pub use rpc::{Responder, RpcClient, RpcServer};
pub use stats::{OpKind, OpRecord, OpStats, VerbCounters};
pub use trace::{TraceEvent, TraceOp, TraceSink, VecSink};
pub use verbs::{DmClient, WriteBatch};
