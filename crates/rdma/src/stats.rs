//! Verb accounting: the raw material of the performance model.
//!
//! Every verb issued through a [`crate::verbs::DmClient`] is counted twice:
//! once against the issuing client (to build per-operation profiles and
//! latency distributions) and once against the target memory node (to model
//! NIC saturation and the interference of background traffic such as
//! checkpoint transmission). The [`crate::cost`] module consumes these
//! counters; nothing here touches wall-clock time, so results are
//! deterministic under a fixed seed.

use std::sync::atomic::{AtomicU64, Ordering};

/// The kind of KV operation a profile record describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Insert of a fresh key.
    Insert,
    /// Update of an existing key.
    Update,
    /// Point lookup.
    Search,
    /// Deletion.
    Delete,
}

impl OpKind {
    /// All four kinds, in the paper's figure order.
    pub const ALL: [OpKind; 4] = [
        OpKind::Insert,
        OpKind::Update,
        OpKind::Search,
        OpKind::Delete,
    ];

    /// The paper's label for the operation.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Insert => "INSERT",
            OpKind::Update => "UPDATE",
            OpKind::Search => "SEARCH",
            OpKind::Delete => "DELETE",
        }
    }
}

/// Monotonic counters of verbs and bytes, shared by reference.
///
/// One instance exists per client and one per memory node; background
/// (server-initiated) traffic is kept in a separate instance per node so the
/// cost model can subtract it from foreground capacity.
#[derive(Default)]
pub struct VerbCounters {
    /// Number of one-sided READ verbs.
    pub reads: AtomicU64,
    /// Number of one-sided WRITE verbs.
    pub writes: AtomicU64,
    /// Number of CAS verbs.
    pub cas: AtomicU64,
    /// Number of FAA verbs.
    pub faa: AtomicU64,
    /// Number of RPC round trips (two-sided).
    pub rpcs: AtomicU64,
    /// Bytes moved node→client.
    pub read_bytes: AtomicU64,
    /// Bytes moved client→node (including RPC payloads).
    pub write_bytes: AtomicU64,
}

impl VerbCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero (start of a measurement phase).
    pub fn reset(&self) {
        for c in [
            &self.reads,
            &self.writes,
            &self.cas,
            &self.faa,
            &self.rpcs,
            &self.read_bytes,
            &self.write_bytes,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Takes a plain-value snapshot of the counters.
    pub fn snapshot(&self) -> VerbSnapshot {
        VerbSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            cas: self.cas.load(Ordering::Relaxed),
            faa: self.faa.load(Ordering::Relaxed),
            rpcs: self.rpcs.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`VerbCounters`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct VerbSnapshot {
    /// Number of one-sided READ verbs.
    pub reads: u64,
    /// Number of one-sided WRITE verbs.
    pub writes: u64,
    /// Number of CAS verbs.
    pub cas: u64,
    /// Number of FAA verbs.
    pub faa: u64,
    /// Number of RPC round trips.
    pub rpcs: u64,
    /// Bytes moved node→client.
    pub read_bytes: u64,
    /// Bytes moved client→node.
    pub write_bytes: u64,
}

impl VerbSnapshot {
    /// Total small-verb count (reads + writes + faa; CAS is counted in its
    /// own, scarcer resource pool — PCIe read-modify-write transactions).
    pub fn verbs(&self) -> u64 {
        self.reads + self.writes + self.faa
    }

    /// Total bytes in both directions.
    pub fn bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Element-wise difference `self - earlier` (for phase deltas).
    pub fn since(&self, earlier: &VerbSnapshot) -> VerbSnapshot {
        VerbSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            cas: self.cas - earlier.cas,
            faa: self.faa - earlier.faa,
            rpcs: self.rpcs - earlier.rpcs,
            read_bytes: self.read_bytes - earlier.read_bytes,
            write_bytes: self.write_bytes - earlier.write_bytes,
        }
    }

    /// Element-wise sum.
    pub fn plus(&self, other: &VerbSnapshot) -> VerbSnapshot {
        VerbSnapshot {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            cas: self.cas + other.cas,
            faa: self.faa + other.faa,
            rpcs: self.rpcs + other.rpcs,
            read_bytes: self.read_bytes + other.read_bytes,
            write_bytes: self.write_bytes + other.write_bytes,
        }
    }
}

/// Profile of one completed KV operation, recorded by the issuing client.
///
/// `rtts` counts *sequential* network round trips: verbs issued inside a
/// doorbell batch share one round trip, retries add more. The latency model
/// multiplies this by the base RTT and adds queueing delay.
#[derive(Clone, Copy, Debug)]
pub struct OpRecord {
    /// Which API call this was.
    pub kind: OpKind,
    /// Sequential round trips (includes retries).
    pub rtts: u32,
    /// Total verbs issued (reads + writes + cas + faa).
    pub verbs: u32,
    /// CAS verbs issued.
    pub cas: u32,
    /// RPC round trips issued.
    pub rpcs: u32,
    /// Bytes read.
    pub read_bytes: u32,
    /// Bytes written.
    pub write_bytes: u32,
    /// Commit retries caused by CAS conflicts.
    pub retries: u32,
}

/// Per-client accumulation of operation profiles for one measurement phase.
#[derive(Default)]
pub struct OpStats {
    /// All completed operation records, in completion order.
    pub records: Vec<OpRecord>,
}

impl OpStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears accumulated records.
    pub fn reset(&mut self) {
        self.records.clear();
    }

    /// Number of operations of `kind`.
    pub fn count(&self, kind: OpKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Mean CAS verbs per operation of `kind` (paper Figure 1a's right axis).
    pub fn avg_cas(&self, kind: OpKind) -> f64 {
        let (n, sum) = self
            .records
            .iter()
            .filter(|r| r.kind == kind)
            .fold((0u64, 0u64), |(n, s), r| (n + 1, s + r.cas as u64));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let c = VerbCounters::new();
        c.reads.store(10, Ordering::Relaxed);
        c.read_bytes.store(1000, Ordering::Relaxed);
        let a = c.snapshot();
        c.reads.store(15, Ordering::Relaxed);
        c.read_bytes.store(1600, Ordering::Relaxed);
        let d = c.snapshot().since(&a);
        assert_eq!(d.reads, 5);
        assert_eq!(d.read_bytes, 600);
    }

    #[test]
    fn reset_zeroes() {
        let c = VerbCounters::new();
        c.cas.store(3, Ordering::Relaxed);
        c.reset();
        assert_eq!(c.snapshot(), VerbSnapshot::default());
    }

    #[test]
    fn avg_cas_by_kind() {
        let mut s = OpStats::new();
        s.records.push(OpRecord {
            kind: OpKind::Update,
            rtts: 2,
            verbs: 3,
            cas: 1,
            rpcs: 0,
            read_bytes: 0,
            write_bytes: 1024,
            retries: 0,
        });
        s.records.push(OpRecord {
            kind: OpKind::Update,
            rtts: 3,
            verbs: 5,
            cas: 3,
            rpcs: 0,
            read_bytes: 0,
            write_bytes: 1024,
            retries: 1,
        });
        s.records.push(OpRecord {
            kind: OpKind::Search,
            rtts: 1,
            verbs: 2,
            cas: 0,
            rpcs: 0,
            read_bytes: 2048,
            write_bytes: 0,
            retries: 0,
        });
        assert_eq!(s.count(OpKind::Update), 2);
        assert!((s.avg_cas(OpKind::Update) - 2.0).abs() < 1e-9);
        assert_eq!(s.avg_cas(OpKind::Search), 0.0);
        assert_eq!(s.avg_cas(OpKind::Delete), 0.0);
    }
}
