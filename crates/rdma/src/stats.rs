//! Verb accounting: the raw material of the performance model.
//!
//! Every verb issued through a [`crate::verbs::DmClient`] is counted twice:
//! once against the issuing client (to build per-operation profiles and
//! latency distributions) and once against the target memory node (to model
//! NIC saturation and the interference of background traffic such as
//! checkpoint transmission). The [`crate::cost`] module consumes these
//! counters; nothing here touches wall-clock time, so results are
//! deterministic under a fixed seed.

use std::sync::atomic::{AtomicU64, Ordering};

/// The kind of KV operation a profile record describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Insert of a fresh key.
    Insert,
    /// Update of an existing key.
    Update,
    /// Point lookup.
    Search,
    /// Deletion.
    Delete,
}

impl OpKind {
    /// All four kinds, in the paper's figure order.
    pub const ALL: [OpKind; 4] = [
        OpKind::Insert,
        OpKind::Update,
        OpKind::Search,
        OpKind::Delete,
    ];

    /// The paper's label for the operation.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Insert => "INSERT",
            OpKind::Update => "UPDATE",
            OpKind::Search => "SEARCH",
            OpKind::Delete => "DELETE",
        }
    }
}

/// Monotonic counters of verbs and bytes, shared by reference.
///
/// One instance exists per client and one per memory node; background
/// (server-initiated) traffic is kept in a separate instance per node so the
/// cost model can subtract it from foreground capacity.
#[derive(Default)]
pub struct VerbCounters {
    /// Number of one-sided READ verbs.
    pub reads: AtomicU64,
    /// Number of one-sided WRITE verbs.
    pub writes: AtomicU64,
    /// Number of CAS verbs.
    pub cas: AtomicU64,
    /// Number of FAA verbs.
    pub faa: AtomicU64,
    /// Number of RPC round trips (two-sided).
    pub rpcs: AtomicU64,
    /// Bytes moved node→client.
    pub read_bytes: AtomicU64,
    /// Bytes moved client→node (including RPC payloads).
    pub write_bytes: AtomicU64,
    /// Of the small verbs (reads + writes + faa), how many were posted
    /// inside a doorbell batch. Batched WQEs amortize posting overhead, so
    /// the cost model charges them a discounted IOPS cost.
    pub batched: AtomicU64,
}

impl VerbCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero (start of a measurement phase).
    pub fn reset(&self) {
        for c in [
            &self.reads,
            &self.writes,
            &self.cas,
            &self.faa,
            &self.rpcs,
            &self.read_bytes,
            &self.write_bytes,
            &self.batched,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Takes a plain-value snapshot of the counters.
    pub fn snapshot(&self) -> VerbSnapshot {
        VerbSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            cas: self.cas.load(Ordering::Relaxed),
            faa: self.faa.load(Ordering::Relaxed),
            rpcs: self.rpcs.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`VerbCounters`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct VerbSnapshot {
    /// Number of one-sided READ verbs.
    pub reads: u64,
    /// Number of one-sided WRITE verbs.
    pub writes: u64,
    /// Number of CAS verbs.
    pub cas: u64,
    /// Number of FAA verbs.
    pub faa: u64,
    /// Number of RPC round trips.
    pub rpcs: u64,
    /// Bytes moved node→client.
    pub read_bytes: u64,
    /// Bytes moved client→node.
    pub write_bytes: u64,
    /// Small verbs (reads + writes + faa) posted inside a doorbell batch.
    pub batched: u64,
}

impl VerbSnapshot {
    /// Total small-verb count (reads + writes + faa; CAS is counted in its
    /// own, scarcer resource pool — PCIe read-modify-write transactions).
    pub fn verbs(&self) -> u64 {
        self.reads + self.writes + self.faa
    }

    /// Total bytes in both directions.
    pub fn bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Element-wise difference `self - earlier` (for phase deltas).
    pub fn since(&self, earlier: &VerbSnapshot) -> VerbSnapshot {
        VerbSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            cas: self.cas - earlier.cas,
            faa: self.faa - earlier.faa,
            rpcs: self.rpcs - earlier.rpcs,
            read_bytes: self.read_bytes - earlier.read_bytes,
            write_bytes: self.write_bytes - earlier.write_bytes,
            batched: self.batched - earlier.batched,
        }
    }

    /// Element-wise sum.
    pub fn plus(&self, other: &VerbSnapshot) -> VerbSnapshot {
        VerbSnapshot {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            cas: self.cas + other.cas,
            faa: self.faa + other.faa,
            rpcs: self.rpcs + other.rpcs,
            read_bytes: self.read_bytes + other.read_bytes,
            write_bytes: self.write_bytes + other.write_bytes,
            batched: self.batched + other.batched,
        }
    }
}

/// Profile of one completed KV operation, recorded by the issuing client.
///
/// `rtts` counts *sequential* network round trips: verbs issued inside a
/// doorbell batch share one round trip, retries add more. The latency model
/// multiplies this by the base RTT and adds queueing delay.
#[derive(Clone, Copy, Debug)]
pub struct OpRecord {
    /// Which API call this was.
    pub kind: OpKind,
    /// Sequential round trips (includes retries).
    pub rtts: u32,
    /// Total verbs issued (reads + writes + cas + faa).
    pub verbs: u32,
    /// CAS verbs issued.
    pub cas: u32,
    /// RPC round trips issued.
    pub rpcs: u32,
    /// Bytes read.
    pub read_bytes: u32,
    /// Bytes written.
    pub write_bytes: u32,
    /// Commit retries caused by CAS conflicts.
    pub retries: u32,
    /// Deepest doorbell batch issued by this operation (verbs in the
    /// largest single [`crate::verbs::DmClient::batch`] section; 0 when
    /// the op never batched). Observability surfaces this per span.
    pub batch_max: u32,
    /// Number of doorbell batches this operation posted (each contributes
    /// exactly one sequential round trip regardless of its verb count).
    pub batches: u32,
    /// Total verbs posted inside those batches. Together with `batches`,
    /// this lets the cost model charge chained WQEs a per-post overhead
    /// instead of a full round trip each.
    pub batched_verbs: u32,
}

/// Per-client accumulation of operation profiles for one measurement phase.
#[derive(Default)]
pub struct OpStats {
    /// All completed operation records, in completion order.
    pub records: Vec<OpRecord>,
}

impl OpStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears accumulated records.
    pub fn reset(&mut self) {
        self.records.clear();
    }

    /// Number of operations of `kind`.
    pub fn count(&self, kind: OpKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Mean CAS verbs per operation of `kind` (paper Figure 1a's right axis).
    pub fn avg_cas(&self, kind: OpKind) -> f64 {
        let (n, sum) = self
            .records
            .iter()
            .filter(|r| r.kind == kind)
            .fold((0u64, 0u64), |(n, s), r| (n + 1, s + r.cas as u64));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let c = VerbCounters::new();
        c.reads.store(10, Ordering::Relaxed);
        c.read_bytes.store(1000, Ordering::Relaxed);
        let a = c.snapshot();
        c.reads.store(15, Ordering::Relaxed);
        c.read_bytes.store(1600, Ordering::Relaxed);
        let d = c.snapshot().since(&a);
        assert_eq!(d.reads, 5);
        assert_eq!(d.read_bytes, 600);
    }

    #[test]
    fn reset_zeroes() {
        let c = VerbCounters::new();
        c.cas.store(3, Ordering::Relaxed);
        c.reset();
        assert_eq!(c.snapshot(), VerbSnapshot::default());
    }

    #[test]
    fn avg_cas_by_kind() {
        let mut s = OpStats::new();
        s.records.push(OpRecord {
            kind: OpKind::Update,
            rtts: 2,
            verbs: 3,
            cas: 1,
            rpcs: 0,
            read_bytes: 0,
            write_bytes: 1024,
            retries: 0,
            batch_max: 2,
            batches: 1,
            batched_verbs: 2,
        });
        s.records.push(OpRecord {
            kind: OpKind::Update,
            rtts: 3,
            verbs: 5,
            cas: 3,
            rpcs: 0,
            read_bytes: 0,
            write_bytes: 1024,
            retries: 1,
            batch_max: 2,
            batches: 1,
            batched_verbs: 2,
        });
        s.records.push(OpRecord {
            kind: OpKind::Search,
            rtts: 1,
            verbs: 2,
            cas: 0,
            rpcs: 0,
            read_bytes: 2048,
            write_bytes: 0,
            retries: 0,
            batch_max: 0,
            batches: 0,
            batched_verbs: 0,
        });
        assert_eq!(s.count(OpKind::Update), 2);
        assert!((s.avg_cas(OpKind::Update) - 2.0).abs() < 1e-9);
        assert_eq!(s.avg_cas(OpKind::Search), 0.0);
        assert_eq!(s.avg_cas(OpKind::Delete), 0.0);
    }

    // The cost model sums per-node counters across concurrent clients; these
    // tests pin down that accounting under real thread interleavings.
    mod concurrent {
        use super::*;
        use crate::addr::{GlobalAddr, NodeId};
        use crate::cluster::{Cluster, ClusterConfig};
        use crate::cost::CostModel;
        use std::sync::Arc;

        const CLIENTS: usize = 4;
        const ROUNDS: u64 = 50;

        fn cluster() -> Arc<Cluster> {
            Cluster::new(ClusterConfig {
                num_mns: 2,
                region_len: 1 << 16,
                cost: CostModel::default(),
            })
        }

        /// Node counters equal the sum of the per-client counters, verb by
        /// verb and byte by byte, when clients hammer both nodes in parallel.
        #[test]
        fn node_counters_sum_client_counters() {
            let c = cluster();
            let totals: Vec<VerbSnapshot> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move || {
                            let cl = c.client();
                            // Each client gets a private 512-byte lane so the
                            // verbs are conflict-free data races aside.
                            let lane = (i as u64) * 512;
                            for n in 0..2u16 {
                                let base = GlobalAddr::new(NodeId(n), lane);
                                for r in 0..ROUNDS {
                                    cl.write(base, &[r as u8; 32]).unwrap();
                                    let _ = cl.read_vec(base, 32).unwrap();
                                    let _ = cl.faa(base.add(64), 1).unwrap();
                                    let _ = cl.cas(base.add(72), r, r + 1).unwrap();
                                }
                            }
                            cl.counters().snapshot()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            let per_client_total = totals
                .iter()
                .fold(VerbSnapshot::default(), |acc, s| acc.plus(s));
            let node_total = c
                .nodes()
                .iter()
                .fold(VerbSnapshot::default(), |acc, n| {
                    acc.plus(&n.traffic.snapshot())
                });
            assert_eq!(per_client_total, node_total);
            // And the absolute numbers are what the loop issued.
            let verbs_per_client = 2 * ROUNDS; // writes per node
            assert_eq!(node_total.writes, CLIENTS as u64 * verbs_per_client);
            assert_eq!(node_total.reads, CLIENTS as u64 * verbs_per_client);
            assert_eq!(node_total.faa, CLIENTS as u64 * verbs_per_client);
            assert_eq!(node_total.cas, CLIENTS as u64 * verbs_per_client);
            assert_eq!(
                node_total.write_bytes,
                CLIENTS as u64 * verbs_per_client * (32 + 8 + 8)
            );
            assert_eq!(
                node_total.read_bytes,
                CLIENTS as u64 * verbs_per_client * (32 + 8 + 8)
            );
        }

        /// Per-operation profiles (round trips = dependency depth, batched
        /// verbs share one RTT) stay exact per client under concurrency.
        #[test]
        fn op_profiles_stay_per_client_under_concurrency() {
            let c = cluster();
            std::thread::scope(|s| {
                for i in 0..CLIENTS {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        let cl = c.client();
                        let base = GlobalAddr::new(NodeId(0), (i as u64) * 512);
                        for _ in 0..ROUNDS {
                            cl.begin_op();
                            // One doorbell batch (1 RTT) + one dependent CAS
                            // (1 RTT): dependency depth 2.
                            cl.batch(|cl| {
                                cl.write(base, &[1u8; 64]).unwrap();
                                cl.write(base.add(64), &[2u8; 64]).unwrap();
                            });
                            let _ = cl.cas(base.add(128), 0, 1).unwrap();
                            cl.end_op(OpKind::Update);
                        }
                        let ops = cl.take_ops();
                        assert_eq!(ops.records.len(), ROUNDS as usize);
                        for r in &ops.records {
                            assert_eq!(r.rtts, 2, "batch + dependent CAS");
                            assert_eq!(r.verbs, 3);
                            assert_eq!(r.cas, 1);
                            assert_eq!(r.write_bytes, 64 + 64 + 8);
                            assert_eq!(r.batch_max, 2, "two writes in the doorbell batch");
                            assert_eq!((r.batches, r.batched_verbs), (1, 2));
                        }
                        assert!((ops.avg_cas(OpKind::Update) - 1.0).abs() < 1e-9);
                    });
                }
            });
        }

        /// Background clients never leak into foreground counters (and vice
        /// versa) even when both hit the same node concurrently.
        #[test]
        fn foreground_background_split_is_exact() {
            let c = cluster();
            std::thread::scope(|s| {
                let fg = {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        let cl = c.client();
                        for r in 0..ROUNDS {
                            cl.write(GlobalAddr::new(NodeId(0), 0), &[r as u8; 16])
                                .unwrap();
                        }
                    })
                };
                let bg = {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        let cl = c.background_client();
                        for _ in 0..ROUNDS {
                            let _ = cl.read_vec(GlobalAddr::new(NodeId(0), 1024), 256).unwrap();
                        }
                    })
                };
                fg.join().unwrap();
                bg.join().unwrap();
            });
            let node = c.node(NodeId(0)).unwrap();
            let t = node.traffic.snapshot();
            let b = node.background.snapshot();
            assert_eq!((t.writes, t.reads), (ROUNDS, 0));
            assert_eq!((b.writes, b.reads), (0, ROUNDS));
            assert_eq!(t.write_bytes, ROUNDS * 16);
            assert_eq!(b.read_bytes, ROUNDS * 256);
        }
    }
}
