//! The memory pool: a cluster of memory nodes plus the master.

use crate::addr::NodeId;
use crate::cost::CostModel;
use crate::error::{RdmaError, Result};
use crate::fault::FaultPlan;
use crate::master::Master;
use crate::region::Region;
use crate::stats::VerbCounters;
use crate::trace::{TraceEvent, TraceOp, TraceSink};
use crate::verbs::DmClient;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// One epoch fence: accesses overlapping `[start, start + len)` require a
/// client placement epoch of at least `min_epoch`.
#[derive(Clone, Copy, Debug)]
struct EpochFence {
    start: u64,
    len: usize,
    min_epoch: u64,
}

/// A memory node (MN): one registered region behind one simulated RNIC.
pub struct MemoryNode {
    /// This node's id.
    pub id: NodeId,
    /// The registered memory region.
    pub region: Arc<Region>,
    alive: AtomicBool,
    /// Foreground (client-initiated) traffic through this node's NIC.
    pub traffic: VerbCounters,
    /// Background (server/recovery-initiated) traffic through this NIC.
    pub background: VerbCounters,
    /// Node-side fault plan: intercepts every verb targeting this node,
    /// from any client (see [`crate::FaultPlan`]).
    fault: Mutex<Option<Arc<FaultPlan>>>,
    /// Placement-epoch fences over byte ranges (see
    /// [`MemoryNode::install_fence`]).
    fences: Mutex<Vec<EpochFence>>,
    /// Fast-path flag mirroring `!fences.is_empty()`; verbs check this
    /// single relaxed load, so fencing is free when no migration runs.
    fenced: AtomicBool,
}

impl MemoryNode {
    fn new(id: NodeId, region_len: usize) -> Self {
        MemoryNode {
            id,
            region: Arc::new(Region::new(id, region_len)),
            alive: AtomicBool::new(true),
            traffic: VerbCounters::new(),
            background: VerbCounters::new(),
            fault: Mutex::new(None),
            fences: Mutex::new(Vec::new()),
            fenced: AtomicBool::new(false),
        }
    }

    /// Whether this node is currently reachable.
    #[inline]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Fails the node: all subsequent verbs return `NodeUnreachable`.
    /// Returns whether the node was alive (idempotent; `false` on a
    /// double-kill).
    pub fn kill(&self) -> bool {
        self.alive.swap(false, Ordering::AcqRel)
    }

    /// Installs a fault plan intercepting all verbs to this node.
    pub fn install_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.fault.lock() = Some(plan);
    }

    /// Removes the node's fault plan, if any.
    pub fn clear_fault_plan(&self) {
        *self.fault.lock() = None;
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault.lock().clone()
    }

    /// Installs a placement-epoch fence over `[start, start + len)`:
    /// verbs from clients whose session placement epoch (see
    /// [`crate::DmClient::set_placement_epoch`]) is below `min_epoch`
    /// fail with [`crate::RdmaError::EpochFenced`] until the client
    /// refreshes its placement view. The migrator fences a range *before*
    /// moving it, so a client still resolving addresses through a stale
    /// `PlacementMap` can neither read a half-moved block nor write
    /// through a retired location. Clients that never set an epoch
    /// (background, recovery, control plane) pass all fences.
    pub fn install_fence(&self, start: u64, len: usize, min_epoch: u64) {
        let mut g = self.fences.lock();
        g.push(EpochFence {
            start,
            len,
            min_epoch,
        });
        self.fenced.store(true, Ordering::Release);
    }

    /// Removes every fence (migration finished or aborted).
    pub fn clear_fences(&self) {
        let mut g = self.fences.lock();
        g.clear();
        self.fenced.store(false, Ordering::Release);
    }

    /// The minimum placement epoch required to access
    /// `[start, start + len)`, or `None` if the range is unfenced.
    /// Single relaxed load when no fences are installed.
    #[inline]
    pub fn fence_required(&self, start: u64, len: usize) -> Option<u64> {
        if !self.fenced.load(Ordering::Relaxed) {
            return None;
        }
        let end = start.saturating_add(len as u64);
        self.fences
            .lock()
            .iter()
            .filter(|f| start < f.start.saturating_add(f.len as u64) && f.start < end)
            .map(|f| f.min_epoch)
            .max()
    }
}

/// Static configuration of a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of memory nodes (the paper's coding group size; default 5).
    pub num_mns: usize,
    /// Registered region size per MN in bytes.
    pub region_len: usize,
    /// NIC cost model used by the performance reports.
    pub cost: CostModel,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_mns: 5,
            region_len: 256 << 20,
            cost: CostModel::default(),
        }
    }
}

/// A cluster: the memory pool, the master, and the cost model.
///
/// The cluster is the root object of a simulation. Memory nodes are appended,
/// never removed — a crashed node keeps its slot (so stale [`NodeId`]s fail
/// loudly) and its replacement gets a fresh id, matching the paper's model of
/// "start a new server on an idle MN".
pub struct Cluster {
    nodes: RwLock<Vec<Arc<MemoryNode>>>,
    /// The reliable master providing the membership service.
    pub master: Arc<Master>,
    /// The NIC cost model shared by all performance reports.
    pub cost: CostModel,
    /// Installed verb-trace sink, if any (see [`crate::TraceSink`]).
    trace: RwLock<Option<Arc<dyn TraceSink>>>,
    /// Fast-path flag mirroring `trace.is_some()`; verbs check this single
    /// relaxed load before touching the sink lock, so tracing is free when
    /// disabled.
    trace_on: AtomicBool,
    /// Next dense trace client id handed to a new [`DmClient`].
    next_trace_client: AtomicU32,
}

impl Cluster {
    /// Builds a cluster with `config.num_mns` fresh memory nodes.
    pub fn new(config: ClusterConfig) -> Arc<Self> {
        let master = Arc::new(Master::new());
        let nodes: Vec<Arc<MemoryNode>> = (0..config.num_mns)
            .map(|i| Arc::new(MemoryNode::new(NodeId(i as u16), config.region_len)))
            .collect();
        for n in &nodes {
            master.register(n.id);
        }
        Arc::new(Cluster {
            nodes: RwLock::new(nodes),
            master,
            cost: config.cost,
            trace: RwLock::new(None),
            trace_on: AtomicBool::new(false),
            next_trace_client: AtomicU32::new(0),
        })
    }

    /// Installs a verb-trace sink observing every memory-effective verb from
    /// every client of this cluster (see [`crate::TraceSink`]).
    pub fn install_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        *self.trace.write() = Some(sink);
        self.trace_on.store(true, Ordering::Release);
    }

    /// Removes the trace sink, if any. In-flight verbs may still deliver a
    /// final event to the old sink.
    pub fn clear_trace_sink(&self) {
        self.trace_on.store(false, Ordering::Release);
        *self.trace.write() = None;
    }

    /// Whether a trace sink is installed (single relaxed load; the verb
    /// fast path).
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace_on.load(Ordering::Relaxed)
    }

    /// The installed trace sink, if any.
    pub fn trace_sink(&self) -> Option<Arc<dyn TraceSink>> {
        if !self.trace_enabled() {
            return None;
        }
        self.trace.read().clone()
    }

    /// Emits a [`crate::TraceOp::Barrier`] event: the harness asserts that
    /// everything traced so far happens-before everything traced after
    /// (recovery hand-offs, test phase boundaries). No-op when tracing is
    /// disabled, so runners may call it unconditionally.
    pub fn trace_barrier(&self) {
        if let Some(sink) = self.trace_sink() {
            sink.record(TraceEvent {
                client: TraceEvent::BARRIER_CLIENT,
                seq: 0,
                node: NodeId(0),
                op: TraceOp::Barrier,
                offset: 0,
                len: 0,
            });
        }
    }

    /// Allocates the next dense trace client id (one per [`DmClient`]).
    pub(crate) fn next_trace_client(&self) -> u32 {
        self.next_trace_client.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the node handle for `id`, whether alive or crashed.
    ///
    /// Most callers want [`Cluster::node`], which additionally checks
    /// liveness; this accessor exists for recovery tooling and tests.
    pub fn node_any(&self, id: NodeId) -> Option<Arc<MemoryNode>> {
        self.nodes.read().get(id.0 as usize).cloned()
    }

    /// Returns the node handle for `id` if it is alive.
    pub fn node(&self, id: NodeId) -> Result<Arc<MemoryNode>> {
        let n = self.node_any(id).ok_or(RdmaError::NodeUnreachable(id))?;
        if n.is_alive() {
            Ok(n)
        } else {
            Err(RdmaError::NodeUnreachable(id))
        }
    }

    /// All node handles, including crashed ones, in id order.
    pub fn nodes(&self) -> Vec<Arc<MemoryNode>> {
        self.nodes.read().clone()
    }

    /// Number of nodes ever added.
    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    /// Returns `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.read().is_empty()
    }

    /// Injects a fail-stop crash of `id`: verbs start failing and the master
    /// broadcasts the failure to subscribers.
    ///
    /// Idempotent: returns whether the node was alive, and only the first
    /// kill notifies the master, so chaos schedules that double-kill a node
    /// are well-defined (the second kill is a no-op returning `false`).
    pub fn kill_node(&self, id: NodeId) -> bool {
        let Some(n) = self.node_any(id) else {
            return false;
        };
        let was_alive = n.kill();
        if was_alive {
            self.master.mark_failed(id);
        }
        was_alive
    }

    /// Retires `id` after a completed drain: verbs start failing exactly
    /// like a crash (fail-stop of the *address*, not the data — the
    /// migrator moved the contents first), but the master broadcasts
    /// [`crate::FailureEvent::NodeDrained`] instead of a failure so
    /// subscribers do not start recovery. Idempotent like
    /// [`Cluster::kill_node`].
    pub fn drain_node(&self, id: NodeId) -> bool {
        let Some(n) = self.node_any(id) else {
            return false;
        };
        let was_alive = n.kill();
        if was_alive {
            self.master.mark_drained(id);
        }
        was_alive
    }

    /// Adds a fresh memory node (the recovery target) and returns its handle.
    pub fn add_node(&self, region_len: usize) -> Arc<MemoryNode> {
        let mut g = self.nodes.write();
        let id = NodeId(g.len() as u16);
        let n = Arc::new(MemoryNode::new(id, region_len));
        g.push(Arc::clone(&n));
        drop(g);
        self.master.register(id);
        n
    }

    /// Creates a foreground client handle (a compute-node thread).
    pub fn client(self: &Arc<Self>) -> DmClient {
        DmClient::new(Arc::clone(self), false)
    }

    /// Creates a background client handle whose traffic is accounted to the
    /// per-node background counters (MN servers, checkpointing, recovery).
    pub fn background_client(self: &Arc<Self>) -> DmClient {
        DmClient::new(Arc::clone(self), true)
    }

    /// Resets all per-node traffic counters (start of a measurement phase).
    pub fn reset_traffic(&self) {
        for n in self.nodes.read().iter() {
            n.traffic.reset();
            n.background.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_kill() {
        let c = Cluster::new(ClusterConfig {
            num_mns: 3,
            region_len: 4096,
            cost: CostModel::default(),
        });
        assert_eq!(c.len(), 3);
        assert!(c.node(NodeId(2)).is_ok());
        assert!(c.kill_node(NodeId(2)));
        // Idempotent: a double-kill reports the node was already dead.
        assert!(!c.kill_node(NodeId(2)));
        assert!(!c.kill_node(NodeId(9)));
        assert!(matches!(
            c.node(NodeId(2)),
            Err(RdmaError::NodeUnreachable(NodeId(2)))
        ));
        assert!(!c.master.is_alive(NodeId(2)));
        // The handle is still reachable for forensic access.
        assert!(c.node_any(NodeId(2)).is_some());
    }

    #[test]
    fn add_node_gets_fresh_id() {
        let c = Cluster::new(ClusterConfig {
            num_mns: 2,
            region_len: 4096,
            cost: CostModel::default(),
        });
        c.kill_node(NodeId(0));
        let n = c.add_node(4096);
        assert_eq!(n.id, NodeId(2));
        assert!(c.master.is_alive(NodeId(2)));
    }

    #[test]
    fn fences_report_strictest_overlap() {
        let c = Cluster::new(ClusterConfig {
            num_mns: 1,
            region_len: 4096,
            cost: CostModel::default(),
        });
        let n = c.node(NodeId(0)).unwrap();
        assert_eq!(n.fence_required(0, 4096), None);
        n.install_fence(100, 100, 3);
        n.install_fence(150, 100, 7);
        assert_eq!(n.fence_required(0, 100), None); // ends at fence start
        assert_eq!(n.fence_required(120, 8), Some(3));
        assert_eq!(n.fence_required(180, 8), Some(7));
        assert_eq!(n.fence_required(140, 20), Some(7)); // spans both
        assert_eq!(n.fence_required(250, 8), None);
        n.clear_fences();
        assert_eq!(n.fence_required(120, 8), None);
    }

    #[test]
    fn drain_kills_verbs_but_signals_planned_removal() {
        use crate::master::FailureEvent;
        let c = Cluster::new(ClusterConfig {
            num_mns: 2,
            region_len: 4096,
            cost: CostModel::default(),
        });
        let rx = c.master.subscribe();
        assert!(c.drain_node(NodeId(1)));
        assert!(!c.drain_node(NodeId(1)));
        assert!(c.node(NodeId(1)).is_err());
        assert!(!c.master.is_alive(NodeId(1)));
        assert_eq!(rx.recv().unwrap(), FailureEvent::NodeDrained(NodeId(1)));
    }

    #[test]
    fn unknown_node_is_unreachable() {
        let c = Cluster::new(ClusterConfig {
            num_mns: 1,
            region_len: 4096,
            cost: CostModel::default(),
        });
        assert!(c.node(NodeId(9)).is_err());
    }
}
