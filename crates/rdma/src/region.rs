//! Registered memory regions backing each memory node.
//!
//! A region is a fixed-size array of [`AtomicU64`] words accessed at byte
//! granularity. This mirrors how an RNIC exposes host memory: ordinary
//! READ/WRITE verbs move bytes with no atomicity guarantee beyond the bus
//! word, while CAS/FAA are atomic PCIe read-modify-write transactions on
//! naturally aligned 8-byte words. Protocols that need torn-read detection
//! (the KV pair `Write Version` pairs, checkpoint snapshots of 8 B slot
//! halves) get exactly the guarantees they would get from real hardware.

use crate::error::{RdmaError, Result};
use crate::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};

/// A registered memory region: `len` bytes backed by 8-byte atomic words.
pub struct Region {
    words: Box<[AtomicU64]>,
    len: usize,
    node: NodeId,
}

impl Region {
    /// Allocates a zeroed region of `len` bytes on behalf of `node`.
    ///
    /// `len` is rounded up to a multiple of 8.
    pub fn new(node: NodeId, len: usize) -> Self {
        let words = len.div_ceil(8);
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        Region {
            words: v.into_boxed_slice(),
            len: words * 8,
            node,
        }
    }

    /// Size of the region in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the region has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check(&self, offset: u64, len: usize) -> Result<usize> {
        let off = offset as usize;
        if off.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(RdmaError::OutOfBounds {
                node: self.node,
                offset,
                len,
                region: self.len,
            });
        }
        Ok(off)
    }

    /// Reads `dst.len()` bytes starting at `offset` into `dst`.
    ///
    /// Each underlying 8-byte word is loaded atomically (Acquire), matching
    /// the per-bus-word atomicity of a real RNIC DMA read. Reads racing with
    /// concurrent writes may observe a mix of old and new words but never a
    /// torn word.
    pub fn read(&self, offset: u64, dst: &mut [u8]) -> Result<()> {
        let off = self.check(offset, dst.len())?;
        let mut pos = 0usize;
        while pos < dst.len() {
            let byte = off + pos;
            let widx = byte / 8;
            let shift = byte % 8;
            let take = (8 - shift).min(dst.len() - pos);
            let word = self.words[widx].load(Ordering::Acquire).to_le_bytes();
            dst[pos..pos + take].copy_from_slice(&word[shift..shift + take]);
            pos += take;
        }
        Ok(())
    }

    /// Writes `src` starting at `offset`.
    ///
    /// Whole words are stored atomically (Release); partial edge words use a
    /// CAS loop so concurrent atomics on neighbouring bytes are not clobbered.
    pub fn write(&self, offset: u64, src: &[u8]) -> Result<()> {
        let off = self.check(offset, src.len())?;
        let mut pos = 0usize;
        while pos < src.len() {
            let byte = off + pos;
            let widx = byte / 8;
            let shift = byte % 8;
            let take = (8 - shift).min(src.len() - pos);
            if take == 8 {
                let mut w = [0u8; 8];
                w.copy_from_slice(&src[pos..pos + 8]);
                self.words[widx].store(u64::from_le_bytes(w), Ordering::Release);
            } else {
                // Merge the partial word without disturbing the other bytes.
                let mut mask = [0u8; 8];
                let mut val = [0u8; 8];
                for i in 0..take {
                    mask[shift + i] = 0xFF;
                    val[shift + i] = src[pos + i];
                }
                let mask = u64::from_le_bytes(mask);
                let val = u64::from_le_bytes(val);
                let _ = self.words[widx].fetch_update(Ordering::AcqRel, Ordering::Acquire, |old| {
                    Some((old & !mask) | val)
                });
            }
            pos += take;
        }
        Ok(())
    }

    /// Atomically compare-and-swaps the 8-byte word at `offset`.
    ///
    /// Returns the value observed before the operation; the swap succeeded
    /// iff the returned value equals `expected`, exactly like `RDMA_CAS`.
    pub fn cas64(&self, offset: u64, expected: u64, new: u64) -> Result<u64> {
        if !offset.is_multiple_of(8) {
            return Err(RdmaError::Unaligned(offset));
        }
        let off = self.check(offset, 8)?;
        match self.words[off / 8].compare_exchange(
            expected,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(prev) => Ok(prev),
            Err(prev) => Ok(prev),
        }
    }

    /// Atomically fetch-and-adds `delta` to the 8-byte word at `offset`.
    ///
    /// Returns the pre-add value, like `RDMA_FAA`.
    pub fn faa64(&self, offset: u64, delta: u64) -> Result<u64> {
        if !offset.is_multiple_of(8) {
            return Err(RdmaError::Unaligned(offset));
        }
        let off = self.check(offset, 8)?;
        Ok(self.words[off / 8].fetch_add(delta, Ordering::AcqRel))
    }

    /// Atomically loads the 8-byte word at `offset`.
    pub fn load64(&self, offset: u64) -> Result<u64> {
        if !offset.is_multiple_of(8) {
            return Err(RdmaError::Unaligned(offset));
        }
        let off = self.check(offset, 8)?;
        Ok(self.words[off / 8].load(Ordering::Acquire))
    }

    /// Atomically stores the 8-byte word at `offset`.
    pub fn store64(&self, offset: u64, value: u64) -> Result<()> {
        if !offset.is_multiple_of(8) {
            return Err(RdmaError::Unaligned(offset));
        }
        let off = self.check(offset, 8)?;
        self.words[off / 8].store(value, Ordering::Release);
        Ok(())
    }

    /// Copies `len` bytes at `offset` into a fresh vector.
    pub fn read_vec(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read(offset, &mut v)?;
        Ok(v)
    }

    /// Zeroes `len` bytes starting at `offset` (used when blocks are freed).
    pub fn zero(&self, offset: u64, len: usize) -> Result<()> {
        // Word-at-a-time; partial edges via `write`.
        let off = self.check(offset, len)?;
        let mut pos = 0usize;
        while pos < len {
            let byte = off + pos;
            if byte.is_multiple_of(8) && len - pos >= 8 {
                self.words[byte / 8].store(0, Ordering::Release);
                pos += 8;
            } else {
                let take = (8 - byte % 8).min(len - pos);
                self.write((byte) as u64, &vec![0u8; take])?;
                pos += take;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn region(len: usize) -> Region {
        Region::new(NodeId(0), len)
    }

    #[test]
    fn write_read_roundtrip_aligned() {
        let r = region(64);
        let data: Vec<u8> = (0..32).collect();
        r.write(8, &data).unwrap();
        assert_eq!(r.read_vec(8, 32).unwrap(), data);
    }

    #[test]
    fn write_read_roundtrip_unaligned() {
        let r = region(64);
        let data: Vec<u8> = (10..31).collect();
        r.write(3, &data).unwrap();
        assert_eq!(r.read_vec(3, data.len()).unwrap(), data);
    }

    #[test]
    fn unaligned_write_preserves_neighbours() {
        let r = region(32);
        r.write(0, &[0xAA; 32]).unwrap();
        r.write(5, &[0x11, 0x22]).unwrap();
        let v = r.read_vec(0, 32).unwrap();
        assert_eq!(v[4], 0xAA);
        assert_eq!(v[5], 0x11);
        assert_eq!(v[6], 0x22);
        assert_eq!(v[7], 0xAA);
    }

    #[test]
    fn cas_semantics() {
        let r = region(16);
        r.store64(8, 7).unwrap();
        assert_eq!(r.cas64(8, 7, 9).unwrap(), 7);
        assert_eq!(r.load64(8).unwrap(), 9);
        // Failed CAS returns the observed value and leaves memory unchanged.
        assert_eq!(r.cas64(8, 7, 11).unwrap(), 9);
        assert_eq!(r.load64(8).unwrap(), 9);
    }

    #[test]
    fn faa_semantics() {
        let r = region(16);
        assert_eq!(r.faa64(0, 5).unwrap(), 0);
        assert_eq!(r.faa64(0, 5).unwrap(), 5);
        assert_eq!(r.load64(0).unwrap(), 10);
    }

    #[test]
    fn atomics_reject_unaligned() {
        let r = region(16);
        assert!(matches!(r.cas64(4, 0, 1), Err(RdmaError::Unaligned(4))));
        assert!(matches!(r.faa64(1, 1), Err(RdmaError::Unaligned(1))));
    }

    #[test]
    fn bounds_checked() {
        let r = region(16);
        assert!(r.read_vec(8, 16).is_err());
        assert!(r.write(16, &[1]).is_err());
        assert!(r.load64(16).is_err());
        // Offset overflow must not wrap.
        assert!(r.read_vec(u64::MAX, 1).is_err());
    }

    #[test]
    fn zero_clears_range() {
        let r = region(64);
        r.write(0, &[0xFF; 64]).unwrap();
        r.zero(5, 20).unwrap();
        let v = r.read_vec(0, 64).unwrap();
        assert!(v[5..25].iter().all(|&b| b == 0));
        assert_eq!(v[4], 0xFF);
        assert_eq!(v[25], 0xFF);
    }

    #[test]
    fn concurrent_cas_is_exclusive() {
        let r = Arc::new(region(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut wins = 0u64;
                    for _ in 0..10_000 {
                        let cur = r.load64(0).unwrap();
                        if r.cas64(0, cur, cur + 1).unwrap() == cur {
                            wins += 1;
                        }
                    }
                    wins
                })
            })
            .collect();
        let total: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(r.load64(0).unwrap(), total);
    }

    #[test]
    fn concurrent_faa_counts_exactly() {
        let r = Arc::new(region(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        r.faa64(0, 1).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.load64(0).unwrap(), 80_000);
    }
}
