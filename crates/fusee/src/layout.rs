//! FUSEE's index layout: original RACE hashing with 8-byte slots.
//!
//! Slot value: `fp:8 | len:8 | addr:48` where `addr` is the KV offset in
//! 64 B units and `len` the KV size class in 64 B units. The bucket-group
//! geometry matches the Aceso index (3 buckets of 8 slots, two combined
//! buckets), but a combined-bucket read moves only 128 B instead of 256 B —
//! the `+SLOT` step of the paper's factor analysis (Figure 13) measures
//! exactly this difference.

use aceso_index::hash::hash_pair;
use aceso_rdma::{DmClient, GlobalAddr, NodeId, Result};

/// Bytes per 8-slot bucket.
const BUCKET_BYTES: u64 = 8 * 8;
/// Bytes per 3-bucket group.
const GROUP_BYTES: u64 = 3 * BUCKET_BYTES;
/// Slots per combined bucket.
const COMBINED_SLOTS: u64 = 16;

/// An 8-byte FUSEE index slot value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Slot8(u64);

impl Slot8 {
    /// The empty slot.
    pub const EMPTY: Slot8 = Slot8(0);

    /// Builds a slot from fingerprint, KV byte offset and 64 B length class.
    pub fn new(fp: u8, offset: u64, len_class: u64) -> Self {
        debug_assert_eq!(offset % 64, 0);
        Slot8(((fp as u64) << 56) | ((len_class & 0xFF) << 48) | (offset / 64))
    }

    /// Raw u64 for CAS.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Rebuilds from a raw word.
    pub fn from_raw(raw: u64) -> Self {
        Slot8(raw)
    }

    /// Whether the slot is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// The stored fingerprint.
    pub fn fp(&self) -> u8 {
        (self.0 >> 56) as u8
    }

    /// KV size class in 64 B units.
    pub fn len_class(&self) -> u64 {
        (self.0 >> 48) & 0xFF
    }

    /// KV byte offset.
    pub fn offset(&self) -> u64 {
        (self.0 & ((1 << 48) - 1)) * 64
    }
}

/// Byte position of one slot in an index replica.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlotPos {
    /// Byte offset of the slot within the index area.
    pub offset: u64,
}

/// A matching slot found by a scan.
#[derive(Clone, Copy, Debug)]
pub struct Found {
    /// Where the slot lives.
    pub pos: SlotPos,
    /// Its value at scan time.
    pub slot: Slot8,
}

/// Scan result over a key's two combined buckets.
#[derive(Clone, Debug, Default)]
pub struct Scan {
    /// Fingerprint matches in scan order.
    pub matches: Vec<Found>,
    /// Empty slots in scan order.
    pub empties: Vec<SlotPos>,
}

/// Per-MN layout of the baseline.
///
/// The logical index is hash-partitioned across the MNs; partition `p`'s
/// primary copy lives in *area* `p` on node `p` and its backups in area `p`
/// on the following `r − 1` nodes, so every MN reserves one area per
/// partition and replica slot positions never collide across partitions.
#[derive(Clone, Copy, Debug)]
pub struct FuseeLayout {
    /// Index partitions (= number of MNs).
    pub partitions: u64,
    /// Bucket groups per index partition area.
    pub index_groups: u64,
    /// KV block size.
    pub block_size: u64,
    /// KV blocks per MN.
    pub blocks_per_mn: u64,
    /// Charge 16 B per slot on bucket reads (factor-analysis `+SLOT`).
    pub wide_slots: bool,
}

impl FuseeLayout {
    /// Creates a layout.
    pub fn new(partitions: u64, index_groups: u64, block_size: u64, blocks_per_mn: u64) -> Self {
        FuseeLayout {
            partitions,
            index_groups,
            block_size,
            blocks_per_mn,
            wide_slots: false,
        }
    }

    /// Bytes of one partition's index area.
    pub fn area_size(&self) -> u64 {
        self.index_groups * GROUP_BYTES
    }

    /// Byte offset of partition `p`'s area on any node hosting it.
    pub fn area_base(&self, partition: usize) -> u64 {
        partition as u64 * self.area_size()
    }

    /// Total index bytes per MN (all partition areas).
    pub fn index_size(&self) -> u64 {
        self.partitions * self.area_size()
    }

    /// Byte offset where KV blocks start.
    pub fn block_base(&self) -> u64 {
        self.index_size().next_multiple_of(64)
    }

    /// Total region bytes per MN.
    pub fn region_len(&self) -> usize {
        (self.block_base() + self.blocks_per_mn * self.block_size) as usize
    }

    /// Byte offset of KV block `b`.
    pub fn block_offset(&self, b: u64) -> u64 {
        debug_assert!(b < self.blocks_per_mn);
        self.block_base() + b * self.block_size
    }

    /// Global address of a slot on `node`.
    pub fn slot_addr(&self, node: NodeId, pos: SlotPos) -> GlobalAddr {
        GlobalAddr::new(node, pos.offset)
    }

    /// Reads the key's two combined buckets in partition area `partition`
    /// on `node` (one doorbell batch of two 128 B reads) and classifies the
    /// slots.
    pub fn scan(
        &self,
        dm: &DmClient,
        node: NodeId,
        partition: usize,
        key: &[u8],
        fp: u8,
    ) -> Result<Scan> {
        let base = self.area_base(partition);
        let (h1, h2) = hash_pair(key);
        let coords = [
            (h1 % self.index_groups, 0u64),
            (h2 % self.index_groups, 1u64),
        ];
        let mut bufs: [Vec<u8>; 2] = [Vec::new(), Vec::new()];
        let read_bytes = if self.wide_slots {
            4 * BUCKET_BYTES as usize // 16 B per slot: 256 B per combined bucket.
        } else {
            2 * BUCKET_BYTES as usize
        };
        dm.batch(|dm| -> Result<()> {
            for (i, &(g, c)) in coords.iter().enumerate() {
                let off = base + g * GROUP_BYTES + c * BUCKET_BYTES;
                // Wide mode still decodes the first 128 B; the extra bytes
                // only exist to charge the NIC what 16 B slots would cost.
                let want = read_bytes.min((self.index_size() - off) as usize);
                let mut buf = dm.read_vec(GlobalAddr::new(node, off), want)?;
                buf.resize(2 * BUCKET_BYTES as usize, 0);
                bufs[i] = buf;
            }
            Ok(())
        })?;
        let mut scan = Scan::default();
        let mut seen = Vec::with_capacity(4);
        for (i, &(g, c)) in coords.iter().enumerate() {
            for s in 0..COMBINED_SLOTS {
                let off = base + g * GROUP_BYTES + c * BUCKET_BYTES + s * 8;
                if seen.contains(&off) {
                    continue;
                }
                seen.push(off);
                let raw = u64::from_le_bytes(
                    bufs[i][(s * 8) as usize..(s * 8 + 8) as usize]
                        .try_into()
                        .unwrap(),
                );
                let slot = Slot8::from_raw(raw);
                let pos = SlotPos { offset: off };
                if slot.is_empty() {
                    scan.empties.push(pos);
                } else if slot.fp() == fp {
                    scan.matches.push(Found { pos, slot });
                }
            }
        }
        Ok(scan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip() {
        let s = Slot8::new(0xAB, 64 * 1234, 17);
        assert_eq!(s.fp(), 0xAB);
        assert_eq!(s.offset(), 64 * 1234);
        assert_eq!(s.len_class(), 17);
        assert!(!s.is_empty());
        assert_eq!(Slot8::from_raw(s.raw()), s);
    }

    #[test]
    fn empty_slot() {
        assert!(Slot8::EMPTY.is_empty());
        assert_eq!(Slot8::EMPTY.raw(), 0);
    }

    #[test]
    fn layout_sizes() {
        let l = FuseeLayout::new(5, 100, 1 << 16, 8);
        assert_eq!(l.index_size(), 5 * 100 * 192);
        assert_eq!(l.area_base(2), 2 * 100 * 192);
        assert!(l.block_base() >= l.index_size());
        assert_eq!(l.block_base() % 64, 0);
        assert_eq!(l.region_len() as u64, l.block_base() + 8 * (1 << 16));
    }

    #[test]
    fn combined_reads_are_128_bytes() {
        // Half of Aceso's 256 B — the +SLOT cost difference of Figure 13.
        assert_eq!(2 * BUCKET_BYTES, 128);
    }
}
