//! FUSEE-style replication baseline (Shen et al., FAST'23), on the same
//! simulated fabric as Aceso.
//!
//! FUSEE is the state-of-the-art fully-disaggregated KV store the paper
//! compares against (§4.1). Its fault tolerance is replication:
//!
//! * the RACE-hashing index (original 8 B slots) is kept in `r` replicas;
//!   every write request CASes the backup indexes first and the primary
//!   last, so committing costs at least `r` `RDMA_CAS`es (§2.4 / Fig 1a);
//! * every KV pair is written to `r` MNs (≥ `r`× space, §2.4 / Fig 12);
//! * the client cache stores slot *values* only, so a cached read costs a
//!   KV read plus a bucket re-read for validation (§3.5.1 / Fig 13).
//!
//! This reimplementation reproduces FUSEE's *verb profile* — the resource
//! demands the cost model converts into throughput — and enough of its
//! semantics to pass correctness tests (linearizable per-key updates with
//! the primary CAS as commit point). The original's collaborative conflict
//! resolution is simplified to retry-from-scratch, which only makes the
//! baseline cheaper per conflict, never more expensive — conservative for
//! every comparison in Aceso's favour.
//!
//! Since the engine-seam refactor this baseline is a full peer, not just a
//! bench prop: it survives MN failure ([`FuseeStore::kill_mn`] /
//! [`FuseeStore::recover_mn`] re-replicate the lost column from the
//! surviving copies), serves reads degraded while the primary is down
//! (backup-replica SEARCH), repairs commits torn by a client crash
//! ([`FuseeStore::reconcile_replicas`]), and accounts its memory so the
//! three-way Table 3 comparison can report overhead factors
//! ([`FuseeStore::memory_usage`]). The `aceso-engines` crate adapts it to
//! the `aceso-core` engine seam (`FtEngine`) as the `fusee` backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;

use aceso_index::{fingerprint, route_hash};
use aceso_rdma::{
    Cluster, ClusterConfig, CostModel, DmClient, GlobalAddr, NodeId, OpKind, RdmaError,
};
use layout::{FuseeLayout, Slot8};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Errors from the baseline store.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FuseeError {
    /// Fabric failure.
    Rdma(RdmaError),
    /// Key absent on UPDATE/DELETE.
    NotFound,
    /// No free slot in the key's buckets.
    IndexFull,
    /// Out of KV blocks.
    OutOfBlocks,
    /// Retry budget exhausted.
    RetriesExhausted,
    /// `recover_mn` called on a column whose node is still alive.
    ColumnAlive,
}

impl From<RdmaError> for FuseeError {
    fn from(e: RdmaError) -> Self {
        FuseeError::Rdma(e)
    }
}

/// Result alias.
pub type Result<T> = core::result::Result<T, FuseeError>;

/// Baseline configuration.
#[derive(Clone, Debug)]
pub struct FuseeConfig {
    /// Number of memory nodes.
    pub num_mns: usize,
    /// Replication factor `r` (the paper sweeps 1–3 in Figure 1a and uses
    /// 3 elsewhere, matching Aceso's two-failure tolerance).
    pub replicas: usize,
    /// Index bucket groups per MN.
    pub index_groups: u64,
    /// KV block size in bytes.
    pub block_size: u64,
    /// Number of KV blocks per MN.
    pub blocks_per_mn: u64,
    /// Widen index slots 8 B → 16 B (the `+SLOT` factor-analysis step of
    /// Figure 13): doubles bucket-read bytes, leaves semantics unchanged.
    pub wide_slots: bool,
    /// NIC cost model.
    pub cost: CostModel,
}

impl FuseeConfig {
    /// Laptop-scale defaults mirroring `AcesoConfig::small`.
    pub fn small() -> Self {
        FuseeConfig {
            num_mns: 5,
            replicas: 3,
            index_groups: 512,
            block_size: 64 << 10,
            blocks_per_mn: 48,
            wide_slots: false,
            cost: CostModel::default(),
        }
    }
}

/// One replicated block allocation: block `id` claimed on every column in
/// `cols` (identical offsets, identical intended contents). Recovery walks
/// these records to find a surviving copy of every block a dead column
/// hosted — block ids are per-column streams, so without the record there
/// is no way to know which columns mirror `(col, id)`.
#[derive(Clone, Debug)]
struct BlockSet {
    id: u64,
    cols: Vec<usize>,
}

struct CentralAlloc {
    /// Next free block per MN.
    next_block: Vec<u64>,
    /// Every block set handed out, in allocation order.
    sets: Vec<BlockSet>,
}

/// The baseline store: a cluster plus a coarse central block allocator
/// (FUSEE's block allocation is also server-mediated and off the critical
/// path; the mutex stands in for that rare RPC).
pub struct FuseeStore {
    /// The memory pool.
    pub cluster: Arc<Cluster>,
    /// Configuration.
    pub cfg: FuseeConfig,
    /// Per-MN layout.
    pub layout: FuseeLayout,
    alloc: Mutex<CentralAlloc>,
    /// Column → node directory. Columns outlive nodes: recovery replaces a
    /// dead column's node with a fresh one and republishes the mapping here.
    nodes: RwLock<Vec<NodeId>>,
}

impl FuseeStore {
    /// Launches the baseline over `cfg.num_mns` memory nodes.
    pub fn launch(cfg: FuseeConfig) -> Arc<Self> {
        let mut layout = FuseeLayout::new(
            cfg.num_mns as u64,
            cfg.index_groups,
            cfg.block_size,
            cfg.blocks_per_mn,
        );
        layout.wide_slots = cfg.wide_slots;
        let cluster = Cluster::new(ClusterConfig {
            num_mns: cfg.num_mns,
            region_len: layout.region_len(),
            cost: cfg.cost,
        });
        Arc::new(FuseeStore {
            cluster,
            alloc: Mutex::new(CentralAlloc {
                next_block: vec![0; cfg.num_mns],
                sets: Vec::new(),
            }),
            nodes: RwLock::new((0..cfg.num_mns).map(|c| NodeId(c as u16)).collect()),
            layout,
            cfg,
        })
    }

    /// The node currently hosting column `col`.
    pub fn node_of(&self, col: usize) -> NodeId {
        self.nodes.read()[col]
    }

    /// Whether column `col`'s node is alive.
    pub fn col_alive(&self, col: usize) -> bool {
        self.cluster.node(self.node_of(col)).is_ok()
    }

    /// Columns hosting index partition `p`'s replicas: primary (= `p`)
    /// first, then the `r − 1` backups.
    pub fn partition_cols(&self, p: usize) -> Vec<usize> {
        let n = self.cfg.num_mns;
        (0..self.cfg.replicas).map(|i| (p + i) % n).collect()
    }

    /// Fail-stops the node hosting `col`. Returns `false` if already dead.
    pub fn kill_mn(&self, col: usize) -> bool {
        self.cluster.kill_node(self.node_of(col))
    }

    /// Creates a client.
    pub fn client(self: &Arc<Self>) -> FuseeClient {
        FuseeClient {
            dm: self.cluster.client(),
            store: Arc::clone(self),
            open: HashMap::new(),
            free_slots: HashMap::new(),
            cache: HashMap::new(),
            use_cache: true,
            max_retries: 10_000,
        }
    }

    /// The replica columns for a key: primary first.
    pub fn replica_cols(&self, key: &[u8]) -> Vec<usize> {
        let n = self.cfg.num_mns;
        let p = (route_hash(key) % n as u64) as usize;
        (0..self.cfg.replicas).map(|i| (p + i) % n).collect()
    }

    /// Allocates one block (same id) on each of the key set's `r` columns.
    /// FUSEE replicates KV pairs at identical offsets on the replica MNs,
    /// so one allocation claims the same block id on all of them.
    fn alloc_block_set(&self, cols: &[usize]) -> Result<u64> {
        let mut a = self.alloc.lock();
        // The same block id must be free on every requested column.
        let id = cols.iter().map(|&c| a.next_block[c]).max().unwrap();
        if id >= self.cfg.blocks_per_mn {
            return Err(FuseeError::OutOfBlocks);
        }
        for &c in cols {
            a.next_block[c] = id + 1;
        }
        a.sets.push(BlockSet {
            id,
            cols: cols.to_vec(),
        });
        Ok(id)
    }

    /// Recovers column `col` onto a fresh node by re-replicating from the
    /// surviving copies: every index partition area the column hosted is
    /// copied from a live replica, every KV block is copied from a live
    /// member of its recorded block set, and the column directory is
    /// republished. The report's `net_ms` is *modeled* network time
    /// (bytes over the cost model's bandwidth plus per-verb round trips),
    /// so it is a pure function of the seed like Aceso's recovery columns.
    pub fn recover_mn(self: &Arc<Self>, col: usize) -> Result<FuseeRecovery> {
        if self.col_alive(col) {
            return Err(FuseeError::ColumnAlive);
        }
        let replacement = self.cluster.add_node(self.layout.region_len());
        let dm = self.cluster.background_client();
        let mut rep = FuseeRecovery::default();
        let area = self.layout.area_size() as usize;

        // Index tier: copy each partition area this column replicated.
        for p in 0..self.cfg.num_mns {
            let hosting = self.partition_cols(p);
            if !hosting.contains(&col) {
                continue;
            }
            let src = *hosting
                .iter()
                .find(|&&c| c != col && self.col_alive(c))
                .ok_or(FuseeError::Rdma(RdmaError::NodeUnreachable(
                    self.node_of(col),
                )))?;
            let base = self.layout.area_base(p);
            let bytes = dm.read_vec(GlobalAddr::new(self.node_of(src), base), area)?;
            for w in bytes.chunks_exact(8) {
                if !Slot8::from_raw(u64::from_le_bytes(w.try_into().unwrap())).is_empty() {
                    rep.slots += 1;
                }
            }
            dm.write(GlobalAddr::new(replacement.id, base), &bytes)?;
            rep.index_bytes += 2 * area as u64;
            rep.verbs += 2;
        }

        // Block tier: copy each block whose recorded set includes `col`.
        let sets: Vec<BlockSet> = self.alloc.lock().sets.clone();
        for set in sets.iter().filter(|s| s.cols.contains(&col)) {
            let src = *set
                .cols
                .iter()
                .find(|&&c| c != col && self.col_alive(c))
                .ok_or(FuseeError::Rdma(RdmaError::NodeUnreachable(
                    self.node_of(col),
                )))?;
            let off = self.layout.block_offset(set.id);
            let bytes = dm.read_vec(
                GlobalAddr::new(self.node_of(src), off),
                self.cfg.block_size as usize,
            )?;
            dm.write(GlobalAddr::new(replacement.id, off), &bytes)?;
            rep.block_bytes += 2 * self.cfg.block_size;
            rep.blocks += 1;
            rep.verbs += 2;
        }

        self.nodes.write()[col] = replacement.id;
        rep.net_ms = (rep.index_bytes + rep.block_bytes) as f64 / self.cfg.cost.node_bw * 1e3
            + rep.verbs as f64 * self.cfg.cost.rtt_us * 1e-3;
        Ok(rep)
    }

    /// Repairs commits torn by a crashed client (§2.4's failure window in
    /// our simplified conflict resolution): a writer that died after
    /// CASing backup index slots but before the primary commit point
    /// leaves the backups *ahead* of the primary, wedging every later
    /// writer of that key. The primary is the commit point, so repair
    /// rolls every live backup slot back to the primary's value. Returns
    /// the number of slots rewritten.
    pub fn reconcile_replicas(self: &Arc<Self>) -> Result<usize> {
        let dm = self.cluster.background_client();
        let area = self.layout.area_size() as usize;
        let mut repaired = 0usize;
        for p in 0..self.cfg.num_mns {
            let hosting = self.partition_cols(p);
            if !self.col_alive(hosting[0]) {
                continue; // Needs recover_mn first; nothing to roll back to.
            }
            let base = self.layout.area_base(p);
            let pbytes = dm.read_vec(GlobalAddr::new(self.node_of(hosting[0]), base), area)?;
            for &b in hosting[1..].iter().filter(|&&c| self.col_alive(c)) {
                let node = self.node_of(b);
                let bbytes = dm.read_vec(GlobalAddr::new(node, base), area)?;
                for (i, (pw, bw)) in pbytes
                    .chunks_exact(8)
                    .zip(bbytes.chunks_exact(8))
                    .enumerate()
                {
                    if pw != bw {
                        dm.write(GlobalAddr::new(node, base + i as u64 * 8), pw)?;
                        repaired += 1;
                    }
                }
            }
        }
        Ok(repaired)
    }

    /// Replica-agreement check (the baseline's analogue of Aceso's parity
    /// scrub): at quiescence every live backup's index area must equal its
    /// partition primary's, and every KV slot referenced by a live index
    /// entry must hold byte-identical copies on every live replica column.
    /// Forensic (direct region reads, no verbs). Returns violations.
    pub fn replica_agreement(&self) -> Vec<String> {
        let mut v = Vec::new();
        let area = self.layout.area_size() as usize;
        for p in 0..self.cfg.num_mns {
            let hosting = self.partition_cols(p);
            let live: Vec<usize> = hosting
                .iter()
                .copied()
                .filter(|&c| self.col_alive(c))
                .collect();
            let Some(&first) = live.first() else { continue };
            let read_area = |c: usize| {
                self.cluster
                    .node(self.node_of(c))
                    .ok()
                    .and_then(|n| n.region.read_vec(self.layout.area_base(p), area).ok())
            };
            let Some(pbytes) = read_area(first) else { continue };
            for &c in &live[1..] {
                if read_area(c).as_ref() != Some(&pbytes) {
                    v.push(format!("partition {p}: index replica on col {c} diverges"));
                }
            }
            // KV copies referenced from this partition's index.
            for (i, w) in pbytes.chunks_exact(8).enumerate() {
                let slot = Slot8::from_raw(u64::from_le_bytes(w.try_into().unwrap()));
                if slot.is_empty() {
                    continue;
                }
                let len = (slot.len_class().max(1) * 64) as usize;
                let copy = |c: usize| {
                    self.cluster
                        .node(self.node_of(c))
                        .ok()
                        .and_then(|n| n.region.read_vec(slot.offset(), len).ok())
                };
                let Some(primary_kv) = copy(first) else { continue };
                for &c in &live[1..] {
                    if copy(c).as_ref() != Some(&primary_kv) {
                        v.push(format!(
                            "partition {p} slot {i}: KV copy on col {c} diverges at offset {:#x}",
                            slot.offset()
                        ));
                    }
                }
            }
        }
        v
    }

    /// Space accounting for the Table 3 memory-overhead comparison.
    ///
    /// `valid` counts each live KV record once (header + key + value,
    /// walked from the partition primaries); `redundancy` is the `r − 1`
    /// extra copies replication keeps of those bytes; `allocated` is the
    /// primary share of block space handed out (each block set claims one
    /// primary block plus `r − 1` replica blocks). Forensic and
    /// deterministic: direct region reads, no verbs.
    pub fn memory_usage(&self) -> FuseeUsage {
        let mut u = FuseeUsage::default();
        let area = self.layout.area_size() as usize;
        for p in 0..self.cfg.num_mns {
            let Some(&col) = self
                .partition_cols(p)
                .iter()
                .find(|&&c| self.col_alive(c))
            else {
                continue;
            };
            let Ok(node) = self.cluster.node(self.node_of(col)) else {
                continue;
            };
            let Ok(bytes) = node.region.read_vec(self.layout.area_base(p), area) else {
                continue;
            };
            for w in bytes.chunks_exact(8) {
                let slot = Slot8::from_raw(u64::from_le_bytes(w.try_into().unwrap()));
                if slot.is_empty() {
                    continue;
                }
                let Ok(hdr) = node.region.read_vec(slot.offset(), KV_HDR) else {
                    continue;
                };
                let total = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as u64;
                u.valid += KV_HDR as u64 + total;
            }
        }
        u.redundancy = u.valid * (self.cfg.replicas as u64 - 1);
        u.allocated = self.alloc.lock().sets.len() as u64 * self.cfg.block_size;
        u
    }
}

/// What one column recovery moved (see [`FuseeStore::recover_mn`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FuseeRecovery {
    /// Index-area bytes transferred (read from a live replica + written to
    /// the replacement).
    pub index_bytes: u64,
    /// KV-block bytes transferred.
    pub block_bytes: u64,
    /// Blocks re-replicated.
    pub blocks: usize,
    /// Live index slots re-hosted.
    pub slots: usize,
    /// Copy verbs issued.
    pub verbs: u64,
    /// Modeled network milliseconds (deterministic).
    pub net_ms: f64,
}

/// Space accounting snapshot (see [`FuseeStore::memory_usage`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FuseeUsage {
    /// Live KV bytes, counted once.
    pub valid: u64,
    /// Extra replica bytes kept for fault tolerance (`(r − 1) × valid`).
    pub redundancy: u64,
    /// Primary share of allocated block bytes.
    pub allocated: u64,
}

#[derive(Clone, Copy)]
struct OpenBlock {
    block: u64,
    next_slot: u64,
    slots: u64,
}

#[derive(Clone, Copy)]
struct CachedKv {
    /// Primary-copy offset of the KV.
    offset: u64,
    len: u32,
}

/// A FUSEE client.
pub struct FuseeClient {
    /// The fabric endpoint (benches read its profiles).
    pub dm: DmClient,
    store: Arc<FuseeStore>,
    /// Open block per (primary column, size class).
    open: HashMap<(usize, u32), OpenBlock>,
    /// Reclaimed slots per (primary column, size class): obsolete KV slots
    /// are overwritten directly — replication's cheap reclamation (§2.5).
    free_slots: HashMap<(usize, u32), Vec<u64>>,
    cache: HashMap<Vec<u8>, CachedKv>,
    /// Client cache on/off (Figure 13's ORIGIN step disables it).
    pub use_cache: bool,
    /// Commit retry budget.
    pub max_retries: usize,
}

/// KV record header: `len(u32) | key_len(u16) | pad(u16)`, then key, value.
const KV_HDR: usize = 8;

impl FuseeClient {
    fn node_of(&self, col: usize) -> NodeId {
        self.store.node_of(col)
    }

    fn encode_kv(key: &[u8], value: &[u8]) -> Vec<u8> {
        let class = (KV_HDR + key.len() + value.len()).div_ceil(64) * 64;
        let mut buf = vec![0u8; class];
        buf[0..4].copy_from_slice(&((key.len() + value.len()) as u32).to_le_bytes());
        buf[4..6].copy_from_slice(&(key.len() as u16).to_le_bytes());
        buf[KV_HDR..KV_HDR + key.len()].copy_from_slice(key);
        buf[KV_HDR + key.len()..KV_HDR + key.len() + value.len()].copy_from_slice(value);
        buf
    }

    fn decode_kv<'a>(buf: &'a [u8], key: &[u8]) -> Option<&'a [u8]> {
        if buf.len() < KV_HDR {
            return None;
        }
        let total = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let klen = u16::from_le_bytes(buf[4..6].try_into().unwrap()) as usize;
        if klen > total || KV_HDR + total > buf.len() {
            return None;
        }
        if &buf[KV_HDR..KV_HDR + klen] != key {
            return None;
        }
        Some(&buf[KV_HDR + klen..KV_HDR + total])
    }

    /// Allocates a replicated KV slot; returns the common offset.
    fn alloc_slot(&mut self, cols: &[usize], class: u32) -> Result<u64> {
        let pkey = (cols[0], class);
        if let Some(list) = self.free_slots.get_mut(&pkey) {
            if let Some(off) = list.pop() {
                return Ok(off);
            }
        }
        loop {
            if let Some(ob) = self.open.get_mut(&pkey) {
                if ob.next_slot < ob.slots {
                    let off =
                        self.store.layout.block_offset(ob.block) + ob.next_slot * class as u64;
                    ob.next_slot += 1;
                    return Ok(off);
                }
                self.open.remove(&pkey);
            }
            let block = self.store.alloc_block_set(cols)?;
            self.open.insert(
                pkey,
                OpenBlock {
                    block,
                    next_slot: 0,
                    slots: self.store.cfg.block_size / class as u64,
                },
            );
        }
    }

    /// SEARCH: cached KV read + bucket validation, or a full query. While
    /// the primary column is dead (killed, not yet recovered) the read is
    /// served *degraded* from the first live backup replica — the index
    /// partition area and the KV copies live at identical offsets on every
    /// replica column, so the backup answers the same scan.
    pub fn search(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.dm.begin_op();
        let r = self.search_inner(key);
        match &r {
            Ok(_) => { self.dm.end_op(OpKind::Search); }
            Err(_) => self.dm.abort_op(),
        }
        r
    }

    fn search_inner(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.search_primary(key) {
            Err(FuseeError::Rdma(RdmaError::NodeUnreachable(_))) => self.search_degraded(key),
            r => r,
        }
    }

    /// Degraded SEARCH: walk the backup replicas in order and serve the
    /// scan + KV read from the first one that answers.
    fn search_degraded(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let cols = self.store.replica_cols(key);
        let fp = fingerprint(key);
        let layout = self.store.layout;
        let mut last = FuseeError::Rdma(RdmaError::NodeUnreachable(self.node_of(cols[0])));
        for &c in &cols[1..] {
            let scan = match layout.scan(&self.dm, self.node_of(c), cols[0], key, fp) {
                Ok(s) => s,
                Err(e) => {
                    last = e.into();
                    continue;
                }
            };
            for s in &scan.matches {
                if let Some(v) = self.read_candidate(c, s.slot, key)? {
                    return Ok(Some(v));
                }
            }
            return Ok(None);
        }
        Err(last)
    }

    fn search_primary(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let cols = self.store.replica_cols(key);
        let fp = fingerprint(key);
        let layout = self.store.layout;
        let primary = self.node_of(cols[0]);

        if self.use_cache {
            if let Some(c) = self.cache.get(key).copied() {
                // FUSEE's value cache: it knows where the KV is but not
                // which slot pointed there, so validation re-reads the
                // key's buckets (cf. §3.5.1).
                let mut kv = Err(RdmaError::RpcClosed);
                let mut scan = Err(RdmaError::RpcClosed);
                self.dm.batch(|dm| {
                    kv = dm.read_vec(GlobalAddr::new(primary, c.offset), c.len as usize);
                    scan = layout.scan(dm, primary, cols[0], key, fp);
                });
                let (kv, scan) = (kv?, scan?);
                if scan.matches.iter().any(|s| s.slot.offset() == c.offset) {
                    // Tombstones (empty value) read as absent.
                    return Ok(Self::decode_kv(&kv, key)
                        .filter(|v| !v.is_empty())
                        .map(|v| v.to_vec()));
                }
                self.cache.remove(key);
                // Stale: chase the fresh slots.
                for s in &scan.matches {
                    if let Some(v) = self.read_candidate(cols[0], s.slot, key)? {
                        return Ok(Some(v));
                    }
                }
                return Ok(None);
            }
        }
        let scan = layout.scan(&self.dm, primary, cols[0], key, fp)?;
        for s in &scan.matches {
            if let Some(v) = self.read_candidate(cols[0], s.slot, key)? {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn read_candidate(&mut self, pcol: usize, slot: Slot8, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let len = slot.len_class().max(1) * 64;
        let buf = self.dm.read_vec(
            GlobalAddr::new(self.node_of(pcol), slot.offset()),
            len as usize,
        )?;
        match Self::decode_kv(&buf, key) {
            // A tombstone is the key's own slot, so no later candidate can
            // match: report absent (and never cache it).
            Some([]) => Ok(None),
            Some(v) => {
                if self.use_cache {
                    self.cache.insert(
                        key.to_vec(),
                        CachedKv {
                            offset: slot.offset(),
                            len: len as u32,
                        },
                    );
                }
                Ok(Some(v.to_vec()))
            }
            None => Ok(None),
        }
    }

    /// INSERT (upsert semantics, like the Aceso client).
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.dm.begin_op();
        let r = self.write(key, value, true);
        match &r {
            Ok(_) => { self.dm.end_op(OpKind::Insert); }
            Err(_) => self.dm.abort_op(),
        }
        r
    }

    /// UPDATE of an existing key.
    pub fn update(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.dm.begin_op();
        let r = self.write(key, value, false);
        match &r {
            Ok(_) => { self.dm.end_op(OpKind::Update); }
            Err(_) => self.dm.abort_op(),
        }
        r
    }

    /// DELETE: commits a zero-length tombstone KV (paper §4.2) and frees
    /// the old slot for direct overwrite.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        self.dm.begin_op();
        let r = self.write(key, b"", false);
        match r {
            Ok(()) => {
                self.cache.remove(key);
                self.dm.end_op(OpKind::Delete);
                Ok(true)
            }
            Err(FuseeError::NotFound) => {
                self.dm.end_op(OpKind::Delete);
                Ok(false)
            }
            Err(e) => {
                self.dm.abort_op();
                Err(e)
            }
        }
    }

    /// The replicated write path: write `r` KV copies, then CAS the backup
    /// index slots, then the primary slot (the commit point).
    fn write(&mut self, key: &[u8], value: &[u8], allow_insert: bool) -> Result<()> {
        let cols = self.store.replica_cols(key);
        let fp = fingerprint(key);
        let layout = self.store.layout;
        let kv = Self::encode_kv(key, value);
        let class = kv.len() as u32;

        for _ in 0..self.max_retries {
            // Read the primary buckets to find the slot (or a free one).
            let scan = layout.scan(&self.dm, self.node_of(cols[0]), cols[0], key, fp)?;
            let mut existing: Option<layout::Found> = None;
            for s in &scan.matches {
                let len = s.slot.len_class().max(1) * 64;
                let buf = self.dm.read_vec(
                    GlobalAddr::new(self.node_of(cols[0]), s.slot.offset()),
                    len as usize,
                )?;
                if let Some(v) = Self::decode_kv(&buf, key) {
                    // A tombstone's slot is reused for the CAS, but the key
                    // is logically absent: UPDATE (and DELETE) of it fail.
                    if v.is_empty() && !allow_insert {
                        return Err(FuseeError::NotFound);
                    }
                    existing = Some(*s);
                    break;
                }
            }
            if existing.is_none() && !allow_insert {
                return Err(FuseeError::NotFound);
            }

            // Allocate and write the r KV copies (one doorbell batch).
            let off = self.alloc_slot(&cols, class)?;
            let mut res: Result<()> = Ok(());
            self.dm.batch(|dm| {
                for &c in &cols {
                    if let Err(e) = dm.write(GlobalAddr::new(self.node_of(c), off), &kv) {
                        res = Err(e.into());
                        return;
                    }
                }
            });
            res?;

            let new_slot = Slot8::new(fp, off, class as u64 / 64);
            let (slot_pos, old_slot) = match existing {
                Some(f) => (f.pos, f.slot),
                None => {
                    let Some(pos) = scan.empties.first().copied() else {
                        return Err(FuseeError::IndexFull);
                    };
                    (pos, Slot8::EMPTY)
                }
            };

            // CAS the backups first, then the primary (commit point).
            let mut conflict = false;
            for &c in cols.iter().skip(1) {
                let addr = layout.slot_addr(self.node_of(c), slot_pos);
                let prev = self.dm.cas(addr, old_slot.raw(), new_slot.raw())?;
                if prev != old_slot.raw() {
                    conflict = true;
                    break;
                }
            }
            if conflict {
                self.dm.note_retry();
                continue;
            }
            let paddr = layout.slot_addr(self.node_of(cols[0]), slot_pos);
            let prev = self.dm.cas(paddr, old_slot.raw(), new_slot.raw())?;
            if prev != old_slot.raw() {
                self.dm.note_retry();
                continue;
            }
            // Success: the old KV slot is directly reusable (no parity to
            // maintain — the baseline's reclamation advantage, §2.5).
            if let Some(f) = existing {
                self.free_slots
                    .entry((cols[0], (f.slot.len_class().max(1) * 64) as u32))
                    .or_default()
                    .push(f.slot.offset());
            }
            if self.use_cache {
                self.cache.insert(
                    key.to_vec(),
                    CachedKv {
                        offset: off,
                        len: class,
                    },
                );
            }
            return Ok(());
        }
        Err(FuseeError::RetriesExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Arc<FuseeStore> {
        FuseeStore::launch(FuseeConfig::small())
    }

    #[test]
    fn crud_roundtrip() {
        let s = store();
        let mut c = s.client();
        c.insert(b"k1", b"v1").unwrap();
        assert_eq!(c.search(b"k1").unwrap().as_deref(), Some(&b"v1"[..]));
        c.update(b"k1", b"v2").unwrap();
        assert_eq!(c.search(b"k1").unwrap().as_deref(), Some(&b"v2"[..]));
        assert!(c.delete(b"k1").unwrap());
        // The tombstone record reads as absent.
        assert_eq!(c.search(b"k1").unwrap(), None);
        assert!(!c.delete(b"k1").unwrap(), "second delete is a no-op");
        assert_eq!(c.update(b"k1", b"x"), Err(FuseeError::NotFound));
        // Re-insert over the tombstone.
        c.insert(b"k1", b"v3").unwrap();
        assert_eq!(c.search(b"k1").unwrap().as_deref(), Some(&b"v3"[..]));
    }

    #[test]
    fn update_missing_is_not_found() {
        let s = store();
        let mut c = s.client();
        assert_eq!(c.update(b"nope", b"x"), Err(FuseeError::NotFound));
    }

    #[test]
    fn kv_pairs_are_replicated() {
        let s = store();
        let mut c = s.client();
        c.insert(b"replicated", b"payload").unwrap();
        let cols = s.replica_cols(b"replicated");
        assert_eq!(cols.len(), 3);
        let cached = c.cache.get(&b"replicated"[..]).copied().unwrap();
        let mut copies = Vec::new();
        for &col in &cols {
            let node = s.cluster.node(aceso_rdma::NodeId(col as u16)).unwrap();
            copies.push(
                node.region
                    .read_vec(cached.offset, cached.len as usize)
                    .unwrap(),
            );
        }
        assert_eq!(copies[0], copies[1]);
        assert_eq!(copies[1], copies[2]);
    }

    #[test]
    fn writes_cost_r_cas_ops() {
        let s = store();
        let mut c = s.client();
        c.insert(b"costly", b"v").unwrap();
        let ops = c.dm.take_ops();
        let rec = ops.records.last().unwrap();
        assert_eq!(rec.cas, 3, "r=3 replicas need 3 CAS");
        assert!(rec.verbs >= 3 + 3, "3 KV writes + 3 CAS at least");
    }

    #[test]
    fn cas_count_scales_with_replicas() {
        for r in 1..=3 {
            let s = FuseeStore::launch(FuseeConfig {
                replicas: r,
                ..FuseeConfig::small()
            });
            let mut c = s.client();
            c.insert(b"key", b"v0").unwrap();
            c.dm.take_ops();
            c.update(b"key", b"v1").unwrap();
            let ops = c.dm.take_ops();
            assert_eq!(ops.records[0].cas as usize, r, "replicas={r}");
        }
    }

    #[test]
    fn concurrent_updates_converge_on_primary() {
        let s = store();
        let mut c0 = s.client();
        c0.insert(b"hot", &0u64.to_le_bytes()).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut c = s.client();
                    for i in 0..100u64 {
                        c.update(b"hot", &(t * 1000 + i).to_le_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let v = c0.search(b"hot").unwrap().unwrap();
        let x = u64::from_le_bytes(v.try_into().unwrap());
        assert!(x / 1000 < 4 && x % 1000 < 100);
    }

    #[test]
    fn many_keys_roundtrip() {
        let s = store();
        let mut c = s.client();
        for i in 0..1000u32 {
            let k = format!("fk-{i}");
            c.insert(k.as_bytes(), k.as_bytes()).unwrap();
        }
        for i in (0..1000u32).step_by(37) {
            let k = format!("fk-{i}");
            assert_eq!(
                c.search(k.as_bytes()).unwrap().as_deref(),
                Some(k.as_bytes())
            );
        }
    }

    #[test]
    fn degraded_search_served_by_backup() {
        let s = store();
        let mut c = s.client();
        for i in 0..40u32 {
            let k = format!("deg-{i:03}");
            c.insert(k.as_bytes(), k.as_bytes()).unwrap();
        }
        // Kill one column; keys homed there must still read back, served
        // by a backup replica (cache-cold client to force the full path).
        let victim = s.replica_cols(b"deg-000")[0];
        assert!(s.kill_mn(victim));
        let mut cold = s.client();
        cold.use_cache = false;
        for i in 0..40u32 {
            let k = format!("deg-{i:03}");
            assert_eq!(
                cold.search(k.as_bytes()).unwrap().as_deref(),
                Some(k.as_bytes()),
                "{k} unreadable with col {victim} down"
            );
        }
    }

    #[test]
    fn recover_mn_restores_column_on_fresh_node() {
        let s = store();
        let mut c = s.client();
        for i in 0..200u32 {
            let k = format!("rec-{i:03}");
            c.insert(k.as_bytes(), format!("val-{i}").as_bytes()).unwrap();
        }
        let victim = s.replica_cols(b"rec-000")[0];
        let old_node = s.node_of(victim);
        assert!(s.kill_mn(victim));
        let rep = s.recover_mn(victim).unwrap();
        assert!(rep.blocks > 0 && rep.index_bytes > 0 && rep.net_ms > 0.0);
        assert_ne!(s.node_of(victim), old_node, "directory must repoint");
        // Everything reads back through the recovered column, writes work,
        // and the replicas agree again.
        let mut fresh = s.client();
        for i in 0..200u32 {
            let k = format!("rec-{i:03}");
            assert_eq!(
                fresh.search(k.as_bytes()).unwrap().as_deref(),
                Some(format!("val-{i}").as_bytes()),
                "{k} lost by recovery"
            );
        }
        fresh.update(b"rec-000", b"post-recovery").unwrap();
        assert_eq!(
            fresh.search(b"rec-000").unwrap().as_deref(),
            Some(&b"post-recovery"[..])
        );
        assert!(s.replica_agreement().is_empty());
    }

    #[test]
    fn recover_live_column_is_refused() {
        let s = store();
        assert_eq!(s.recover_mn(0).unwrap_err(), FuseeError::ColumnAlive);
    }

    #[test]
    fn reconcile_repairs_torn_commit() {
        let s = store();
        let mut c = s.client();
        c.insert(b"torn-key", b"committed").unwrap();
        // Simulate a writer that died between the backup CAS and the
        // primary commit point: advance one backup's slot by hand.
        let cols = s.replica_cols(b"torn-key");
        let fp = fingerprint(b"torn-key");
        let dm = s.cluster.client();
        let scan = s
            .layout
            .scan(&dm, s.node_of(cols[0]), cols[0], b"torn-key", fp)
            .unwrap();
        let found = scan.matches[0];
        let backup = s.cluster.node(s.node_of(cols[1])).unwrap();
        let bogus = Slot8::new(fp, found.slot.offset(), found.slot.len_class() + 1);
        backup
            .region
            .store64(found.pos.offset, bogus.raw())
            .unwrap();
        // A writer now wedges on the diverged backup slot…
        let mut w = s.client();
        w.max_retries = 8;
        assert_eq!(
            w.update(b"torn-key", b"stuck"),
            Err(FuseeError::RetriesExhausted)
        );
        // …until reconciliation rolls the backup back to the primary.
        assert!(s.reconcile_replicas().unwrap() > 0);
        w.update(b"torn-key", b"unwedged").unwrap();
        assert_eq!(
            w.search(b"torn-key").unwrap().as_deref(),
            Some(&b"unwedged"[..])
        );
        assert!(s.replica_agreement().is_empty());
    }

    #[test]
    fn replica_agreement_flags_divergence() {
        let s = store();
        let mut c = s.client();
        c.insert(b"agree-key", b"same-everywhere").unwrap();
        assert!(s.replica_agreement().is_empty());
        // Corrupt one KV copy on a backup column.
        let cols = s.replica_cols(b"agree-key");
        let cached = c.cache.get(&b"agree-key"[..]).copied().unwrap();
        let backup = s.cluster.node(s.node_of(cols[1])).unwrap();
        backup.region.write(cached.offset + 10, b"XX").unwrap();
        let v = s.replica_agreement();
        assert!(
            v.iter().any(|m| m.contains("KV copy")),
            "divergent copy not flagged: {v:?}"
        );
    }

    #[test]
    fn memory_usage_reports_replication_overhead() {
        let s = store();
        let mut c = s.client();
        for i in 0..64u32 {
            c.insert(format!("mem-{i:03}").as_bytes(), &[9u8; 100]).unwrap();
        }
        let u = s.memory_usage();
        assert!(u.valid > 64 * 100);
        assert_eq!(u.redundancy, u.valid * 2, "r=3 keeps 2 extra copies");
        assert!(u.allocated > 0);
    }

    #[test]
    fn obsolete_slots_are_reused_directly() {
        let s = store();
        let mut c = s.client();
        c.insert(b"reuse-me!!", b"0123456789").unwrap();
        let before = c.cache.get(&b"reuse-me!!"[..]).copied().unwrap();
        c.update(b"reuse-me!!", b"9876543210").unwrap();
        // The first slot is on the free list; the next same-class write
        // overwrites it in place (no parity to maintain).
        c.insert(b"newcomer!!", b"aaaaaaaaaa").unwrap();
        let after = c.cache.get(&b"newcomer!!"[..]).copied().unwrap();
        assert_eq!(before.offset, after.offset);
    }
}
