//! Behavioral tests of the FUSEE baseline's cost knobs.

use aceso_fusee::{FuseeConfig, FuseeStore};

/// Wide (16 B) slots double bucket-read bytes without changing semantics —
/// the `+SLOT` factor-analysis step.
#[test]
fn wide_slots_cost_more_bytes_same_semantics() {
    let mut read_bytes = [0u64; 2];
    for (i, wide) in [false, true].into_iter().enumerate() {
        let store = FuseeStore::launch(FuseeConfig {
            wide_slots: wide,
            ..FuseeConfig::small()
        });
        let mut c = store.client();
        c.insert(b"wkey", b"wvalue").unwrap();
        c.dm.reset_stats();
        // A cache-invalidated search scans the buckets.
        c.use_cache = false;
        assert_eq!(c.search(b"wkey").unwrap().as_deref(), Some(&b"wvalue"[..]));
        read_bytes[i] = c.dm.counters().snapshot().read_bytes;
    }
    assert!(
        read_bytes[1] > read_bytes[0],
        "wide slots must charge more bucket bytes: {read_bytes:?}"
    );
}

/// The value cache returns stale-free results after foreign updates.
#[test]
fn value_cache_sees_foreign_updates() {
    let store = FuseeStore::launch(FuseeConfig::small());
    let mut a = store.client();
    let mut b = store.client();
    a.insert(b"fk", b"v1").unwrap();
    assert_eq!(b.search(b"fk").unwrap().as_deref(), Some(&b"v1"[..]));
    a.update(b"fk", b"v2").unwrap();
    assert_eq!(
        b.search(b"fk").unwrap().as_deref(),
        Some(&b"v2"[..]),
        "b's cached address is stale; validation must chase the new slot"
    );
}

/// r=1 degenerates to no redundancy but still works.
#[test]
fn single_replica_mode_works() {
    let store = FuseeStore::launch(FuseeConfig {
        replicas: 1,
        ..FuseeConfig::small()
    });
    let mut c = store.client();
    for i in 0..200u32 {
        let k = format!("r1-{i}");
        c.insert(k.as_bytes(), k.as_bytes()).unwrap();
    }
    for i in (0..200u32).step_by(17) {
        let k = format!("r1-{i}");
        assert_eq!(
            c.search(k.as_bytes()).unwrap().as_deref(),
            Some(k.as_bytes())
        );
    }
}
