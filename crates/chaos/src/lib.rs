//! Crash-matrix fault-injection harness for the Aceso reproduction.
//!
//! The harness enumerates a matrix of crash scenarios — (operation ×
//! injection site × MN-kill timing × reclamation state) — and runs each
//! [`cell::Cell`] against a live [`aceso_core::AcesoStore`]: preload,
//! arm the fault ([`aceso_rdma::FaultPlan`] for verb-level faults,
//! [`aceso_core::client::CrashPoint`] for client-protocol crashes), run
//! the operation, drive tiered recovery, then check the invariants the
//! paper's fault-tolerance argument rests on (oracle agreement, meta-lock
//! liveness, Index-Version monotonicity, parity-stripe consistency — see
//! [`runner`]).
//!
//! The `chaos` binary exposes these modes:
//!
//! * `chaos sweep [--ci]` — deterministic matrix sweep with a coverage
//!   report and minimized counterexamples; `--ci` is the fixed-seed
//!   sub-minute profile wired into tier-1 verification.
//! * `chaos soak --seconds N` — seeded random schedules until a deadline.
//! * `chaos rt` — the coroutine-runtime axis: kill a memory node (or
//!   crash one client) while several resumable ops are suspended mid
//!   round-trip on one [`aceso_rt::Executor`] thread (see [`rt_axis`]).
//! * `chaos elastic [--ci]` — the kill-mid-rebalance axis: an elastic
//!   migration re-homes a column under live traffic and the joining MN,
//!   the draining MN, or a CN dies at every migrator step boundary (see
//!   [`elastic_axis`]).
//! * `chaos cache [--ci]` — the stale-index-cache axis: the index column
//!   of a cached key (or the client itself) dies *between cache fill and
//!   use*, recovery re-homes the data, and a hot-cache client that slept
//!   through the kill must read nothing stale afterwards (see
//!   [`cache_axis`]). `chaos sweep --ci` appends this matrix.
//! * `chaos backends [--ci]` — the per-engine axis: the same
//!   (op × fault × skip) crash script runs against every
//!   [`aceso_core::FtEngine`] implementation — Aceso, FUSEE-style full
//!   replication, and the SWARM-style 1-RTT engine — through the seam's
//!   strategy-blind invariants (see [`backends_axis`]).
//! * `chaos analyze [--ci]` — reruns the sweep schedules, a
//!   multi-client YCSB-A interleaving, the runtime-axis cells, and
//!   slices of the elastic, backends, and cache axes under the
//!   [`aceso_san`] happens-before race detector, then runs the
//!   detector's mutation self-tests and the static protocol lints (see
//!   [`analyze`]).
//! * `chaos explore [--ci]` — the bounded model-checking axis: the
//!   [`aceso_model`] explorer enumerates every interleaving of 2–3
//!   coroutine clients to a depth bound, crashes every scheduling point,
//!   and judges each terminal state with the matrix invariants plus a
//!   linearizability oracle; mutation self-tests prove the checker alive
//!   (see [`explore`]).
//!
//! Every schedule derives from one `u64` seed; the same seed replays the
//! identical schedule.

pub mod analyze;
pub mod backends_axis;
pub mod cache_axis;
pub mod cell;
pub mod elastic_axis;
pub mod explore;
pub mod rt_axis;
pub mod runner;
pub mod sweep;

pub use analyze::{
    AnalyzeReport, BackendsTrace, CacheTrace, CellTrace, ElasticTrace, RtTrace, YcsbTrace,
};
pub use backends_axis::{
    backends_matrix, run_backends_cell, run_backends_cell_with_sink, run_backends_matrix,
    BackendCell, BackendFault, BackendOp, BackendOutcome, BackendsReportCli,
};
pub use cache_axis::{
    cache_matrix, run_cache_cell, run_cache_cell_with_sink, run_cache_matrix, CacheCell,
    CacheKill, CacheOp, CacheOutcome, CacheReportCli,
};
pub use explore::{run_explore, wgl_selftests, ExploreCliReport};
pub use elastic_axis::{
    elastic_matrix, run_elastic_cell, run_elastic_cell_with_sink, run_elastic_matrix,
    ElasticBoundary, ElasticCell, ElasticKill, ElasticOutcome, ElasticReportCli,
};
pub use rt_axis::{run_rt_cell, run_rt_cell_with_sink, RtKill, RtOutcome, RT_TASKS};
pub use cell::{
    ci_matrix, full_matrix, injection_sites, kill_timings, Cell, InjectionSite, KillTiming,
    OpType, ReclaimState,
};
pub use runner::{chaos_config, run_cell, run_cell_with_sink, CellOutcome};
pub use sweep::{soak, sweep, Counterexample, SweepReport};

/// Default master seed (sweep and soak) so bare CLI invocations are
/// reproducible without any flags.
pub const DEFAULT_SEED: u64 = 0xACE50;

/// Cell budget of the `--ci` profile: large enough to touch every axis
/// value many times, small enough to finish within the tier-1 minute.
pub const CI_CELLS: usize = 120;
