//! `chaos explore` — the bounded model-checking axis.
//!
//! Drives [`aceso_model`] end to end and renders a CI-stable report:
//!
//! 1. **Step-table drift** — every `.settle().await` in the async client
//!    must be inventoried in [`aceso_model::STEP_TABLE`]; an explored
//!    step space that silently lags the code is worthless.
//! 2. **Linearizability-checker self-tests** — known-good history
//!    accepted, stale read after an acknowledged update rejected, torn
//!    history rejected. A dead oracle fails the run.
//! 3. **Baseline exploration** — every interleaving (to the depth bound)
//!    and every crash of every scheduling point across the baseline
//!    scenarios must satisfy every oracle: zero violations.
//! 4. **Mutation self-tests** — each protocol mutation must make the
//!    explorer find a violation, which is minimized and printed step by
//!    step; a mutation the explorer shrugs off means the checker cannot
//!    see the very bug class it exists for.
//!
//! The report carries no wall-clock numbers, so two runs with the same
//! seed diff byte-identically.

use aceso_model::wgl::{check_key, KeyOp, KeyOpKind};
use aceso_model::{baseline_scenarios, explore, mutation_scenarios, ScenarioReport};

/// Outcome of the full `chaos explore` run.
#[derive(Clone, Debug, Default)]
pub struct ExploreCliReport {
    /// Seed the explorations derived from.
    pub seed: u64,
    /// Step-table drift messages (must be empty).
    pub drift: Vec<String>,
    /// Linearizability self-test failures (must be empty).
    pub wgl_failures: Vec<String>,
    /// Baseline scenario reports (violations must all be `None`).
    pub baseline: Vec<ScenarioReport>,
    /// Mutation scenario reports (violations must all be `Some`).
    pub mutations: Vec<ScenarioReport>,
}

impl ExploreCliReport {
    /// `true` when the whole stack held.
    pub fn clean(&self) -> bool {
        self.drift.is_empty()
            && self.wgl_failures.is_empty()
            && self
                .baseline
                .iter()
                .all(|r| r.violation.is_none() && !r.stats.budget_exhausted)
            && self.mutations.iter().all(|r| r.violation.is_some())
    }

    /// Renders the deterministic report body.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let push = |s: &mut String, line: String| {
            s.push_str(&line);
            s.push('\n');
        };
        push(&mut s, "== step table ==".to_string());
        if self.drift.is_empty() {
            push(
                &mut s,
                format!(
                    "ok: all {} suspension-point functions match the source",
                    aceso_model::STEP_TABLE.len()
                ),
            );
        }
        for d in &self.drift {
            push(&mut s, format!("DRIFT: {d}"));
        }
        push(&mut s, "== linearizability self-tests ==".to_string());
        if self.wgl_failures.is_empty() {
            push(&mut s, "ok: accepts good, rejects stale and torn".to_string());
        }
        for f in &self.wgl_failures {
            push(&mut s, format!("DEAD ORACLE: {f}"));
        }
        push(&mut s, "== baseline exploration ==".to_string());
        for r in &self.baseline {
            render_scenario(&mut s, r, false);
        }
        push(&mut s, "== mutation self-tests ==".to_string());
        for r in &self.mutations {
            render_scenario(&mut s, r, true);
        }
        let verdict = if self.clean() { "CLEAN" } else { "FAILED" };
        push(&mut s, format!("explore: {verdict} (seed {:#x})", self.seed));
        s
    }
}

fn render_scenario(s: &mut String, r: &ScenarioReport, expect_violation: bool) {
    let stats = &r.stats;
    let verdict = match (&r.violation, expect_violation, stats.budget_exhausted) {
        (_, _, true) if r.violation.is_none() => "BUDGET-EXHAUSTED",
        (None, false, _) => "ok",
        (Some(_), true, _) => "caught",
        (Some(_), false, _) => "VIOLATION",
        (None, true, _) => "MISSED",
    };
    s.push_str(&format!(
        "{verdict:<9} {:<22} states={} crash-leaves={} pruned={} executions={} max-depth={}\n",
        r.name, stats.nodes, stats.crash_leaves, stats.pruned, stats.executions, stats.max_depth
    ));
    if let Some(v) = &r.violation {
        s.push_str(&format!(
            "  minimized counterexample ({} scheduling choices):\n",
            v.prefix.len()
        ));
        for line in &v.schedule {
            s.push_str(&format!("    {line}\n"));
        }
        for m in &v.messages {
            s.push_str(&format!("    | {m}\n"));
        }
    }
}

/// Runs the linearizability-checker self-tests (the satellite's three
/// cases). Returns failure messages; empty = the oracle is alive.
pub fn wgl_selftests() -> Vec<String> {
    let mut failures = Vec::new();
    let w = |v: &[u8], inv: u64, resp: Option<u64>| KeyOp {
        kind: KeyOpKind::Write(Some(v.to_vec())),
        inv,
        resp,
        who: "A".to_string(),
    };
    let r = |v: Option<&[u8]>, inv: u64, resp: u64| KeyOp {
        kind: KeyOpKind::Read(v.map(<[u8]>::to_vec)),
        inv,
        resp: Some(resp),
        who: "B".to_string(),
    };
    // 1. Known-good: overlapping read may land either side of the write.
    let good = [
        w(b"b", 0, Some(3)),
        r(Some(b"a"), 1, 2),
        r(Some(b"b"), 4, 5),
    ];
    if !check_key(Some(b"a"), &good) {
        failures.push("rejected a known-good concurrent history".to_string());
    }
    // 2. Stale read strictly after an acknowledged update.
    let stale = [w(b"b", 0, Some(1)), r(Some(b"a"), 2, 3)];
    if check_key(Some(b"a"), &stale) {
        failures.push("accepted a stale read after an acknowledged update".to_string());
    }
    // 3. Torn multi-op history: one write observed, then un-observed.
    let torn = [
        w(b"b", 0, Some(5)),
        r(Some(b"b"), 1, 2),
        r(Some(b"a"), 3, 4),
    ];
    if check_key(Some(b"a"), &torn) {
        failures.push("accepted a torn (observed-then-unobserved) history".to_string());
    }
    failures
}

/// Runs the full explore stack. `progress` is called once per finished
/// scenario.
pub fn run_explore(seed: u64, mut progress: impl FnMut(&ScenarioReport)) -> ExploreCliReport {
    let mut report = ExploreCliReport {
        seed,
        drift: aceso_model::check_step_table(),
        wgl_failures: wgl_selftests(),
        ..ExploreCliReport::default()
    };
    for s in baseline_scenarios() {
        let r = explore(&s, seed);
        progress(&r);
        report.baseline.push(r);
    }
    for s in mutation_scenarios() {
        let r = explore(&s, seed);
        progress(&r);
        report.mutations.push(r);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The oracle self-tests hold.
    #[test]
    fn wgl_selftests_pass() {
        assert_eq!(wgl_selftests(), Vec::<String>::new());
    }

    /// The step table matches the source right now.
    #[test]
    fn no_step_table_drift() {
        assert_eq!(aceso_model::check_step_table(), Vec::<String>::new());
    }
}
