//! `chaos` — crash-matrix sweeps and soak runs for the Aceso store.
//!
//! ```text
//! chaos sweep   [--ci] [--seed N] [--limit N] [--verbose]
//! chaos soak    [--seed N] [--seconds N] [--verbose]
//! chaos rt      [--seed N]
//! chaos elastic [--ci] [--seed N] [--verbose]
//! chaos cache   [--ci] [--seed N] [--verbose]
//! chaos backends [--ci] [--seed N] [--verbose]
//! chaos analyze [--ci] [--seed N] [--limit N] [--verbose]
//! chaos explore [--ci] [--seed N] [--verbose]
//! ```
//!
//! Exits 0 when every explored cell held its invariants (and, for
//! `analyze`, the race detector stayed silent, every mutation self-test
//! fired, and the protocol lints passed; for `explore`, every baseline
//! interleaving+crash was clean and every model mutation was caught), 1
//! on any violation, 2 on usage errors.

use aceso_chaos::{
    analyze, ci_matrix, full_matrix, run_backends_matrix, run_cache_matrix, run_cell,
    run_elastic_matrix, run_explore, run_rt_cell, soak, sweep, Cell, CellOutcome, CellTrace,
    RtKill, SweepReport, CI_CELLS, DEFAULT_SEED,
};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: chaos sweep   [--ci] [--seed N] [--limit N] [--verbose]\n\
                chaos soak    [--seed N] [--seconds N] [--verbose]\n\
                chaos rt      [--seed N]\n\
                chaos elastic [--ci] [--seed N] [--verbose]\n\
                chaos cache   [--ci] [--seed N] [--verbose]\n\
                chaos backends [--ci] [--seed N] [--verbose]\n\
                chaos analyze [--ci] [--seed N] [--limit N] [--verbose]\n\
                chaos explore [--ci] [--seed N] [--verbose]\n\
                chaos cell <op/site/kill/reclaim> [--seed N]\n\
         \n\
         sweep    run the crash matrix (full 600 cells; --ci = deterministic\n\
         \x20        {CI_CELLS}-cell profile plus the cache axis) and print\n\
         \x20        a coverage report\n\
         soak     run seeded random cells until --seconds elapse\n\
         rt       kill a memory node / crash a client while several\n\
         \x20        coroutine ops sit suspended on one executor thread\n\
         elastic  kill the joining MN, the draining MN, or a CN at every\n\
         \x20        migrator step boundary of an online column migration\n\
         \x20        (15 cells; --ci is the same deterministic profile)\n\
         cache    kill the index column of a cached key (or crash the\n\
         \x20        hot-cache client) between cache fill and use, recover,\n\
         \x20        and demand no stale read through the surviving cache\n\
         \x20        (5 cells; --ci is the same deterministic profile)\n\
         backends run the shared (op x fault x skip) crash script against\n\
         \x20        every FtEngine — aceso, fusee, swarm — through the\n\
         \x20        seam's strategy-blind invariants (54 cells; --ci is\n\
         \x20        the same deterministic profile)\n\
         analyze  rerun the sweep schedules, a 4-client YCSB-A trace, the\n\
         \x20        rt cells, and elastic/backends/cache slices under the\n\
         \x20        happens-before race detector, plus the detector\n\
         \x20        self-tests and lints\n\
         explore  bounded model checking: enumerate every interleaving of\n\
         \x20        2-3 coroutine clients to a depth bound, crash every\n\
         \x20        scheduling point, and judge linearizability; mutation\n\
         \x20        self-tests must each yield a minimized counterexample\n\
         cell     replay one cell by id (as printed in counterexamples)\n\
         --seed   master seed (default {DEFAULT_SEED:#x}); same seed, same schedule"
    );
    std::process::exit(2);
}

fn parse_u64(args: &mut std::slice::Iter<'_, String>, flag: &str) -> u64 {
    let Some(v) = args.next() else {
        eprintln!("chaos: {flag} needs a value");
        usage();
    };
    // Accept both decimal and 0x-prefixed seeds (the report prints hex).
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("chaos: bad value for {flag}: {v}");
        usage();
    })
}

fn progress(verbose: bool) -> impl FnMut(&CellOutcome) {
    let mut ran = 0usize;
    move |o: &CellOutcome| {
        ran += 1;
        if verbose {
            let status = if o.ok() { "ok" } else { "VIOLATION" };
            println!(
                "[{ran:>4}] {status:<9} {} ({} ms, fired={}, killed={})",
                o.cell, o.duration_ms, o.injection_fired, o.mn_killed
            );
        } else if !o.ok() {
            println!("[{ran:>4}] VIOLATION {}", o.cell);
        }
    }
}

fn cache_progress(verbose: bool) -> impl FnMut(&aceso_chaos::CacheOutcome) {
    let mut ran = 0usize;
    move |o: &aceso_chaos::CacheOutcome| {
        ran += 1;
        if verbose || !o.ok() {
            let status = if o.ok() { "ok" } else { "VIOLATION" };
            println!(
                "[{ran:>4}] {status:<9} {} (col {}, {} ms, {} warm entries, interrupted={})",
                o.cell, o.col, o.duration_ms, o.warm_entries, o.interrupted
            );
            for v in &o.violations {
                println!("    {v}");
            }
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = argv.first().map(String::as_str) else {
        usage();
    };
    let mut seed = DEFAULT_SEED;
    let mut limit: Option<usize> = None;
    let mut seconds = 60u64;
    let mut ci = false;
    let mut verbose = false;
    let mut cell_id: Option<String> = None;
    let mut it = argv[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            id if mode == "cell" && cell_id.is_none() && !id.starts_with('-') => {
                cell_id = Some(id.to_string());
            }
            "--ci" => ci = true,
            "--seed" => seed = parse_u64(&mut it, "--seed"),
            "--limit" => limit = Some(parse_u64(&mut it, "--limit") as usize),
            "--seconds" => seconds = parse_u64(&mut it, "--seconds"),
            "--verbose" | "-v" => verbose = true,
            other => {
                eprintln!("chaos: unknown flag {other}");
                usage();
            }
        }
    }

    let report = match mode {
        "sweep" => {
            let mut cells = if ci {
                ci_matrix(seed, limit.unwrap_or(CI_CELLS))
            } else {
                full_matrix()
            };
            if let Some(l) = limit {
                cells.truncate(l);
            }
            println!("chaos sweep: {} cells, seed {seed:#x}", cells.len());
            let report = sweep(&cells, seed, progress(verbose));
            if !ci {
                report
            } else {
                // The CI profile appends the stale-index-cache axis: its
                // five fill-kill-recover-use cells ride the same tier-1
                // invocation as the crash matrix.
                print!("{}", report.render());
                let cache = run_cache_matrix(seed, cache_progress(verbose));
                print!("{}", cache.render());
                std::process::exit(if report.clean() && cache.clean() { 0 } else { 1 });
            }
        }
        "soak" => {
            println!("chaos soak: {seconds}s, seed {seed:#x}");
            soak(seed, Duration::from_secs(seconds), progress(verbose))
        }
        "analyze" => {
            let mut cells = if ci {
                ci_matrix(seed, limit.unwrap_or(CI_CELLS))
            } else {
                full_matrix()
            };
            if let Some(l) = limit {
                cells.truncate(l);
            }
            println!(
                "chaos analyze: {} cells + 4-client YCSB-A, seed {seed:#x}",
                cells.len()
            );
            let mut ran = 0usize;
            let report = analyze::analyze(&cells, seed, |t: &CellTrace| {
                ran += 1;
                if verbose {
                    let status = if t.ok() { "ok" } else { "FINDING" };
                    println!("[{ran:>4}] {status:<9} {} ({} events)", t.cell, t.events);
                } else if !t.ok() {
                    println!("[{ran:>4}] FINDING {}", t.cell);
                }
            });
            print!("{}", report.render());
            std::process::exit(if report.clean() { 0 } else { 1 });
        }
        "elastic" => {
            // The elastic axis is already a fixed 15-cell deterministic
            // matrix; --ci selects the identical profile (accepted so the
            // tier-1 command line reads uniformly across modes).
            let _ = ci;
            println!("chaos elastic: 15 kill-mid-rebalance cells, seed {seed:#x}");
            let mut ran = 0usize;
            let report = run_elastic_matrix(seed, |o| {
                ran += 1;
                if verbose || !o.ok() {
                    let status = if o.ok() { "ok" } else { "VIOLATION" };
                    println!(
                        "[{ran:>4}] {status:<9} {} (col {}, {} ms, {} ops committed, verb-kill={}, aborted={})",
                        o.cell, o.col, o.duration_ms, o.committed_ops, o.kill_fired_at_verb, o.aborted
                    );
                    for v in &o.violations {
                        println!("    {v}");
                    }
                }
            });
            print!("{}", report.render());
            std::process::exit(if report.clean() { 0 } else { 1 });
        }
        "cache" => {
            // The cache axis is a fixed 5-cell deterministic matrix; --ci
            // selects the identical profile (accepted so the tier-1
            // command line reads uniformly across modes).
            let _ = ci;
            println!("chaos cache: 5 stale-cache cells, seed {seed:#x}");
            let report = run_cache_matrix(seed, cache_progress(verbose));
            print!("{}", report.render());
            std::process::exit(if report.clean() { 0 } else { 1 });
        }
        "backends" => {
            // The backends axis is a fixed 54-cell deterministic matrix;
            // --ci selects the identical profile (accepted so the tier-1
            // command line reads uniformly across modes).
            let _ = ci;
            println!("chaos backends: 54 per-engine crash cells, seed {seed:#x}");
            let mut ran = 0usize;
            let report = run_backends_matrix(seed, |o| {
                ran += 1;
                if verbose || !o.ok() {
                    let status = if o.ok() { "ok" } else { "VIOLATION" };
                    println!(
                        "[{ran:>4}] {status:<9} {} ({} ms, fired={}, written-off={}, recovered-cols={})",
                        o.cell, o.duration_ms, o.fired_at_verb, o.written_off, o.recovered_cols
                    );
                    for v in &o.violations {
                        println!("    {v}");
                    }
                }
            });
            print!("{}", report.render());
            std::process::exit(if report.clean() { 0 } else { 1 });
        }
        "explore" => {
            // The model scenarios are a fixed deterministic set; --ci
            // selects the identical profile (accepted so the tier-1
            // command line reads uniformly across modes).
            let _ = ci;
            println!("chaos explore: bounded model checking, seed {seed:#x}");
            let mut ran = 0usize;
            let report = run_explore(seed, |r| {
                ran += 1;
                if verbose {
                    println!(
                        "[{ran:>4}] {:<22} states={} executions={}",
                        r.name, r.stats.nodes, r.stats.executions
                    );
                }
            });
            print!("{}", report.render());
            std::process::exit(if report.clean() { 0 } else { 1 });
        }
        "rt" => {
            println!("chaos rt: {} tasks on one executor thread, seed {seed:#x}", aceso_chaos::RT_TASKS);
            let mut failed = false;
            for kill in [RtKill::Mn, RtKill::Cn] {
                let out = run_rt_cell(kill, seed);
                let status = if out.ok() { "ok" } else { "VIOLATION" };
                println!(
                    "{status:<9} {} ({} ms, {} in flight at fault, {} tasks crashed)",
                    kill.label(),
                    out.duration_ms,
                    out.inflight_at_fault,
                    out.crashed_tasks
                );
                for v in &out.violations {
                    println!("    {v}");
                }
                failed |= !out.ok();
            }
            std::process::exit(if failed { 1 } else { 0 });
        }
        "cell" => {
            let Some(cell) = cell_id.as_deref().and_then(Cell::parse) else {
                eprintln!("chaos: cell needs a valid op/site/kill/reclaim id");
                usage();
            };
            // The seed is used verbatim (not drawn from a master stream) so
            // a counterexample's printed cell seed replays exactly.
            println!("chaos cell: {cell}, seed {seed:#x}");
            let out = run_cell(&cell, seed);
            progress(true)(&out);
            SweepReport {
                seed,
                outcomes: vec![out],
                counterexamples: Vec::new(),
            }
        }
        _ => usage(),
    };

    print!("{}", report.render());
    std::process::exit(if report.clean() { 0 } else { 1 });
}
