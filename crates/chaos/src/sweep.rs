//! Matrix sweeps, seeded soak schedules, counterexample minimization,
//! and the coverage report.

use crate::cell::{full_matrix, Cell, InjectionSite, KillTiming, ReclaimState};
use crate::runner::{run_cell, CellOutcome, INVARIANT_CLASSES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A minimized counterexample: the original failing cell, the smallest
/// still-failing simplification of it, and that simplification's
/// violations.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The cell the sweep caught.
    pub original: Cell,
    /// The simplest variant that still violates an invariant.
    pub minimized: Cell,
    /// The minimized variant's violations.
    pub violations: Vec<String>,
    /// The seed reproducing both.
    pub seed: u64,
}

/// Everything a sweep or soak produced.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The master seed the schedule derived from.
    pub seed: u64,
    /// Per-cell outcomes, in execution order.
    pub outcomes: Vec<CellOutcome>,
    /// Minimized counterexamples for the first few violating cells.
    pub counterexamples: Vec<Counterexample>,
}

impl SweepReport {
    /// Number of cells with at least one violation.
    pub fn violating_cells(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.ok()).count()
    }

    /// `true` when every cell passed.
    pub fn clean(&self) -> bool {
        self.violating_cells() == 0
    }

    /// Renders the coverage report: per-axis explored-cell counts, how
    /// often armed faults actually fired, violations, and minimized
    /// counterexamples.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let total = self.outcomes.len();
        let fired = self.outcomes.iter().filter(|o| o.injection_fired).count();
        let killed = self.outcomes.iter().filter(|o| o.mn_killed).count();
        let crashed = self.outcomes.iter().filter(|o| o.client_crashed).count();
        let ms: u128 = self.outcomes.iter().map(|o| o.duration_ms).sum();
        s.push_str(&format!(
            "chaos report: {total} cells, seed {:#x}, {:.1}s\n",
            self.seed,
            ms as f64 / 1000.0
        ));
        s.push_str(&format!(
            "  injections fired: {fired}   MNs killed: {killed}   clients crashed: {crashed}\n"
        ));

        let mut axis = |title: &str, key: &dyn Fn(&CellOutcome) -> String| {
            let mut counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
            for o in &self.outcomes {
                let e = counts.entry(key(o)).or_default();
                e.0 += 1;
                if !o.ok() {
                    e.1 += 1;
                }
            }
            s.push_str(&format!("  coverage by {title}:\n"));
            for (k, (run, bad)) in counts {
                if bad == 0 {
                    s.push_str(&format!("    {k:<24} {run:>4} cells\n"));
                } else {
                    s.push_str(&format!("    {k:<24} {run:>4} cells  {bad} VIOLATING\n"));
                }
            }
        };
        axis("operation", &|o| o.cell.op.to_string());
        axis("injection site", &|o| o.cell.site.to_string());
        axis("kill timing", &|o| o.cell.kill.to_string());
        axis("reclaim state", &|o| o.cell.reclaim.to_string());

        let sum = |f: &dyn Fn(&CellOutcome) -> f64| -> f64 { self.outcomes.iter().map(f).sum() };
        s.push_str(&format!(
            "  phase wall-time: setup {:.1}s  ckpt {:.1}s  op {:.1}s  recovery {:.1}s\n",
            sum(&|o| o.phases.setup_ms) / 1e3,
            sum(&|o| o.phases.ckpt_ms) / 1e3,
            sum(&|o| o.phases.op_ms) / 1e3,
            sum(&|o| o.phases.recovery_ms) / 1e3,
        ));
        s.push_str("  invariant check wall-time:\n");
        for (i, name) in INVARIANT_CLASSES.iter().enumerate() {
            s.push_str(&format!(
                "    {name:<24} {:>8.1} ms\n",
                sum(&|o| o.phases.invariants_ms[i])
            ));
        }

        let bad = self.violating_cells();
        if bad == 0 {
            s.push_str("  all invariants held in every explored cell\n");
        } else {
            s.push_str(&format!("  INVARIANT VIOLATIONS in {bad} cells:\n"));
            for o in self.outcomes.iter().filter(|o| !o.ok()) {
                s.push_str(&format!("    cell {} (seed {:#x}):\n", o.cell, o.seed));
                for v in &o.violations {
                    s.push_str(&format!("      - {v}\n"));
                }
            }
            for cx in &self.counterexamples {
                s.push_str(&format!(
                    "  minimized counterexample: {} (from {}, seed {:#x}):\n",
                    cx.minimized, cx.original, cx.seed
                ));
                for v in &cx.violations {
                    s.push_str(&format!("      - {v}\n"));
                }
            }
        }
        s
    }
}

/// Per-cell seeds are drawn from one master stream so the whole schedule
/// replays from a single number. Shared with [`crate::analyze`] so
/// `analyze` traces the very same schedules `sweep` runs.
pub(crate) fn cell_seeds(seed: u64, count: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.next_u64()).collect()
}

/// Runs `cells` in order, each with a seed derived from `seed`.
/// `progress` is called after every cell (CLI verbosity hook).
pub fn sweep(cells: &[Cell], seed: u64, mut progress: impl FnMut(&CellOutcome)) -> SweepReport {
    let seeds = cell_seeds(seed, cells.len());
    let mut outcomes = Vec::with_capacity(cells.len());
    for (cell, cell_seed) in cells.iter().zip(seeds) {
        let out = run_cell(cell, cell_seed);
        progress(&out);
        outcomes.push(out);
    }
    let counterexamples = minimize_failures(&outcomes);
    SweepReport {
        seed,
        outcomes,
        counterexamples,
    }
}

/// Runs seeded random cells from the full matrix until `duration` elapses
/// (at least one cell always runs).
pub fn soak(
    seed: u64,
    duration: Duration,
    mut progress: impl FnMut(&CellOutcome),
) -> SweepReport {
    let matrix = full_matrix();
    let mut rng = StdRng::seed_from_u64(seed);
    let deadline = Instant::now() + duration;
    let mut outcomes = Vec::new();
    loop {
        let cell = matrix[rng.gen_range(0..matrix.len())];
        let cell_seed = rng.next_u64();
        let out = run_cell(&cell, cell_seed);
        progress(&out);
        outcomes.push(out);
        if Instant::now() >= deadline {
            break;
        }
    }
    let counterexamples = minimize_failures(&outcomes);
    SweepReport {
        seed,
        outcomes,
        counterexamples,
    }
}

/// Greedily simplifies the first few violating cells: drop the ageing,
/// then the injection, then the kill — keeping each simplification only
/// if the cell still fails. The result is the smallest schedule a
/// developer has to reason about.
fn minimize_failures(outcomes: &[CellOutcome]) -> Vec<Counterexample> {
    const MAX_MINIMIZED: usize = 3;
    let mut cxs = Vec::new();
    for o in outcomes.iter().filter(|o| !o.ok()).take(MAX_MINIMIZED) {
        let mut current = o.cell;
        let mut violations = o.violations.clone();
        loop {
            let candidates = [
                Cell {
                    reclaim: ReclaimState::Fresh,
                    ..current
                },
                Cell {
                    site: InjectionSite::None,
                    ..current
                },
                Cell {
                    kill: KillTiming::None,
                    ..current
                },
            ];
            let mut progressed = false;
            for cand in candidates {
                if cand == current {
                    continue;
                }
                let rerun = run_cell(&cand, o.seed);
                if !rerun.ok() {
                    current = cand;
                    violations = rerun.violations;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        cxs.push(Counterexample {
            original: o.cell,
            minimized: current,
            violations,
            seed: o.seed,
        });
    }
    cxs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seeds_are_stable() {
        assert_eq!(cell_seeds(5, 4), cell_seeds(5, 4));
        assert_ne!(cell_seeds(5, 4), cell_seeds(6, 4));
    }
}
