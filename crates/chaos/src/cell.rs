//! The crash-matrix vocabulary: one [`Cell`] per combination of
//! (operation × injection site × MN-kill timing × reclamation state).
//!
//! The injection-site axis shares its vocabulary with the rest of the
//! workspace instead of inventing a parallel one: client-protocol sites
//! are [`aceso_core::client::CrashPoint`] and fabric sites are
//! [`aceso_rdma::VerbKind`], so a counterexample printed by the harness
//! names the exact hook that fired in the production crates.

use aceso_core::client::CrashPoint;
use aceso_rdma::VerbKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The store operation a cell injects into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpType {
    /// INSERT of a fresh key.
    Insert,
    /// UPDATE of a preloaded key.
    Update,
    /// DELETE of a preloaded key.
    Delete,
    /// SEARCH of a preloaded key (read-only: no ambiguity window).
    Search,
    /// SEARCH of a key planted with an earlier colliding-fingerprint twin
    /// in the same bucket, run cache-cold, with the kill axis aimed at the
    /// column holding the *twin's* KV block: the candidate scan must step
    /// past the twin (a collision, §3.4.1) instead of misreading it as a
    /// tombstone when its block is degraded or unreachable.
    SearchCollide,
}

impl OpType {
    /// All operations, in protocol order.
    pub const ALL: [OpType; 5] = [
        OpType::Insert,
        OpType::Update,
        OpType::Delete,
        OpType::Search,
        OpType::SearchCollide,
    ];
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpType::Insert => "insert",
            OpType::Update => "update",
            OpType::Delete => "delete",
            OpType::Search => "search",
            OpType::SearchCollide => "search-collide",
        })
    }
}

/// Where the fault is injected, if anywhere.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InjectionSite {
    /// No injection: the cell exercises the kill/reclaim axes alone.
    None,
    /// The client aborts at a protocol step ([`CrashPoint`] hook).
    Client(CrashPoint),
    /// The `skip`-th-plus-one verb of this class fails with
    /// [`aceso_rdma::RdmaError::Injected`], crashing the client mid-verb.
    Verb {
        /// Verb class to fail.
        kind: VerbKind,
        /// Matching verbs let through before the failure.
        skip: u64,
    },
}

impl fmt::Display for InjectionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectionSite::None => f.write_str("none"),
            InjectionSite::Client(cp) => write!(f, "client-{cp}"),
            InjectionSite::Verb { kind, skip } => write!(f, "verb-{kind}-{skip}"),
        }
    }
}

/// The injection-site axis: no-fault, every client protocol step, and a
/// spread of verb-level failures (first and a later occurrence of each
/// verb class the client issues; FAA is server-side only, so it has no
/// client cell).
pub fn injection_sites() -> Vec<InjectionSite> {
    let mut sites = vec![InjectionSite::None];
    sites.extend(CrashPoint::ALL.map(InjectionSite::Client));
    for (kind, skip) in [
        (VerbKind::Read, 0),
        (VerbKind::Read, 2),
        (VerbKind::Write, 0),
        (VerbKind::Write, 1),
        (VerbKind::Cas, 0),
        (VerbKind::Rpc, 0),
    ] {
        sites.push(InjectionSite::Verb { kind, skip });
    }
    sites
}

/// When (and whether) the key's home MN is fail-stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KillTiming {
    /// The MN stays alive.
    None,
    /// Kill before the op, run full tiered recovery, then op against the
    /// replacement.
    BeforeOp,
    /// Kill before the op, recover the Index tier only, run the op
    /// *degraded* (old blocks still lost), complete recovery afterwards.
    BeforeOpDegraded,
    /// Kill after the `skip`-th-plus-one verb the op sends to the home
    /// node ([`aceso_rdma::FaultAction::KillNode`]), recover afterwards.
    AtVerb {
        /// Verbs to the home node let through before the kill.
        skip: u64,
    },
}

impl fmt::Display for KillTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KillTiming::None => f.write_str("none"),
            KillTiming::BeforeOp => f.write_str("before-op"),
            KillTiming::BeforeOpDegraded => f.write_str("degraded"),
            KillTiming::AtVerb { skip } => write!(f, "at-verb-{skip}"),
        }
    }
}

/// The kill-timing axis.
pub fn kill_timings() -> Vec<KillTiming> {
    vec![
        KillTiming::None,
        KillTiming::BeforeOp,
        KillTiming::BeforeOpDegraded,
        KillTiming::AtVerb { skip: 1 },
        KillTiming::AtVerb { skip: 4 },
    ]
}

/// Whether the preload leaves reclamation-relevant state behind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReclaimState {
    /// Plain preload: blocks filling, no obsolete slots.
    Fresh,
    /// Preload then delete a third of the keys, flush bitmaps, and insert
    /// a second wave: obsolete slots, flushed bitmaps, and reuse
    /// candidates exist when the fault hits.
    Aged,
}

impl fmt::Display for ReclaimState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReclaimState::Fresh => "fresh",
            ReclaimState::Aged => "aged",
        })
    }
}

/// One crash-matrix cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cell {
    /// Operation under test.
    pub op: OpType,
    /// Injected fault, if any.
    pub site: InjectionSite,
    /// MN kill timing, if any.
    pub kill: KillTiming,
    /// Store age when the fault hits.
    pub reclaim: ReclaimState,
}

impl Cell {
    /// Stable human-readable id, e.g. `update/verb-write-0/at-verb-1/aged`.
    pub fn id(&self) -> String {
        format!("{}/{}/{}/{}", self.op, self.site, self.kill, self.reclaim)
    }

    /// Parses an id produced by [`Cell::id`] (the `chaos cell` replay
    /// subcommand takes these verbatim from a sweep's counterexamples).
    pub fn parse(id: &str) -> Option<Cell> {
        let parts: Vec<&str> = id.split('/').collect();
        let [op, site, kill, reclaim] = parts.as_slice() else {
            return None;
        };
        let op = OpType::ALL.into_iter().find(|o| o.to_string() == *op)?;
        let site = if *site == "none" {
            InjectionSite::None
        } else if let Some(cp) = site.strip_prefix("client-") {
            InjectionSite::Client(CrashPoint::ALL.into_iter().find(|c| c.to_string() == cp)?)
        } else if let Some(rest) = site.strip_prefix("verb-") {
            let (kind, skip) = rest.rsplit_once('-')?;
            let kind = [
                VerbKind::Read,
                VerbKind::Write,
                VerbKind::Cas,
                VerbKind::Faa,
                VerbKind::Rpc,
            ]
            .into_iter()
            .find(|k| k.to_string() == kind)?;
            InjectionSite::Verb {
                kind,
                skip: skip.parse().ok()?,
            }
        } else {
            return None;
        };
        let kill = match *kill {
            "none" => KillTiming::None,
            "before-op" => KillTiming::BeforeOp,
            "degraded" => KillTiming::BeforeOpDegraded,
            other => KillTiming::AtVerb {
                skip: other.strip_prefix("at-verb-")?.parse().ok()?,
            },
        };
        let reclaim = match *reclaim {
            "fresh" => ReclaimState::Fresh,
            "aged" => ReclaimState::Aged,
            _ => return None,
        };
        Some(Cell {
            op,
            site,
            kill,
            reclaim,
        })
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

/// The full cartesian matrix, in axis order (op outermost).
pub fn full_matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for op in OpType::ALL {
        for site in injection_sites() {
            for kill in kill_timings() {
                for reclaim in [ReclaimState::Fresh, ReclaimState::Aged] {
                    cells.push(Cell {
                        op,
                        site,
                        kill,
                        reclaim,
                    });
                }
            }
        }
    }
    cells
}

/// A deterministic CI-sized subset: a seeded Fisher–Yates shuffle of the
/// full matrix truncated to `limit` cells. The same seed always yields
/// the same cells in the same order.
pub fn ci_matrix(seed: u64, limit: usize) -> Vec<Cell> {
    let mut cells = full_matrix();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..cells.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        cells.swap(i, j);
    }
    cells.truncate(limit);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_dimensions() {
        let m = full_matrix();
        assert_eq!(m.len(), 5 * 12 * 5 * 2);
        // Cell ids are unique.
        let mut ids: Vec<String> = m.iter().map(Cell::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), m.len());
    }

    /// Every client crash point is exercised by the matrix — the runtime
    /// half of aceso-san's `lint_crash_points` (which checks the source
    /// wiring): a new `CrashPoint` variant that never appears as an
    /// injection site would silently escape the sweep.
    #[test]
    fn every_crash_point_is_a_matrix_site() {
        let m = full_matrix();
        for cp in aceso_core::client::CrashPoint::ALL {
            assert!(
                m.iter().any(|c| c.site == InjectionSite::Client(cp)),
                "CrashPoint::{cp:?} missing from the crash matrix"
            );
        }
    }

    #[test]
    fn ids_round_trip_through_parse() {
        for cell in full_matrix() {
            assert_eq!(Cell::parse(&cell.id()), Some(cell), "{}", cell.id());
        }
        assert_eq!(Cell::parse("update/verb-write-0/at-verb-1"), None);
        assert_eq!(Cell::parse("nope/none/none/fresh"), None);
    }

    #[test]
    fn ci_subset_is_deterministic() {
        let a = ci_matrix(7, 120);
        let b = ci_matrix(7, 120);
        assert_eq!(a, b);
        assert_eq!(a.len(), 120);
        let c = ci_matrix(8, 120);
        assert_ne!(a, c);
    }
}
