//! `chaos backends` — the per-engine crash matrix over the
//! [`aceso_core::FtEngine`] seam.
//!
//! The main crash matrix ([`crate::runner`]) speaks Aceso's native
//! protocol: its injection sites and invariants are phrased in terms of
//! delta appends, parity stripes, and checkpoint epochs. That makes it
//! useless as a harness for the *other* fault-tolerance strategies behind
//! the seam. This axis is the engine-agnostic counterpart: every cell
//! runs the identical script against a [`FtEngine`] trait object —
//! preload, arm one fault on one victim client, run one target operation,
//! recover, sweep — so Aceso, FUSEE-style full replication, and the
//! SWARM-style 1-RTT engine face the same crashes and answer to the same
//! oracle.
//!
//! A cell is (engine × op × fault × skip):
//!
//! * [`BackendFault::CrashCn`] — a [`FaultAction::Fail`] rule kills the
//!   victim's (skip+1)-th verb; the client is written off mid-op.
//! * [`BackendFault::KillMn`] — a [`FaultAction::KillNode`] rule kills
//!   the target key's home node on the victim's (skip+1)-th verb to it,
//!   so the node dies mid-operation; when the op legitimately never
//!   addresses the node (the skip exceeds the op's verb count), the
//!   harness falls back to a direct kill at the op boundary and the cell
//!   degenerates to pure column-loss recovery.
//!
//! Recovery runs through the seam's two entry points, in the order each
//! strategy's commit-point argument requires: Aceso repairs the
//! interrupted client first (`recover_client` is its CN consistency pass,
//! designed to run against the still-dead column — the order the native
//! matrix tests), then rebuilds dead columns; the replication engines
//! rebuild the column first (the restored primary becomes the agreement
//! baseline) and then reconcile, since their `recover_client` rolls
//! run-ahead backups onto the primary's commit state.
//!
//! Post-conditions are strategy-blind: oracle agreement with a commit
//! ambiguity window on the target key, no phantom keys, a probe write on
//! the interrupted key (liveness), the engine's own [`FtEngine::check`]
//! (parity scrub for Aceso, replica agreement for the replicated
//! engines), and a populated space report.

use crate::runner::{chaos_config, fmt_key, fmt_state, gen_value};
use crate::sweep::cell_seeds;
use aceso_core::{AcesoEngine, AcesoStore, ClientTuning, FtEngine, FtError};
use aceso_engines::{launch, EngineKind};
use aceso_rdma::{FaultAction, FaultPlan, FaultRule, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Pre-op and intended post-op value of the interrupted key — the two
/// states the commit ambiguity window allows (`None` = key absent).
type AmbiguityWindow = (Option<Vec<u8>>, Option<Vec<u8>>);

/// Preloaded keys per cell (small: one op is under test, not throughput).
const KEYS: usize = 24;

/// Verb-skip depths: the fault lands on the (skip+1)-th matching verb, so
/// the same op is interrupted at several protocol depths.
const SKIPS: [u64; 3] = [0, 2, 5];

/// Which fault interrupts the target operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendFault {
    /// Fail one victim verb: the client is written off mid-op.
    CrashCn,
    /// Kill the target key's home node on a victim verb to it.
    KillMn,
}

impl BackendFault {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BackendFault::CrashCn => "crash-cn",
            BackendFault::KillMn => "kill-mn",
        }
    }
}

/// The operation under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendOp {
    /// Insert a fresh key.
    Insert,
    /// Update a preloaded key in place.
    Update,
    /// Delete a preloaded key.
    Delete,
}

impl BackendOp {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BackendOp::Insert => "insert",
            BackendOp::Update => "update",
            BackendOp::Delete => "delete",
        }
    }
}

/// One cell of the backends matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendCell {
    /// The engine under test.
    pub engine: EngineKind,
    /// The operation interrupted by the fault.
    pub op: BackendOp,
    /// The fault armed on the victim client.
    pub fault: BackendFault,
    /// Matching verbs skipped before the fault fires.
    pub skip: u64,
}

impl core::fmt::Display for BackendCell {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}/{}/{}/after{}",
            self.engine,
            self.op.label(),
            self.fault.label(),
            self.skip
        )
    }
}

/// The full matrix, engine-major: 3 engines × 3 ops × 2 faults × 3 skips.
pub fn backends_matrix() -> Vec<BackendCell> {
    let mut cells = Vec::with_capacity(54);
    for engine in EngineKind::ALL {
        for op in [BackendOp::Insert, BackendOp::Update, BackendOp::Delete] {
            for fault in [BackendFault::CrashCn, BackendFault::KillMn] {
                for skip in SKIPS {
                    cells.push(BackendCell {
                        engine,
                        op,
                        fault,
                        skip,
                    });
                }
            }
        }
    }
    cells
}

/// What one backends cell run observed.
#[derive(Clone, Debug)]
pub struct BackendOutcome {
    /// The cell that ran.
    pub cell: BackendCell,
    /// The seed its schedule was derived from.
    pub seed: u64,
    /// Invariant violations (empty = the cell passed).
    pub violations: Vec<String>,
    /// Whether the armed fault fired on a victim verb (mid-op).
    pub fired_at_verb: bool,
    /// Whether the MN kill fell back to a direct boundary kill.
    pub fallback_kill: bool,
    /// Whether the victim client was written off mid-op.
    pub written_off: bool,
    /// Columns rebuilt by [`FtEngine::recover_column`].
    pub recovered_cols: usize,
    /// Bytes moved by column recovery (modeled).
    pub recovery_bytes: u64,
    /// Wall-clock cost of the cell.
    pub duration_ms: u128,
}

impl BackendOutcome {
    /// `true` when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn backend_key(j: usize) -> Vec<u8> {
    format!("bk-{j:02}").into_bytes()
}

/// Launches the cell's engine. Aceso runs on the chaos geometry with the
/// fail-fast client tuning every chaos axis uses (a blocked op costs
/// milliseconds, not the default ten-second index wait); the replication
/// engines fail fast by construction (verb errors propagate immediately).
fn launch_backend(kind: EngineKind) -> Result<Box<dyn FtEngine>, String> {
    match kind {
        EngineKind::Aceso => {
            let store = AcesoStore::launch(chaos_config()).map_err(|e| format!("launch: {e}"))?;
            let tuning = ClientTuning {
                max_retries: 40,
                index_wait_ms: 5,
                ..ClientTuning::default()
            };
            Ok(Box::new(AcesoEngine::with_tuning(store, tuning)))
        }
        _ => launch(kind).map_err(|e| format!("launch: {e}")),
    }
}

/// Runs one backends cell.
pub fn run_backends_cell(cell: &BackendCell, seed: u64) -> BackendOutcome {
    run_backends_cell_with_sink(cell, seed, None)
}

/// [`run_backends_cell`] with a [`TraceSink`] installed for the duration,
/// so the race detector observes the engine's verb stream across the
/// fault and the recovery barriers.
pub fn run_backends_cell_with_sink(
    cell: &BackendCell,
    seed: u64,
    sink: Option<Arc<dyn TraceSink>>,
) -> BackendOutcome {
    let start = Instant::now();
    let mut out = BackendOutcome {
        cell: *cell,
        seed,
        violations: Vec::new(),
        fired_at_verb: false,
        fallback_kill: false,
        written_off: false,
        recovered_cols: 0,
        recovery_bytes: 0,
        duration_ms: 0,
    };
    if let Err(e) = run_backends_cell_inner(cell, seed, &mut out, sink) {
        out.violations.push(format!("harness: {e}"));
    }
    out.duration_ms = start.elapsed().as_millis();
    out
}

#[allow(clippy::too_many_lines)]
fn run_backends_cell_inner(
    cell: &BackendCell,
    seed: u64,
    out: &mut BackendOutcome,
    sink: Option<Arc<dyn TraceSink>>,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let eng = launch_backend(cell.engine)?;
    if let Some(s) = sink {
        eng.cluster().install_trace_sink(s);
    }

    // ---- Preload ---------------------------------------------------------
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    {
        let mut loader = eng.client().map_err(|e| format!("loader: {e}"))?;
        for j in 0..KEYS {
            let k = backend_key(j);
            let v = gen_value(&mut rng, b'A');
            loader
                .insert(&k, &v)
                .map_err(|e| format!("preload {}: {e}", fmt_key(&k)))?;
            oracle.insert(k, v);
        }
        loader.quiesce().map_err(|e| format!("preload quiesce: {e}"))?;
    }
    for _ in 0..2 {
        eng.tick().map_err(|e| format!("tick: {e}"))?;
    }
    eng.cluster().trace_barrier();

    // ---- Arm the fault and run the target op -----------------------------
    let target = match cell.op {
        BackendOp::Insert => b"bk-new".to_vec(),
        _ => backend_key(rng.gen_range(0..KEYS)),
    };
    let home = eng.home_col(&target);
    let victim_node = eng.node_of(home);

    let mut victim = eng.client().map_err(|e| format!("victim: {e}"))?;
    let rule = match cell.fault {
        BackendFault::CrashCn => FaultRule::new(FaultAction::Fail).after(cell.skip),
        BackendFault::KillMn => FaultRule::new(FaultAction::KillNode)
            .on_node(victim_node)
            .after(cell.skip),
    };
    let plan = FaultPlan::with_rules(vec![rule]);
    victim.install_fault_plan(Arc::clone(&plan));

    let prev = oracle.get(&target).cloned();
    let val = gen_value(&mut rng, b'T');
    let intended = match cell.op {
        BackendOp::Delete => None,
        _ => Some(val.clone()),
    };
    let res: Result<(), FtError> = match cell.op {
        BackendOp::Insert => victim.insert(&target, &val),
        BackendOp::Update => victim.update(&target, &val),
        BackendOp::Delete => match victim.delete(&target) {
            Ok(existed) => {
                if !existed {
                    out.violations
                        .push(format!("delete of preloaded {} found nothing", fmt_key(&target)));
                }
                Ok(())
            }
            Err(e) => Err(e),
        },
    };
    out.fired_at_verb = plan.fired_count() > 0;

    // The commit ambiguity window of the interrupted op: pre-op state vs
    // intended post-op state. `None` = the op committed cleanly.
    let mut window: Option<AmbiguityWindow> = None;
    match res {
        Ok(()) => {
            match &intended {
                Some(v) => oracle.insert(target.clone(), v.clone()),
                None => oracle.remove(&target),
            };
        }
        Err(FtError::Crashed(_)) if cell.fault == BackendFault::CrashCn => {
            window = Some((prev.clone(), intended.clone()));
            out.written_off = true;
        }
        Err(FtError::Unreachable(_)) if cell.fault == BackendFault::KillMn => {
            // The home node died under the op and nobody has recovered
            // yet: written off as crashed-while-blocked.
            window = Some((prev.clone(), intended.clone()));
            out.written_off = true;
        }
        Err(e) => out
            .violations
            .push(format!("target op on {}: unexpected error: {e}", fmt_key(&target))),
    }

    // The skip can exceed the op's verb count to the victim node: fall
    // back to a direct kill at the op boundary so the cell still tests
    // column-loss recovery (now with no torn op).
    if cell.fault == BackendFault::KillMn && eng.cluster().node(victim_node).is_ok() {
        out.fallback_kill = true;
        if !eng.kill_column(home) {
            out.violations
                .push(format!("fallback kill of col {home} reported node already dead"));
        }
    }
    let victim_id = victim.id();
    drop(victim);
    eng.cluster().trace_barrier();

    // ---- Recovery --------------------------------------------------------
    // Strategy-ordered, per the module docs: Aceso's CN consistency pass
    // runs against the still-dead column; the replication engines
    // reconcile after the rebuilt primary is back as agreement baseline.
    // Each recovery stage is barrier-delimited: the real system quiesces
    // between tiers, and the detector needs the handoff edge (the column
    // copy is plain unpublished writes the next stage then reads).
    let cn_first = cell.engine == EngineKind::Aceso;
    if out.written_off && cn_first {
        eng.recover_client(victim_id)
            .map_err(|e| format!("recover_client: {e}"))?;
        eng.cluster().trace_barrier();
    }
    for col in 0..eng.columns() {
        if eng.cluster().node(eng.node_of(col)).is_err() {
            let s = eng
                .recover_column(col)
                .map_err(|e| format!("recover_column {col}: {e}"))?;
            out.recovered_cols += 1;
            out.recovery_bytes += s.bytes;
        }
    }
    if out.recovered_cols > 0 {
        eng.cluster().trace_barrier();
    }
    if out.written_off && !cn_first {
        eng.recover_client(victim_id)
            .map_err(|e| format!("recover_client: {e}"))?;
    }
    eng.cluster().trace_barrier();

    // ---- Invariants ------------------------------------------------------
    let mut sweep = eng.client().map_err(|e| format!("sweep client: {e}"))?;

    // 1. Oracle agreement (no lost acks: every acknowledged value reads
    //    back), with the ambiguity window on the target key.
    let got = sweep
        .search(&target)
        .map_err(|e| format!("target search: {e}"))?;
    let target_ok = match &window {
        Some((pre, post)) => got == *pre || got == *post,
        None => got == oracle.get(&target).cloned(),
    };
    if !target_ok {
        let (pre, post) = window.clone().unwrap_or_else(|| {
            let w = oracle.get(&target).cloned();
            (w.clone(), w)
        });
        out.violations.push(format!(
            "target {} outside ambiguity window: got {} allowed {} | {}",
            fmt_key(&target),
            fmt_state(&got),
            fmt_state(&pre),
            fmt_state(&post)
        ));
    }
    for (k, v) in oracle.iter().filter(|(k, _)| **k != target) {
        match sweep.search(k) {
            Ok(got) if got.as_ref() == Some(v) => {}
            Ok(got) => out.violations.push(format!(
                "oracle mismatch on {}: got {} want {}",
                fmt_key(k),
                fmt_state(&got),
                fmt_state(&Some(v.clone()))
            )),
            Err(e) => out
                .violations
                .push(format!("oracle search {}: {e}", fmt_key(k))),
        }
    }

    // 2. No phantom keys materialized by the fault or the recovery.
    match sweep.search(b"bk-phantom") {
        Ok(None) => {}
        Ok(got) => out
            .violations
            .push(format!("phantom key readable: {}", fmt_state(&got))),
        Err(e) => out.violations.push(format!("phantom search: {e}")),
    }

    // 3. Liveness on the interrupted key: a probe write must get through
    //    (no abandoned lock, no wedged slot) and read back.
    let probe = gen_value(&mut rng, b'P');
    match sweep.insert(&target, &probe) {
        Ok(()) => match sweep.search(&target) {
            Ok(Some(got)) if got == probe => {}
            Ok(got) => out.violations.push(format!(
                "probe readback mismatch on {}: got {}",
                fmt_key(&target),
                fmt_state(&got)
            )),
            Err(e) => out
                .violations
                .push(format!("probe readback {}: {e}", fmt_key(&target))),
        },
        Err(e) => out.violations.push(format!(
            "probe insert on {} blocked: {e}",
            fmt_key(&target)
        )),
    }

    // 4. The engine's own integrity check (parity scrub / replica
    //    agreement), after a quiesce so buffered client state is flushed.
    sweep.quiesce().map_err(|e| format!("sweep quiesce: {e}"))?;
    drop(sweep);
    eng.cluster().trace_barrier();
    match eng.check() {
        Ok(problems) => out.violations.extend(problems),
        Err(e) => out.violations.push(format!("check: {e}")),
    }

    // 5. Space accounting stays populated across the fault.
    let sp = eng.space();
    if sp.valid == 0 || sp.redundancy == 0 {
        out.violations
            .push(format!("space report degenerate after recovery: {sp:?}"));
    }

    // Accounting sanity on the injection machinery itself.
    if out.fired_at_verb && plan.fired().is_empty() {
        out.violations.push("fired count and log disagree".into());
    }

    eng.shutdown();
    Ok(())
}

/// Everything one `chaos backends` run produced.
#[derive(Clone, Debug)]
pub struct BackendsReportCli {
    /// The master seed (per-cell seeds derive from it).
    pub seed: u64,
    /// Per-cell outcomes, in matrix order.
    pub outcomes: Vec<BackendOutcome>,
}

impl BackendsReportCli {
    /// `true` when every cell held every invariant.
    pub fn clean(&self) -> bool {
        self.outcomes.iter().all(BackendOutcome::ok)
    }

    /// Renders the run summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let failed = self.outcomes.iter().filter(|o| !o.ok()).count();
        let fired = self.outcomes.iter().filter(|o| o.fired_at_verb).count();
        let written_off = self.outcomes.iter().filter(|o| o.written_off).count();
        let fallback = self.outcomes.iter().filter(|o| o.fallback_kill).count();
        let recovered: usize = self.outcomes.iter().map(|o| o.recovered_cols).sum();
        s.push_str(&format!(
            "backends report: seed {:#x}\n  {} cells, {} failed, {} mid-op faults, {} clients written off, {} fallback kills, {} columns recovered\n",
            self.seed,
            self.outcomes.len(),
            failed,
            fired,
            written_off,
            fallback,
            recovered
        ));
        for kind in EngineKind::ALL {
            let of_kind: Vec<_> = self
                .outcomes
                .iter()
                .filter(|o| o.cell.engine == kind)
                .collect();
            let bad = of_kind.iter().filter(|o| !o.ok()).count();
            s.push_str(&format!(
                "  {kind}: {}/{} cells clean\n",
                of_kind.len() - bad,
                of_kind.len()
            ));
        }
        for o in self.outcomes.iter().filter(|o| !o.ok()) {
            s.push_str(&format!("  cell {} (seed {:#x}):\n", o.cell, o.seed));
            for v in &o.violations {
                s.push_str(&format!("    - {v}\n"));
            }
        }
        s.push_str(if self.clean() {
            "  every engine held its invariants across the shared crash matrix\n"
        } else {
            "  BACKENDS AXIS FOUND PROBLEMS (see above)\n"
        });
        s
    }
}

/// Runs the full matrix with per-cell seeds derived from `seed`.
/// `progress` is called after each cell (CLI verbosity hook).
pub fn run_backends_matrix(
    seed: u64,
    mut progress: impl FnMut(&BackendOutcome),
) -> BackendsReportCli {
    let cells = backends_matrix();
    let seeds = cell_seeds(seed, cells.len());
    let outcomes = cells
        .iter()
        .zip(seeds)
        .map(|(cell, cell_seed)| {
            let out = run_backends_cell(cell, cell_seed);
            progress(&out);
            out
        })
        .collect();
    BackendsReportCli { seed, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_covers_every_engine() {
        let cells = backends_matrix();
        assert_eq!(cells.len(), 54);
        for kind in EngineKind::ALL {
            assert_eq!(cells.iter().filter(|c| c.engine == kind).count(), 18);
        }
    }

    /// A mid-op client crash on an update holds the invariants on every
    /// engine behind the seam.
    #[test]
    fn crash_cn_update_holds_on_every_engine() {
        for engine in EngineKind::ALL {
            let cell = BackendCell {
                engine,
                op: BackendOp::Update,
                fault: BackendFault::CrashCn,
                skip: 0,
            };
            let out = run_backends_cell(&cell, crate::DEFAULT_SEED);
            assert!(out.ok(), "{cell}: {:?}", out.violations);
            assert!(out.fired_at_verb, "{cell}: fault never fired");
            assert!(out.written_off, "{cell}: victim not written off");
        }
    }

    /// Killing the home node mid-insert forces degraded service and a
    /// column rebuild on every engine.
    #[test]
    fn kill_mn_insert_recovers_on_every_engine() {
        for engine in EngineKind::ALL {
            let cell = BackendCell {
                engine,
                op: BackendOp::Insert,
                fault: BackendFault::KillMn,
                skip: 0,
            };
            let out = run_backends_cell(&cell, crate::DEFAULT_SEED);
            assert!(out.ok(), "{cell}: {:?}", out.violations);
            assert_eq!(out.recovered_cols, 1, "{cell}: column not rebuilt");
            assert!(out.recovery_bytes > 0, "{cell}: empty recovery");
        }
    }

    /// A deep-skip delete crash still converges (the fault may or may not
    /// fire depending on the engine's verb count — both paths must hold).
    #[test]
    fn deep_skip_delete_holds_on_every_engine() {
        for engine in EngineKind::ALL {
            let cell = BackendCell {
                engine,
                op: BackendOp::Delete,
                fault: BackendFault::CrashCn,
                skip: 5,
            };
            let out = run_backends_cell(&cell, crate::DEFAULT_SEED);
            assert!(out.ok(), "{cell}: {:?}", out.violations);
        }
    }

    /// Same seed, same schedule, same outcome.
    #[test]
    fn backends_cell_is_deterministic() {
        let cell = BackendCell {
            engine: EngineKind::Swarm,
            op: BackendOp::Update,
            fault: BackendFault::KillMn,
            skip: 2,
        };
        let a = run_backends_cell(&cell, 99);
        let b = run_backends_cell(&cell, 99);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.fired_at_verb, b.fired_at_verb);
        assert_eq!(a.written_off, b.written_off);
        assert_eq!(a.recovered_cols, b.recovered_cols);
        assert_eq!(a.recovery_bytes, b.recovery_bytes);
    }
}
