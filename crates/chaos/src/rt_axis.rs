//! `chaos rt` — the coroutine-runtime fault axis.
//!
//! The crash matrix kills nodes under a *single* blocking client. This
//! axis kills them under an [`aceso_rt::Executor`] multiplexing several
//! resumable client ops on one OS thread: the fault fires while N > 1
//! tasks are suspended mid-op at a fabric round trip, so recovery has to
//! cope with several half-finished commits from the *same* thread at
//! once — the failure mode the paper's client coroutines (§4.1) add on
//! top of the plain crash matrix.
//!
//! Two kills:
//!
//! * [`RtKill::Mn`] — a memory node dies at a fixed completion-queue
//!   step (so the kill lands between polls, with every in-flight task
//!   suspended at a round trip); the suspended tasks wake into an
//!   unreachable fabric and are written off as crashed-while-blocked.
//! * [`RtKill::Cn`] — one task's client crashes at a protocol crash
//!   point ([`CrashPoint::BeforeCommit`]) while its sibling tasks keep
//!   running on the same executor thread.
//!
//! Every task owns a disjoint key range, so the shared oracle stays
//! exact under interleaving; tasks interrupted mid-op contribute a
//! per-key commit ambiguity window instead. Post-conditions are the
//! matrix invariants (oracle agreement, meta-lock liveness on every
//! interrupted key, Index-Version monotonicity, parity scrub) — see
//! [`crate::runner`].

use crate::runner::{chaos_config, fmt_key, fmt_state, gen_value};
use aceso_core::client::CrashPoint;
use aceso_core::{recover_cn, recover_mn, scrub, AcesoStore, ClientTuning, StoreError};
use aceso_rdma::{RdmaError, SimCq, TraceSink};
use aceso_rt::Executor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// Coroutine tasks multiplexed on the one executor thread.
pub const RT_TASKS: usize = 6;
/// Keys each task owns (disjoint ranges keep the oracle exact).
const KEYS_PER_TASK: usize = 4;
/// Ops each task issues (alternating update / search).
const OPS_PER_TASK: usize = 6;
/// CQ advance step at which [`RtKill::Mn`] fires. Early enough that all
/// tasks are still mid-stream, late enough that commits are in flight.
const MN_KILL_STEP: u64 = 48;

/// Which side of the fabric dies under the runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtKill {
    /// Kill a memory node between executor polls.
    Mn,
    /// Crash one task's client at a protocol crash point.
    Cn,
}

impl RtKill {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RtKill::Mn => "kill-mn",
            RtKill::Cn => "crash-cn",
        }
    }
}

/// What one runtime-axis run observed.
#[derive(Clone, Debug)]
pub struct RtOutcome {
    /// The kill that was armed.
    pub kill: RtKill,
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Tasks spawned on the executor.
    pub tasks: usize,
    /// Tasks still mid-op when the fault fired (must be > 1).
    pub inflight_at_fault: usize,
    /// Tasks written off as crashed or blocked.
    pub crashed_tasks: usize,
    /// Invariant violations (empty = the run passed).
    pub violations: Vec<String>,
    /// Wall-clock cost of the run.
    pub duration_ms: u128,
}

impl RtOutcome {
    /// `true` when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The commit ambiguity window of one interrupted op: the key may read
/// back as either its pre-op or its intended post-op state.
type Window = (Vec<u8>, Option<Vec<u8>>, Option<Vec<u8>>);

/// State the tasks share through the single-threaded executor.
#[derive(Default)]
struct SharedState {
    /// Exact predicted store state (tasks own disjoint keys).
    oracle: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Per-key commit ambiguity windows: (key, pre-op, intended post-op).
    ambiguous: Vec<Window>,
    /// Client ids of tasks written off as crashed/blocked.
    crashed: Vec<u32>,
    /// Violations observed while the tasks ran.
    violations: Vec<String>,
    /// Tasks that ran to completion (or stopped) so far.
    finished: usize,
    /// `RT_TASKS - finished` sampled when the fault fired.
    inflight_at_fault: Option<usize>,
}

/// Runs one runtime-axis cell.
pub fn run_rt_cell(kill: RtKill, seed: u64) -> RtOutcome {
    run_rt_cell_with_sink(kill, seed, None)
}

/// [`run_rt_cell`] with a [`TraceSink`] installed for the duration, so
/// the race detector observes the interleaved per-client verb streams
/// (each task has its own DM client and trace id).
pub fn run_rt_cell_with_sink(
    kill: RtKill,
    seed: u64,
    sink: Option<Arc<dyn TraceSink>>,
) -> RtOutcome {
    let start = Instant::now();
    let mut out = RtOutcome {
        kill,
        seed,
        tasks: RT_TASKS,
        inflight_at_fault: 0,
        crashed_tasks: 0,
        violations: Vec::new(),
        duration_ms: 0,
    };
    if let Err(e) = run_rt_cell_inner(kill, seed, &mut out, sink) {
        out.violations.push(format!("harness: {e}"));
    }
    out.duration_ms = start.elapsed().as_millis();
    out
}

fn task_key(task: usize, j: usize) -> Vec<u8> {
    format!("rt-{task}-{j:02}").into_bytes()
}

fn run_rt_cell_inner(
    kill: RtKill,
    seed: u64,
    out: &mut RtOutcome,
    sink: Option<Arc<dyn TraceSink>>,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let store = AcesoStore::launch(chaos_config()).map_err(|e| format!("launch: {e}"))?;
    if let Some(s) = sink {
        store.cluster.install_trace_sink(s);
    }
    let n = store.cfg.num_mns;

    // ---- Preload ---------------------------------------------------------
    let shared = Rc::new(RefCell::new(SharedState::default()));
    {
        let mut loader = store.client().map_err(|e| format!("loader: {e}"))?;
        let mut st = shared.borrow_mut();
        for t in 0..RT_TASKS {
            for j in 0..KEYS_PER_TASK {
                let k = task_key(t, j);
                let v = gen_value(&mut rng, b'A');
                loader
                    .insert(&k, &v)
                    .map_err(|e| format!("preload {}: {e}", fmt_key(&k)))?;
                st.oracle.insert(k, v);
            }
        }
        loader
            .close_open_blocks()
            .map_err(|e| format!("preload close: {e}"))?;
    }
    store.cluster.trace_barrier();

    // Two checkpoint rounds so every column has a restorable checkpoint
    // and a non-trivial Index Version to regress from.
    for _ in 0..2 {
        store.checkpoint_tick().map_err(|e| format!("ckpt: {e}"))?;
    }
    store.cluster.trace_barrier();
    let iv_of = |store: &Arc<AcesoStore>, col: usize| {
        let s = store.server(col);
        s.index.local_index_version(&s.node.region)
    };
    let iv_pre: Vec<u64> = (0..n).map(|c| iv_of(&store, c)).collect();

    // ---- Spawn the coroutine clients -------------------------------------
    // Same fail-fast tuning as the matrix runner: a blocked op costs the
    // run milliseconds, not the production grace window — and the sleeps
    // run inline on the executor thread, so they must stay short.
    let tuning = ClientTuning {
        max_retries: 40,
        index_wait_ms: 5,
        ..ClientTuning::default()
    };
    let kill_col = rng.gen_range(0..n);
    let mn_kill_planned = kill == RtKill::Mn;

    let cq = Arc::new(SimCq::new());
    let mut exec = Executor::new();
    for t in 0..RT_TASKS {
        let mut client = store
            .client_with(tuning)
            .map_err(|e| format!("client {t}: {e}"))?;
        client.dm.attach_cq(Arc::clone(&cq));
        if kill == RtKill::Cn && t == 0 {
            client.crash_point = Some(CrashPoint::BeforeCommit);
        }
        let shared = Rc::clone(&shared);
        let mut task_rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9e37_79b9));
        exec.spawn(async move {
            let cli_id = client.id();
            for opno in 0..OPS_PER_TASK {
                let j = task_rng.gen_range(0..KEYS_PER_TASK);
                let key = task_key(t, j);
                let prev = shared.borrow().oracle.get(&key).cloned();
                // Even ops mutate (so the CN crash point fires early),
                // odd ops read back through the full search path.
                let (res, intended) = if opno % 2 == 0 {
                    let val = gen_value(&mut task_rng, b'0' + t as u8);
                    (client.update_async(&key, &val).await, Some(val))
                } else {
                    match client.search_async(&key).await {
                        Ok(got) => {
                            if got != prev {
                                shared.borrow_mut().violations.push(format!(
                                    "task {t}: search({}) returned {} want {}",
                                    fmt_key(&key),
                                    fmt_state(&got),
                                    fmt_state(&prev)
                                ));
                            }
                            (Ok(()), prev.clone())
                        }
                        Err(e) => (Err(e), prev.clone()),
                    }
                };
                match res {
                    Ok(()) => {
                        if let Some(v) = &intended {
                            shared.borrow_mut().oracle.insert(key, v.clone());
                        }
                    }
                    Err(StoreError::Shutdown) => {
                        // The armed crash point fired mid-commit.
                        let mut st = shared.borrow_mut();
                        st.ambiguous.push((key, prev, intended));
                        st.crashed.push(cli_id);
                        let inflight = RT_TASKS - st.finished;
                        st.inflight_at_fault.get_or_insert(inflight);
                        break;
                    }
                    Err(StoreError::Rdma(RdmaError::NodeUnreachable(_)))
                    | Err(StoreError::RetriesExhausted)
                        if mn_kill_planned =>
                    {
                        // The MN died under the op and nobody recovers it
                        // until the executor drains: written off as
                        // crashed-while-blocked, like the matrix runner.
                        let mut st = shared.borrow_mut();
                        st.ambiguous.push((key, prev, intended));
                        st.crashed.push(cli_id);
                        break;
                    }
                    Err(e) => {
                        shared
                            .borrow_mut()
                            .violations
                            .push(format!("task {t} op {opno}: unexpected error: {e}"));
                        break;
                    }
                }
            }
            client.dm.detach_cq();
            shared.borrow_mut().finished += 1;
        });
    }

    // ---- Drive to idle, killing mid-suspension ---------------------------
    // The drive closure only runs when the ready queue is empty, i.e.
    // every live task is suspended at a fabric round trip — exactly the
    // window the MN kill must land in.
    let mut steps = 0u64;
    let mut mn_killed = false;
    let stuck = {
        let store = Arc::clone(&store);
        let shared = Rc::clone(&shared);
        exec.run_until_idle(|| {
            let advanced = cq.advance_next();
            if advanced {
                steps += 1;
                if mn_kill_planned && steps == MN_KILL_STEP && !mn_killed {
                    mn_killed = store.kill_mn(kill_col);
                    let mut st = shared.borrow_mut();
                    let inflight = RT_TASKS - st.finished;
                    st.inflight_at_fault.get_or_insert(inflight);
                }
            }
            advanced
        })
    };
    if stuck != 0 {
        out.violations
            .push(format!("executor wedged with {stuck} tasks in flight"));
    }
    if mn_kill_planned && !mn_killed {
        out.violations.push(format!(
            "MN kill never fired (run drained in {steps} < {MN_KILL_STEP} CQ steps)"
        ));
    }
    store.cluster.trace_barrier();

    let (oracle, ambiguous, crashed) = {
        let mut st = shared.borrow_mut();
        out.inflight_at_fault = st.inflight_at_fault.unwrap_or(0);
        out.violations.append(&mut st.violations);
        (
            std::mem::take(&mut st.oracle),
            std::mem::take(&mut st.ambiguous),
            std::mem::take(&mut st.crashed),
        )
    };
    out.crashed_tasks = crashed.len();
    if out.inflight_at_fault < 2 {
        out.violations.push(format!(
            "fault fired with {} tasks in flight (need > 1 suspended mid-op)",
            out.inflight_at_fault
        ));
    }
    if kill == RtKill::Cn && crashed.is_empty() {
        out.violations
            .push("CN crash point never fired".to_string());
    }

    // ---- Tiered recovery (§3.4: CN consistency first, then MN) -----------
    for cli_id in &crashed {
        let mut revived = store.client_with_id(*cli_id);
        recover_cn(&store, &mut revived).map_err(|e| format!("recover_cn({cli_id}): {e}"))?;
        // Each CN repair is its own membership-service epoch: the service
        // fences one crashed client's rollback before admitting the next,
        // so consecutive repairs (which share parity stripes) are
        // barrier-ordered in the verb trace.
        store.cluster.trace_barrier();
    }
    if mn_killed {
        recover_mn(&store, kill_col).map_err(|e| format!("recover_mn: {e}"))?;
    }
    store.cluster.trace_barrier();

    // ---- Invariants ------------------------------------------------------
    let mut sweep = store.client().map_err(|e| format!("sweep client: {e}"))?;
    let mut windows: BTreeMap<&[u8], [&Option<Vec<u8>>; 2]> = BTreeMap::new();
    for (k, pre, post) in &ambiguous {
        windows.insert(k.as_slice(), [pre, post]);
    }

    // 1. Oracle agreement, with per-task ambiguity windows on every key
    //    whose op was interrupted.
    for (k, v) in &oracle {
        match sweep.search(k) {
            Ok(got) => {
                let allowed: Vec<Option<Vec<u8>>> = match windows.get(k.as_slice()) {
                    Some([pre, post]) => vec![(*pre).clone(), (*post).clone()],
                    None => vec![Some(v.clone())],
                };
                if !allowed.contains(&got) {
                    out.violations.push(format!(
                        "key {} outside ambiguity window: got {} allowed {}",
                        fmt_key(k),
                        fmt_state(&got),
                        allowed.iter().map(fmt_state).collect::<Vec<_>>().join(" | ")
                    ));
                }
            }
            Err(e) => out
                .violations
                .push(format!("oracle search {}: {e}", fmt_key(k))),
        }
    }

    // 2. Meta-lock liveness on every interrupted key: a probe write must
    //    get through (breaking any lock a crashed task abandoned).
    for (k, _, _) in &ambiguous {
        let probe = gen_value(&mut rng, b'P');
        match sweep.insert(k, &probe) {
            Ok(()) => match sweep.search(k) {
                Ok(Some(got)) if got == probe => {}
                Ok(got) => out.violations.push(format!(
                    "probe readback mismatch on {}: got {}",
                    fmt_key(k),
                    fmt_state(&got)
                )),
                Err(e) => out
                    .violations
                    .push(format!("probe readback {}: {e}", fmt_key(k))),
            },
            Err(e) => out.violations.push(format!(
                "probe insert on {} blocked (stale meta lock?): {e}",
                fmt_key(k)
            )),
        }
    }

    // 3. Index-Version monotonicity across kill + recovery.
    for (col, pre) in iv_pre.iter().enumerate() {
        let post = iv_of(&store, col);
        if post < *pre {
            out.violations.push(format!(
                "index version regressed on col {col}: {pre} -> {post}"
            ));
        }
    }

    // 4. Parity-stripe consistency after full recovery.
    if let Err(e) = sweep.flush_bitmaps() {
        out.violations.push(format!("final flush: {e}"));
    }
    store.cluster.trace_barrier();
    match scrub(&store) {
        Ok(r) if r.is_clean() => {}
        Ok(r) => out.violations.push(format!("scrub dirty: {r:?}")),
        Err(e) => out.violations.push(format!("scrub: {e}")),
    }

    store.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The MN dies between polls with several tasks suspended mid-op;
    /// every invariant holds after tiered recovery.
    #[test]
    fn mn_kill_under_runtime_passes() {
        let out = run_rt_cell(RtKill::Mn, crate::DEFAULT_SEED);
        assert!(out.ok(), "{:?}", out.violations);
        assert!(out.inflight_at_fault >= 2, "{:?}", out.inflight_at_fault);
    }

    /// One task's client crashes at a protocol crash point while its
    /// siblings keep running on the same executor thread.
    #[test]
    fn cn_crash_under_runtime_passes() {
        let out = run_rt_cell(RtKill::Cn, crate::DEFAULT_SEED);
        assert!(out.ok(), "{:?}", out.violations);
        assert_eq!(out.crashed_tasks, 1);
        assert!(out.inflight_at_fault >= 2, "{:?}", out.inflight_at_fault);
    }

    /// Same seed, same schedule, same outcome.
    #[test]
    fn rt_cell_is_deterministic() {
        let a = run_rt_cell(RtKill::Mn, 77);
        let b = run_rt_cell(RtKill::Mn, 77);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.inflight_at_fault, b.inflight_at_fault);
        assert_eq!(a.crashed_tasks, b.crashed_tasks);
    }
}
