//! `chaos elastic` — the kill-mid-rebalance fault axis.
//!
//! The crash matrix and the runtime axis kill nodes under a *static*
//! membership. This axis kills them while an elastic migration
//! ([`aceso_core::Migration`]) is re-homing a column onto a joining node
//! (or off a draining one): live client traffic interleaves with the
//! migrator, and at exactly one step boundary — announce, per-batch copy,
//! parity re-encode, epoch publish, or old-column free — a node dies.
//!
//! Three kills × five boundaries = fifteen cells:
//!
//! * [`ElasticKill::JoinMn`] — the *joining* node (the migration target)
//!   dies. Pre-publish the migration aborts (the dual-write mirror kept
//!   the source byte-fresh, so no recovery is needed); post-publish the
//!   target is the column's serving node and ordinary MN recovery runs.
//! * [`ElasticKill::DrainMn`] — the *draining* node (the source) dies.
//!   Pre-publish the migration aborts and the column is rebuilt by
//!   ordinary MN recovery; post-publish the source holds nothing and the
//!   kill must be a pure no-op — a client verb addressed to it is itself
//!   a violation.
//! * [`ElasticKill::Cn`] — the traffic client crashes at a protocol
//!   crash point while the migration is mid-flight; CN recovery runs with
//!   the dual-write mirror still armed, and the migration then completes.
//!
//! The MN kills are armed as a phase-gated [`FaultRule`]
//! ([`FaultRule::in_phase`]): the harness advances the plan's phase at
//! every migrator step boundary, so the kill fires on the traffic
//! client's first verb to the victim *inside* the chosen boundary's
//! window — landing mid-operation whenever the client addresses the
//! victim at all, and falling back to a direct kill when it legitimately
//! does not (a stale snapshot never writes the join target before its
//! first fence bounce; nothing addresses a retired source post-publish).
//!
//! Post-conditions are the matrix invariants (oracle agreement with
//! per-key ambiguity windows, meta-lock liveness, Index-Version
//! monotonicity, parity scrub) plus two elastic ones:
//!
//! 1. **Placement-epoch monotonicity** — the placement epoch strictly
//!    increases at every migrator step and never decreases across aborts
//!    or recovery.
//! 2. **No KV readable only via a retired column** — every node on the
//!    placement snapshot's `retired` list is dead, no directory entry
//!    serves one, and a fresh client can still read the entire oracle.

use crate::runner::{chaos_config, fmt_key, fmt_state, gen_value};
use crate::sweep::cell_seeds;
use aceso_core::client::CrashPoint;
use aceso_core::{recover_cn, recover_mn, scrub, AcesoClient, AcesoStore, ClientTuning, ElasticStep, StoreError};
use aceso_rdma::{FaultAction, FaultPlan, FaultRule, RdmaError, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Preloaded keys the traffic windows draw from.
const KEYS: usize = 24;
/// Client ops per boundary window (mutation-heavy so crash points and
/// verb-triggered kills fire early).
const OPS_PER_WINDOW: usize = 6;

/// Which participant dies mid-rebalance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElasticKill {
    /// Kill the joining node (the migration target).
    JoinMn,
    /// Kill the draining node (the migration source).
    DrainMn,
    /// Crash the traffic client at a protocol crash point.
    Cn,
}

impl ElasticKill {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ElasticKill::JoinMn => "kill-join-mn",
            ElasticKill::DrainMn => "kill-drain-mn",
            ElasticKill::Cn => "crash-cn",
        }
    }
}

/// The migrator step boundary the fault lands on. The fault fires in the
/// traffic window immediately *after* the named step completes (for
/// `Copy`, after the first copy batch — some placement groups moved,
/// some not).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElasticBoundary {
    /// After the target joined and dual-write was armed.
    Announce,
    /// After the first placement-group copy batch.
    Copy,
    /// After the parity re-encode.
    Reencode,
    /// After the column republished on the target.
    Publish,
    /// After the source node drained.
    Free,
}

impl ElasticBoundary {
    /// All five boundaries in step order.
    pub fn all() -> [ElasticBoundary; 5] {
        [
            ElasticBoundary::Announce,
            ElasticBoundary::Copy,
            ElasticBoundary::Reencode,
            ElasticBoundary::Publish,
            ElasticBoundary::Free,
        ]
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ElasticBoundary::Announce => "announce",
            ElasticBoundary::Copy => "copy",
            ElasticBoundary::Reencode => "reencode",
            ElasticBoundary::Publish => "publish",
            ElasticBoundary::Free => "free",
        }
    }

    /// The [`FaultPlan`] phase of this boundary's traffic window.
    fn phase(&self) -> u32 {
        match self {
            ElasticBoundary::Announce => 0,
            ElasticBoundary::Copy => 1,
            ElasticBoundary::Reencode => 2,
            ElasticBoundary::Publish => 3,
            ElasticBoundary::Free => 4,
        }
    }
}

/// The boundary window a completed migrator step opens.
fn boundary_of(step: ElasticStep) -> ElasticBoundary {
    match step {
        ElasticStep::Announce => ElasticBoundary::Announce,
        ElasticStep::CopyBatch(_) => ElasticBoundary::Copy,
        ElasticStep::Reencode => ElasticBoundary::Reencode,
        ElasticStep::Publish => ElasticBoundary::Publish,
        ElasticStep::Free | ElasticStep::Done => ElasticBoundary::Free,
    }
}

/// One cell of the elastic matrix: a kill at a step boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElasticCell {
    /// Which participant dies.
    pub kill: ElasticKill,
    /// At which migrator step boundary.
    pub boundary: ElasticBoundary,
}

impl core::fmt::Display for ElasticCell {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}@{}", self.kill.label(), self.boundary.label())
    }
}

/// The full 15-cell matrix, in kill-major order.
pub fn elastic_matrix() -> Vec<ElasticCell> {
    let mut cells = Vec::with_capacity(15);
    for kill in [ElasticKill::JoinMn, ElasticKill::DrainMn, ElasticKill::Cn] {
        for boundary in ElasticBoundary::all() {
            cells.push(ElasticCell { kill, boundary });
        }
    }
    cells
}

/// What one elastic cell run observed.
#[derive(Clone, Debug)]
pub struct ElasticOutcome {
    /// The cell that ran.
    pub cell: ElasticCell,
    /// The seed its schedule was derived from.
    pub seed: u64,
    /// The column that was migrated.
    pub col: usize,
    /// Invariant violations (empty = the cell passed).
    pub violations: Vec<String>,
    /// Whether the MN kill fired on a traffic-client verb (mid-op) rather
    /// than by the direct fallback.
    pub kill_fired_at_verb: bool,
    /// Whether the migration was aborted (pre-publish MN kills).
    pub aborted: bool,
    /// Client ops that committed while the migration was in flight.
    pub committed_ops: usize,
    /// The placement epoch recorded after each migrator step.
    pub epochs: Vec<u64>,
    /// Wall-clock cost of the cell.
    pub duration_ms: u128,
}

impl ElasticOutcome {
    /// `true` when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The commit ambiguity window of one interrupted op.
type Window = (Option<Vec<u8>>, Option<Vec<u8>>);

/// Shared traffic bookkeeping across the boundary windows.
#[derive(Default)]
struct Live {
    /// Exact predicted store state outside the ambiguity windows.
    oracle: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Per-key windows of interrupted ops: pre-op vs intended post-op.
    windows: BTreeMap<Vec<u8>, Window>,
    /// Client ids written off as crashed or blocked mid-op.
    crashed: Vec<u32>,
    /// Ops that committed while the migration was in flight.
    committed: usize,
}

fn traffic_key(j: usize) -> Vec<u8> {
    format!("ek-{j:02}").into_bytes()
}

/// What faults are armed for a traffic window.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Armed {
    /// Quiet window: every op must succeed.
    None,
    /// A phase-gated MN kill may fire mid-op.
    MnKill,
    /// The client's crash point is armed.
    CnCrash,
}

/// Runs one elastic cell.
pub fn run_elastic_cell(cell: &ElasticCell, seed: u64) -> ElasticOutcome {
    run_elastic_cell_with_sink(cell, seed, None)
}

/// [`run_elastic_cell`] with a [`TraceSink`] installed for the duration,
/// so the race detector observes the client verbs interleaved with the
/// migrator's fence/copy RPC stream.
pub fn run_elastic_cell_with_sink(
    cell: &ElasticCell,
    seed: u64,
    sink: Option<Arc<dyn TraceSink>>,
) -> ElasticOutcome {
    let start = Instant::now();
    let mut out = ElasticOutcome {
        cell: *cell,
        seed,
        col: 0,
        violations: Vec::new(),
        kill_fired_at_verb: false,
        aborted: false,
        committed_ops: 0,
        epochs: Vec::new(),
        duration_ms: 0,
    };
    if let Err(e) = run_elastic_cell_inner(cell, seed, &mut out, sink) {
        out.violations.push(format!("harness: {e}"));
    }
    out.duration_ms = start.elapsed().as_millis();
    out
}

/// One traffic window: `OPS_PER_WINDOW` updates/searches against the
/// preloaded keys. Returns `true` when the window's op was interrupted by
/// an armed fault (the interrupted client is written off in `live`).
fn run_window(
    client: &mut AcesoClient,
    rng: &mut StdRng,
    live: &mut Live,
    violations: &mut Vec<String>,
    armed: Armed,
) -> bool {
    for opno in 0..OPS_PER_WINDOW {
        let key = traffic_key(rng.gen_range(0..KEYS));
        let prev = live.oracle.get(&key).cloned();
        let window = live.windows.get(&key).cloned();
        // Mutation-heavy mix: reads every third op exercise the
        // mid-migration (possibly degraded/mirrored) read path.
        let (res, intended): (Result<(), StoreError>, Option<Vec<u8>>) = if opno % 3 == 2 {
            match client.search(&key) {
                Ok(got) => {
                    match &window {
                        // An earlier interrupted op left this key
                        // ambiguous; the read pins its collapsed state.
                        Some((pre, post)) => {
                            if got != *pre && got != *post {
                                violations.push(format!(
                                    "key {} outside ambiguity window: got {} allowed {} | {}",
                                    fmt_key(&key),
                                    fmt_state(&got),
                                    fmt_state(pre),
                                    fmt_state(post)
                                ));
                            }
                            live.windows.remove(&key);
                            match &got {
                                Some(v) => live.oracle.insert(key.clone(), v.clone()),
                                None => live.oracle.remove(&key),
                            };
                        }
                        None => {
                            if got != prev {
                                violations.push(format!(
                                    "search({}) returned {} want {}",
                                    fmt_key(&key),
                                    fmt_state(&got),
                                    fmt_state(&prev)
                                ));
                            }
                        }
                    }
                    (Ok(()), None)
                }
                Err(e) => (Err(e), None),
            }
        } else {
            let val = gen_value(rng, b'T');
            (client.update(&key, &val), Some(val))
        };
        match res {
            Ok(()) => {
                if let Some(v) = intended {
                    live.oracle.insert(key.clone(), v);
                    live.windows.remove(&key);
                }
                live.committed += 1;
            }
            Err(StoreError::Shutdown) if armed == Armed::CnCrash => {
                live.windows.insert(key, (prev, intended));
                live.crashed.push(client.id());
                return true;
            }
            Err(StoreError::Rdma(RdmaError::NodeUnreachable(_)))
            | Err(StoreError::RetriesExhausted)
                if armed == Armed::MnKill =>
            {
                // The victim died under the op and nobody has recovered
                // yet: written off as crashed-while-blocked.
                live.windows.insert(key, (prev, intended));
                live.crashed.push(client.id());
                return true;
            }
            Err(e) => {
                violations.push(format!("op {opno} on {}: unexpected error: {e}", fmt_key(&key)));
                return false;
            }
        }
    }
    false
}

#[allow(clippy::too_many_lines)]
fn run_elastic_cell_inner(
    cell: &ElasticCell,
    seed: u64,
    out: &mut ElasticOutcome,
    sink: Option<Arc<dyn TraceSink>>,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let store = AcesoStore::launch(chaos_config()).map_err(|e| format!("launch: {e}"))?;
    if let Some(s) = sink {
        store.cluster.install_trace_sink(s);
    }
    let n = store.cfg.num_mns;

    // ---- Preload ---------------------------------------------------------
    let mut live = Live::default();
    {
        let mut loader = store.client().map_err(|e| format!("loader: {e}"))?;
        for j in 0..KEYS {
            let k = traffic_key(j);
            let v = gen_value(&mut rng, b'A');
            loader
                .insert(&k, &v)
                .map_err(|e| format!("preload {}: {e}", fmt_key(&k)))?;
            live.oracle.insert(k, v);
        }
        // Close (= erasure-code) the open blocks so the copy batches and
        // the parity re-encode have coded stripes to move.
        loader
            .close_open_blocks()
            .map_err(|e| format!("preload close: {e}"))?;
    }
    store.cluster.trace_barrier();
    for _ in 0..2 {
        store.checkpoint_tick().map_err(|e| format!("ckpt: {e}"))?;
    }
    store.cluster.trace_barrier();
    let iv_of = |store: &Arc<AcesoStore>, col: usize| {
        let s = store.server(col);
        s.index.local_index_version(&s.node.region)
    };
    let iv_pre: Vec<u64> = (0..n).map(|c| iv_of(&store, c)).collect();

    // ---- Start the migration ---------------------------------------------
    let col = rng.gen_range(0..n);
    out.col = col;
    let mut mig = match cell.kill {
        ElasticKill::DrainMn => store.begin_drain(col),
        _ => store.begin_join(col),
    }
    .map_err(|e| format!("begin migration: {e}"))?;
    let from = mig.from_node();

    // Fail-fast tuning like the matrix: a blocked op costs milliseconds.
    // The client predates the announce, so it carries a pre-migration
    // placement snapshot into the first windows (the stale-client path).
    let tuning = ClientTuning {
        max_retries: 40,
        index_wait_ms: 5,
        ..ClientTuning::default()
    };
    let mut client = store
        .client_with(tuning)
        .map_err(|e| format!("client: {e}"))?;

    let mut plan: Option<Arc<FaultPlan>> = None;
    let mut prev_epoch = store.placement().epoch();
    let mut handled = false;
    let mut copy_seen = false;

    loop {
        let step = match mig.step() {
            Ok(s) => s,
            Err(e) => {
                out.violations.push(format!("migrator step failed: {e}"));
                break;
            }
        };
        if step == ElasticStep::Done {
            break;
        }

        // Elastic invariant 1 (during): the placement epoch strictly
        // advances at every migrator step.
        let epoch = store.placement().epoch();
        if epoch <= prev_epoch {
            out.violations.push(format!(
                "placement epoch not monotone at {step}: {prev_epoch} -> {epoch}"
            ));
        }
        prev_epoch = epoch;
        out.epochs.push(epoch);

        // The MN kill is armed right after the announce (the join target's
        // id exists from here on), phase-gated to the chosen boundary.
        if step == ElasticStep::Announce && cell.kill != ElasticKill::Cn {
            let victim = match cell.kill {
                ElasticKill::JoinMn => mig.to_node().expect("announced"),
                _ => from,
            };
            let p = FaultPlan::with_rules(vec![FaultRule::new(FaultAction::KillNode)
                .on_node(victim)
                .in_phase(cell.boundary.phase())]);
            client.dm.install_fault_plan(Arc::clone(&p));
            plan = Some(p);
        }
        let window = boundary_of(step);
        if let Some(p) = &plan {
            p.set_phase(window.phase());
        }

        // The kill lands in the first window of its boundary (for Copy:
        // after the first batch, with groups split between the sides).
        let first_of_window = window != ElasticBoundary::Copy || !copy_seen;
        if window == ElasticBoundary::Copy {
            copy_seen = true;
        }
        let at_kill = !handled && window == cell.boundary && first_of_window;
        let armed = match (at_kill, cell.kill) {
            (false, _) => Armed::None,
            (true, ElasticKill::Cn) => Armed::CnCrash,
            (true, _) => Armed::MnKill,
        };
        if armed == Armed::CnCrash {
            client.crash_point = Some(CrashPoint::BeforeCommit);
        }

        let interrupted = run_window(&mut client, &mut rng, &mut live, &mut out.violations, armed);

        if !at_kill {
            continue;
        }
        handled = true;
        match cell.kill {
            ElasticKill::Cn => {
                if !interrupted {
                    out.violations.push("CN crash point never fired".into());
                } else {
                    // CN consistency recovery runs with the migration (and
                    // its dual-write mirror) still in flight.
                    let cli_id = *live.crashed.last().expect("crashed recorded");
                    store.cluster.trace_barrier();
                    let mut revived = store.client_with_id(cli_id);
                    recover_cn(&store, &mut revived)
                        .map_err(|e| format!("recover_cn: {e}"))?;
                    store.cluster.trace_barrier();
                }
                client = store
                    .client_with(tuning)
                    .map_err(|e| format!("post-crash client: {e}"))?;
            }
            ElasticKill::JoinMn | ElasticKill::DrainMn => {
                let victim = match cell.kill {
                    ElasticKill::JoinMn => mig.to_node().expect("announced"),
                    _ => from,
                };
                out.kill_fired_at_verb = plan
                    .as_ref()
                    .is_some_and(|p| p.fired().iter().any(|f| f.action == FaultAction::KillNode));
                // Post-publish the source holds nothing: a traffic verb
                // addressed to it means a client resolved through a
                // retired column.
                let retired_source = cell.kill == ElasticKill::DrainMn
                    && matches!(cell.boundary, ElasticBoundary::Publish | ElasticBoundary::Free);
                if retired_source && out.kill_fired_at_verb {
                    out.violations
                        .push("client verb reached the retired source post-publish".into());
                }
                if !out.kill_fired_at_verb {
                    // The client never addressed the victim in this window
                    // (stale snapshot, or a retired source): kill directly
                    // at the boundary. Killing through the directory keeps
                    // the server's liveness flag in sync when the victim
                    // is the column's serving node.
                    let serves_col = store.directory().node_of(col) == victim;
                    let was_alive = if serves_col {
                        store.kill_mn(col)
                    } else {
                        store.cluster.kill_node(victim)
                    };
                    // Only an already-drained source may ignore the kill.
                    let drained_source = cell.kill == ElasticKill::DrainMn
                        && cell.boundary == ElasticBoundary::Free;
                    if !(was_alive || drained_source) {
                        out.violations
                            .push(format!("kill of {victim:?} reported node already dead"));
                    }
                }
                // ---- Tiered response ------------------------------------
                // Pre-publish: abort first (placement reverts to the
                // directory, the half-filled target retires, the fences
                // drop) so CN repair does not dual-write into a dead
                // mirror. Then CN consistency, then MN recovery.
                if !mig.published() {
                    mig.abort();
                    out.aborted = true;
                }
                store.cluster.trace_barrier();
                if interrupted {
                    let cli_id = *live.crashed.last().expect("crashed recorded");
                    let mut revived = store.client_with_id(cli_id);
                    recover_cn(&store, &mut revived)
                        .map_err(|e| format!("recover_cn: {e}"))?;
                    store.cluster.trace_barrier();
                }
                let col_dead = store
                    .cluster
                    .node(store.directory().node_of(col))
                    .is_err();
                if col_dead {
                    recover_mn(&store, col).map_err(|e| format!("recover_mn: {e}"))?;
                    store.cluster.trace_barrier();
                }
                client = store
                    .client_with(tuning)
                    .map_err(|e| format!("post-kill client: {e}"))?;
            }
        }
    }

    // ---- Post-fault liveness ---------------------------------------------
    // One quiet window after the migration completed (or aborted): every
    // op must succeed against the settled membership.
    run_window(&mut client, &mut rng, &mut live, &mut out.violations, Armed::None);
    drop(client);
    store.cluster.trace_barrier();

    out.committed_ops = live.committed;
    if live.committed == 0 {
        out.violations
            .push("no client op committed during the migration".into());
    }

    // ---- Invariants ------------------------------------------------------
    let mut sweep = store.client().map_err(|e| format!("sweep client: {e}"))?;

    // 1. Oracle agreement through a *fresh* client (its snapshot excludes
    //    retired nodes), with ambiguity windows on interrupted keys. This
    //    doubles as the readability half of elastic invariant 2: a KV
    //    whose only copy sat on a retired column cannot read back.
    for (k, v) in &live.oracle {
        match sweep.search(k) {
            Ok(got) => {
                let ok = match live.windows.get(k) {
                    Some((pre, post)) => got == *pre || got == *post,
                    None => got.as_ref() == Some(v),
                };
                if !ok {
                    out.violations.push(format!(
                        "oracle mismatch on {}: got {} want {}",
                        fmt_key(k),
                        fmt_state(&got),
                        fmt_state(&Some(v.clone()))
                    ));
                }
            }
            Err(e) => out
                .violations
                .push(format!("oracle search {}: {e}", fmt_key(k))),
        }
    }

    // 2. Meta-lock liveness on every interrupted key: a probe write must
    //    get through (breaking any lock a crashed client abandoned).
    let probe_keys: Vec<Vec<u8>> = live.windows.keys().cloned().collect();
    for k in &probe_keys {
        let probe = gen_value(&mut rng, b'P');
        match sweep.insert(k, &probe) {
            Ok(()) => match sweep.search(k) {
                Ok(Some(got)) if got == probe => {}
                Ok(got) => out.violations.push(format!(
                    "probe readback mismatch on {}: got {}",
                    fmt_key(k),
                    fmt_state(&got)
                )),
                Err(e) => out
                    .violations
                    .push(format!("probe readback {}: {e}", fmt_key(k))),
            },
            Err(e) => out.violations.push(format!(
                "probe insert on {} blocked (stale meta lock?): {e}",
                fmt_key(k)
            )),
        }
    }

    // 3. Index-Version monotonicity across the migration + kill +
    //    recovery. Columns are stable across migrations (the directory
    //    re-homes them), so the pre/post comparison is per-column.
    for (c, pre) in iv_pre.iter().enumerate() {
        let post = iv_of(&store, c);
        if post < *pre {
            out.violations
                .push(format!("index version regressed on col {c}: {pre} -> {post}"));
        }
    }

    // 4. Parity-stripe consistency after the move (and any recovery).
    if let Err(e) = sweep.flush_bitmaps() {
        out.violations.push(format!("final flush: {e}"));
    }
    store.cluster.trace_barrier();
    match scrub(&store) {
        Ok(r) if r.is_clean() => {}
        Ok(r) => out.violations.push(format!("scrub dirty: {r:?}")),
        Err(e) => out.violations.push(format!("scrub: {e}")),
    }

    // 5. Placement-epoch monotonicity across the whole cell.
    let final_epoch = store.placement().epoch();
    if final_epoch < prev_epoch {
        out.violations.push(format!(
            "placement epoch regressed after recovery: {prev_epoch} -> {final_epoch}"
        ));
    }

    // 6. No KV readable only via a retired column: every retired node is
    //    dead, no directory entry serves one, and the migration closed.
    //    (Invariant 1's fresh-client sweep proved the oracle survives
    //    without them.)
    let snap = store.placement().snapshot();
    if snap.migration.is_some() {
        out.violations.push("migration left open on the placement map".into());
    }
    for &r in &snap.retired {
        if store.cluster.node(r).is_ok() {
            out.violations.push(format!("retired node {r:?} still alive"));
        }
        for c in 0..n {
            if store.directory().node_of(c) == r {
                out.violations
                    .push(format!("directory serves col {c} from retired node {r:?}"));
            }
        }
    }
    if out.aborted {
        if snap.retired.contains(&from) {
            out.violations
                .push("aborted migration retired its source".into());
        }
    } else if !snap.retired.contains(&from) {
        out.violations
            .push("completed migration did not retire its source".into());
    }
    let degraded = store.degraded_columns();
    if !degraded.is_empty() {
        out.violations
            .push(format!("degraded windows left open: {degraded:?}"));
    }

    store.shutdown();
    Ok(())
}

/// Everything one `chaos elastic` run produced.
#[derive(Clone, Debug)]
pub struct ElasticReportCli {
    /// The master seed (per-cell seeds derive from it).
    pub seed: u64,
    /// Per-cell outcomes, in matrix order.
    pub outcomes: Vec<ElasticOutcome>,
}

impl ElasticReportCli {
    /// `true` when every cell held every invariant.
    pub fn clean(&self) -> bool {
        self.outcomes.iter().all(ElasticOutcome::ok)
    }

    /// Renders the run summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let failed = self.outcomes.iter().filter(|o| !o.ok()).count();
        let committed: usize = self.outcomes.iter().map(|o| o.committed_ops).sum();
        let verb_kills = self.outcomes.iter().filter(|o| o.kill_fired_at_verb).count();
        let aborts = self.outcomes.iter().filter(|o| o.aborted).count();
        s.push_str(&format!(
            "elastic report: seed {:#x}\n  {} cells, {} failed, {} committed ops under migration, {} mid-op verb kills, {} aborts\n",
            self.seed,
            self.outcomes.len(),
            failed,
            committed,
            verb_kills,
            aborts
        ));
        for o in self.outcomes.iter().filter(|o| !o.ok()) {
            s.push_str(&format!("  cell {} (seed {:#x}, col {}):\n", o.cell, o.seed, o.col));
            for v in &o.violations {
                s.push_str(&format!("    - {v}\n"));
            }
        }
        s.push_str(if self.clean() {
            "  every kill-mid-rebalance cell held its invariants\n"
        } else {
            "  ELASTIC AXIS FOUND PROBLEMS (see above)\n"
        });
        s
    }
}

/// Runs the full 15-cell matrix with per-cell seeds derived from `seed`.
/// `progress` is called after each cell (CLI verbosity hook).
pub fn run_elastic_matrix(seed: u64, mut progress: impl FnMut(&ElasticOutcome)) -> ElasticReportCli {
    let cells = elastic_matrix();
    let seeds = cell_seeds(seed, cells.len());
    let outcomes = cells
        .iter()
        .zip(seeds)
        .map(|(cell, cell_seed)| {
            let out = run_elastic_cell(cell, cell_seed);
            progress(&out);
            out
        })
        .collect();
    ElasticReportCli { seed, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The joining node dies right after the first copy batch: the
    /// migration aborts, nothing needs recovery, and all invariants hold.
    #[test]
    fn join_target_killed_mid_copy_aborts_clean() {
        let cell = ElasticCell {
            kill: ElasticKill::JoinMn,
            boundary: ElasticBoundary::Copy,
        };
        let out = run_elastic_cell(&cell, crate::DEFAULT_SEED);
        assert!(out.ok(), "{:?}", out.violations);
        assert!(out.aborted);
        assert!(out.committed_ops > 0);
    }

    /// The draining source dies at the announce boundary: abort + ordinary
    /// MN recovery rebuild the column.
    #[test]
    fn drain_source_killed_at_announce_recovers() {
        let cell = ElasticCell {
            kill: ElasticKill::DrainMn,
            boundary: ElasticBoundary::Announce,
        };
        let out = run_elastic_cell(&cell, crate::DEFAULT_SEED);
        assert!(out.ok(), "{:?}", out.violations);
        assert!(out.aborted);
    }

    /// A client crash at the publish boundary: CN recovery runs against
    /// the just-republished column and the migration still completes.
    #[test]
    fn cn_crash_at_publish_completes_migration() {
        let cell = ElasticCell {
            kill: ElasticKill::Cn,
            boundary: ElasticBoundary::Publish,
        };
        let out = run_elastic_cell(&cell, crate::DEFAULT_SEED);
        assert!(out.ok(), "{:?}", out.violations);
        assert!(!out.aborted, "CN crashes never abort the migration");
    }

    /// Post-publish the drained source must receive no client verbs: the
    /// phase-gated kill rule stays silent and the direct kill is a no-op
    /// at the free boundary.
    #[test]
    fn retired_source_receives_no_client_verbs() {
        for boundary in [ElasticBoundary::Publish, ElasticBoundary::Free] {
            let cell = ElasticCell {
                kill: ElasticKill::DrainMn,
                boundary,
            };
            let out = run_elastic_cell(&cell, crate::DEFAULT_SEED);
            assert!(out.ok(), "{}: {:?}", cell, out.violations);
            assert!(!out.kill_fired_at_verb, "{cell}: verb reached retired source");
            assert!(!out.aborted);
        }
    }

    /// Same seed, same schedule, same outcome.
    #[test]
    fn elastic_cell_is_deterministic() {
        let cell = ElasticCell {
            kill: ElasticKill::JoinMn,
            boundary: ElasticBoundary::Reencode,
        };
        let a = run_elastic_cell(&cell, 77);
        let b = run_elastic_cell(&cell, 77);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.committed_ops, b.committed_ops);
        assert_eq!(a.kill_fired_at_verb, b.kill_fired_at_verb);
    }
}
