//! Executes one crash-matrix cell against a live store and checks the
//! post-conditions.
//!
//! Each cell runs the same script: launch a store, preload it (optionally
//! ageing it into a reclamation-relevant state), arm the cell's injection
//! and kill, run the operation, drive tiered recovery, then check four
//! invariants:
//!
//! 1. **Oracle agreement** — every surviving key reads back exactly the
//!    value a `HashMap` oracle predicts; the injected key may be in either
//!    its pre-op or intended post-op state (the commit protocol's allowed
//!    ambiguity window), never anything else.
//! 2. **Meta-lock liveness** — a probe INSERT on the injected key must
//!    succeed (breaking any lock the crashed client abandoned) and read
//!    back.
//! 3. **Index-Version monotonicity** — no column's Index Version moves
//!    backwards across kill + recovery.
//! 4. **Parity consistency** — [`aceso_core::scrub()`] reports every
//!    parity equation and delta pair clean after full recovery.

use crate::cell::{Cell, InjectionSite, KillTiming, OpType, ReclaimState};
use aceso_core::client::CrashPoint;
use aceso_core::config::unpack_col;
use aceso_core::{
    recover_cn, recover_mn, recover_mn_with, scrub, AcesoClient, AcesoConfig, AcesoStore,
    ClientTuning, StoreError,
};
use aceso_index::{fingerprint, route_hash, RemoteIndex};
use aceso_rdma::{FaultAction, FaultPlan, FaultRule, RdmaError, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Store configuration for matrix cells: the `small()` topology shrunk
/// (fewer/smaller blocks, fewer index groups) so a full launch → preload →
/// crash → recover → scrub cycle stays well under a second.
pub fn chaos_config() -> AcesoConfig {
    AcesoConfig {
        block_size: 16 << 10,
        num_arrays: 4,
        num_delta: 12,
        index_groups: 128,
        bitmap_flush_every: 16,
        ..AcesoConfig::small()
    }
}

/// Human-readable labels of the four invariant classes, indexed like
/// [`CellPhases::invariants_ms`].
pub const INVARIANT_CLASSES: [&str; 4] = [
    "oracle-agreement",
    "meta-lock-liveness",
    "iv-monotonicity",
    "parity-scrub",
];

/// Wall-clock breakdown of one cell run, summed by the sweep summary so
/// slow invariant checks are visible without profiling.
#[derive(Clone, Copy, Debug, Default)]
pub struct CellPhases {
    /// Store launch, preload, and optional ageing.
    pub setup_ms: f64,
    /// The two checkpoint rounds.
    pub ckpt_ms: f64,
    /// Arming + running the operation (includes a pre-op kill/recovery
    /// when the cell's kill timing asks for one).
    pub op_ms: f64,
    /// Post-crash tiered recovery (CN consistency, then MN tiers).
    pub recovery_ms: f64,
    /// Per-invariant-class check time, indexed by [`INVARIANT_CLASSES`].
    pub invariants_ms: [f64; 4],
}

/// What one cell run observed.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell that ran.
    pub cell: Cell,
    /// The seed its schedule was derived from.
    pub seed: u64,
    /// Invariant violations (empty = the cell passed).
    pub violations: Vec<String>,
    /// Whether the armed injection actually fired.
    pub injection_fired: bool,
    /// Whether the home MN actually died.
    pub mn_killed: bool,
    /// Whether the client crashed (or was written off as blocked) mid-op.
    pub client_crashed: bool,
    /// Wall-clock cost of the cell.
    pub duration_ms: u128,
    /// Where that wall-clock went.
    pub phases: CellPhases,
}

impl CellOutcome {
    /// `true` when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs one cell. Infrastructure failures (launch, preload, recovery
/// errors) are reported as violations too: a cell that cannot even set up
/// is a finding, not a skip.
pub fn run_cell(cell: &Cell, seed: u64) -> CellOutcome {
    run_cell_with_sink(cell, seed, None)
}

/// [`run_cell`] with a [`TraceSink`] installed on the store's cluster for
/// the duration of the cell, so a race detector observes every verb the
/// schedule issues. The runner marks its phase boundaries (preload done,
/// checkpoints done, crash quiesced, recovery done, pre-scrub) with
/// [`aceso_rdma::Cluster::trace_barrier`] — the membership-service
/// quiescence points Aceso's recovery protocol (§3.4) relies on. Barriers
/// are no-ops when no sink is installed, so `run_cell` pays nothing.
pub fn run_cell_with_sink(
    cell: &Cell,
    seed: u64,
    sink: Option<Arc<dyn TraceSink>>,
) -> CellOutcome {
    let start = Instant::now();
    let mut out = CellOutcome {
        cell: *cell,
        seed,
        violations: Vec::new(),
        injection_fired: false,
        mn_killed: false,
        client_crashed: false,
        duration_ms: 0,
        phases: CellPhases::default(),
    };
    if let Err(e) = run_cell_inner(cell, seed, &mut out, sink) {
        out.violations.push(format!("harness: {e}"));
    }
    out.duration_ms = start.elapsed().as_millis();
    out
}

/// Deterministic value generator: length and bytes come from the cell's
/// seeded RNG, the first byte tags the generation for readable mismatches.
pub(crate) fn gen_value(rng: &mut StdRng, tag: u8) -> Vec<u8> {
    let len = rng.gen_range(24usize..96);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v[0] = tag;
    v
}

pub(crate) fn fmt_key(k: &[u8]) -> String {
    String::from_utf8_lossy(k).into_owned()
}

/// Brute-forces two keys with equal fingerprint, equal home column, and
/// equal primary bucket group, so a SEARCH of the second must step past
/// the first's slot in the candidate scan (a true fp collision, not a
/// synthetic one). Coordinates already taken by preload keys are skipped,
/// leaving the shared bucket holding exactly the two twins.
fn collision_twins(store: &Arc<AcesoStore>) -> Result<(Vec<u8>, Vec<u8>), String> {
    let layout = store.map.index;
    let n = store.cfg.num_mns as u64;
    let coord = |k: &[u8]| (fingerprint(k), route_hash(k) % n, layout.buckets_for(k)[0].0);
    let mut seen: BTreeMap<(u8, u64, u64), Vec<u8>> = BTreeMap::new();
    for i in 0..36 {
        seen.insert(coord(format!("key-{i:03}").as_bytes()), Vec::new());
    }
    for i in 0..12 {
        seen.insert(coord(format!("aged-{i:03}").as_bytes()), Vec::new());
    }
    for i in 0..100_000u32 {
        let k = format!("twin-{i:05}").into_bytes();
        if let Some(prev) = seen.get(&coord(&k)) {
            if !prev.is_empty() {
                return Ok((prev.clone(), k)); // Empty sentinel = preload coordinate.
            }
        } else {
            seen.insert(coord(&k), k);
        }
    }
    Err("no colliding twin pair in 100k candidates".into())
}

/// Column holding the KV block of twin `key`. The twin pair excludes
/// preload coordinates and the earlier twin is inserted first, so the
/// first fingerprint match in its bucket is the twin itself.
fn twin_kv_col(store: &Arc<AcesoStore>, key: &[u8]) -> Result<usize, String> {
    let col = (route_hash(key) % store.cfg.num_mns as u64) as usize;
    let index = RemoteIndex::new(store.directory().node_of(col), store.map.index);
    let dm = store.cluster.background_client();
    let scan = index
        .scan(&dm, key, fingerprint(key))
        .map_err(|e| format!("twin scan: {e}"))?;
    let slot = scan.matches.first().ok_or("twin slot missing from index")?;
    Ok(unpack_col(slot.atomic.addr48).0)
}

pub(crate) fn fmt_state(s: &Option<Vec<u8>>) -> String {
    match s {
        None => "absent".into(),
        Some(v) => format!("{}…[{}]", fmt_key(&v[..v.len().min(8)]), v.len()),
    }
}

/// Milliseconds since `t`, resetting `t` to now (phase-clock helper).
fn take_ms(t: &mut Instant) -> f64 {
    let e = t.elapsed().as_secs_f64() * 1e3;
    *t = Instant::now();
    e
}

fn run_cell_inner(
    cell: &Cell,
    seed: u64,
    out: &mut CellOutcome,
    sink: Option<Arc<dyn TraceSink>>,
) -> Result<(), String> {
    let mut clock = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let store = AcesoStore::launch(chaos_config()).map_err(|e| format!("launch: {e}"))?;
    if let Some(s) = sink {
        store.cluster.install_trace_sink(s);
    }
    let n = store.cfg.num_mns;

    // The op client fails fast when a column dies so a blocked operation
    // costs a cell milliseconds, not the production 10 s grace window.
    // Budgets multiply: every commit retry re-enters the index wait, so
    // a blocked op costs at most ~max_retries × index_wait_ms.
    let tuning = ClientTuning {
        max_retries: 40,
        index_wait_ms: 5,
        ..ClientTuning::default()
    };
    let mut client = store
        .client_with(tuning)
        .map_err(|e| format!("client: {e}"))?;

    // ---- Preload ---------------------------------------------------------
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let preload = |client: &mut AcesoClient,
                       oracle: &mut BTreeMap<Vec<u8>, Vec<u8>>,
                       rng: &mut StdRng,
                       prefix: &str,
                       count: usize|
     -> Result<(), String> {
        for i in 0..count {
            let k = format!("{prefix}-{i:03}").into_bytes();
            let v = gen_value(rng, b'A');
            client
                .insert(&k, &v)
                .map_err(|e| format!("preload {}: {e}", fmt_key(&k)))?;
            oracle.insert(k, v);
        }
        Ok(())
    };
    match cell.reclaim {
        ReclaimState::Fresh => preload(&mut client, &mut oracle, &mut rng, "key", 24)?,
        ReclaimState::Aged => {
            preload(&mut client, &mut oracle, &mut rng, "key", 36)?;
            client
                .close_open_blocks()
                .map_err(|e| format!("preload close: {e}"))?;
            for i in (0..36).step_by(3) {
                let k = format!("key-{i:03}").into_bytes();
                client
                    .delete(&k)
                    .map_err(|e| format!("preload delete {}: {e}", fmt_key(&k)))?;
                oracle.remove(&k);
            }
            client
                .flush_bitmaps()
                .map_err(|e| format!("preload flush: {e}"))?;
            preload(&mut client, &mut oracle, &mut rng, "aged", 12)?;
        }
    }
    // Colliding-fingerprint cells plant the twin pair from a throwaway
    // client, so the op client runs cache-cold and must walk the candidate
    // scan past the earlier twin instead of short-circuiting on its cache.
    let twins = if cell.op == OpType::SearchCollide {
        let (a, b) = collision_twins(&store)?;
        let mut planter = store.client().map_err(|e| format!("planter: {e}"))?;
        for k in [&a, &b] {
            let v = gen_value(&mut rng, b'A');
            planter
                .insert(k, &v)
                .map_err(|e| format!("plant twin {}: {e}", fmt_key(k)))?;
            oracle.insert(k.clone(), v);
        }
        // Close (= erasure-code) every open block before the checkpoint
        // rounds: the index-tier-only window loses closed, checkpointed
        // blocks, while open blocks — and every closed block sharing a
        // stripe array with one — are reconstructed during the Index
        // tier, which would leave nothing degraded to read.
        planter
            .close_open_blocks()
            .map_err(|e| format!("plant close: {e}"))?;
        client
            .close_open_blocks()
            .map_err(|e| format!("preload close: {e}"))?;
        Some((a, b))
    } else {
        None
    };
    store.cluster.trace_barrier();
    out.phases.setup_ms = take_ms(&mut clock);

    // Two checkpoint rounds so every column has a restorable checkpoint
    // and a non-trivial Index Version to regress from.
    for _ in 0..2 {
        store.checkpoint_tick().map_err(|e| format!("ckpt: {e}"))?;
    }
    store.cluster.trace_barrier();
    let iv_of = |store: &Arc<AcesoStore>, col: usize| {
        let s = store.server(col);
        s.index.local_index_version(&s.node.region)
    };
    let iv_pre: Vec<u64> = (0..n).map(|c| iv_of(&store, c)).collect();
    out.phases.ckpt_ms = take_ms(&mut clock);

    // ---- Arm the cell ----------------------------------------------------
    let op_key: Vec<u8> = match (cell.op, &twins) {
        (OpType::Insert, _) => b"probe-new".to_vec(),
        (OpType::SearchCollide, Some((_, b))) => b.clone(),
        _ => {
            let keys: Vec<&Vec<u8>> = oracle.keys().collect();
            keys[rng.gen_range(0..keys.len())].clone()
        }
    };
    let new_val = gen_value(&mut rng, b'N');
    // The kill axis normally aims at the op key's home column; for the
    // collision cells it aims at the column holding the *earlier* twin's
    // KV block, so degraded kills turn that candidate into a
    // reconstructed read that must classify as a collision, not a
    // tombstone.
    let home_col = match &twins {
        Some((a, _)) => twin_kv_col(&store, a)?,
        None => (route_hash(&op_key) % n as u64) as usize,
    };
    let home_node = store.directory().node_of(home_col);

    match cell.kill {
        KillTiming::BeforeOp => {
            if !store.kill_mn(home_col) {
                out.violations.push("kill_mn reported node already dead".into());
            }
            out.mn_killed = true;
            recover_mn(&store, home_col).map_err(|e| format!("recover_mn(pre): {e}"))?;
        }
        KillTiming::BeforeOpDegraded => {
            if !store.kill_mn(home_col) {
                out.violations.push("kill_mn reported node already dead".into());
            }
            out.mn_killed = true;
            recover_mn_with(&store, home_col, false)
                .map_err(|e| format!("recover_mn(index tier): {e}"))?;
        }
        KillTiming::None | KillTiming::AtVerb { .. } => {}
    }
    store.cluster.trace_barrier();

    let mut rules = Vec::new();
    if let InjectionSite::Verb { kind, skip } = cell.site {
        rules.push(FaultRule::new(FaultAction::Fail).on_kind(kind).after(skip));
    }
    if let KillTiming::AtVerb { skip } = cell.kill {
        rules.push(
            FaultRule::new(FaultAction::KillNode)
                .on_node(home_node)
                .after(skip),
        );
    }
    let plan = (!rules.is_empty()).then(|| FaultPlan::with_rules(rules));
    if let Some(p) = &plan {
        client.dm.install_fault_plan(Arc::clone(p));
    }
    if let InjectionSite::Client(cp) = cell.site {
        client.crash_point = Some(cp);
    }

    // ---- Run the operation -----------------------------------------------
    // WhileMetaLocked only triggers on a slot-version rollover, so those
    // cells repeat the mutation until the version wraps and the crash
    // fires (a SEARCH never takes the lock and legitimately survives).
    let needs_rollover = cell.site == InjectionSite::Client(CrashPoint::WhileMetaLocked)
        && matches!(cell.op, OpType::Insert | OpType::Update | OpType::Delete);
    let attempts = if needs_rollover { 300 } else { 1 };
    let kill_planned = cell.kill != KillTiming::None;

    // The commit ambiguity window: (pre-op state, intended post-op state).
    type Window = (Option<Vec<u8>>, Option<Vec<u8>>);
    let mut ambiguous: Option<Window> = None;
    let mut crashed_at_point = false;
    let mut crashed_at_verb = false;
    let mut blocked = false;

    for attempt in 0..attempts {
        let prev = oracle.get(&op_key).cloned();
        let (res, intended): (Result<(), StoreError>, Option<Vec<u8>>) = match cell.op {
            OpType::Insert => (client.insert(&op_key, &new_val), Some(new_val.clone())),
            OpType::Update => (client.update(&op_key, &new_val), Some(new_val.clone())),
            OpType::Delete => {
                if needs_rollover && prev.is_none() {
                    // Alternate with re-inserts so every delete has a live
                    // target while the version climbs toward rollover.
                    (client.insert(&op_key, &new_val), Some(new_val.clone()))
                } else {
                    (client.delete(&op_key).map(|_| ()), None)
                }
            }
            OpType::Search | OpType::SearchCollide => match client.search(&op_key) {
                Ok(got) => {
                    if got != prev {
                        out.violations.push(format!(
                            "search({}) returned {} want {}",
                            fmt_key(&op_key),
                            fmt_state(&got),
                            fmt_state(&prev)
                        ));
                    }
                    (Ok(()), prev.clone())
                }
                Err(e) => (Err(e), prev.clone()),
            },
        };
        match res {
            Ok(()) => {
                match &intended {
                    Some(v) => oracle.insert(op_key.clone(), v.clone()),
                    None => oracle.remove(&op_key),
                };
                if !needs_rollover && attempt + 1 == attempts {
                    break;
                }
            }
            Err(StoreError::Shutdown) => {
                crashed_at_point = true;
                ambiguous = Some((prev, intended));
                break;
            }
            Err(StoreError::Rdma(RdmaError::Injected { .. })) => {
                crashed_at_verb = true;
                ambiguous = Some((prev, intended));
                break;
            }
            Err(StoreError::Rdma(RdmaError::NodeUnreachable(_)))
            | Err(StoreError::RetriesExhausted)
                if kill_planned =>
            {
                // The home MN died under the op and nobody has recovered it
                // yet: the client is written off as crashed-while-blocked.
                blocked = true;
                ambiguous = Some((prev, intended));
                break;
            }
            Err(e) => {
                out.violations
                    .push(format!("{} op: unexpected error: {e}", cell.op));
                break;
            }
        }
    }

    let crashed = crashed_at_point || crashed_at_verb || blocked;
    out.client_crashed = crashed;
    let kill_fired_at_verb = plan.as_ref().is_some_and(|p| {
        p.fired()
            .iter()
            .any(|f| f.action == FaultAction::KillNode)
    });
    if kill_fired_at_verb {
        out.mn_killed = true;
    }
    out.injection_fired = match cell.site {
        InjectionSite::None => false,
        InjectionSite::Client(_) => crashed_at_point,
        InjectionSite::Verb { .. } => plan
            .as_ref()
            .is_some_and(|p| p.fired().iter().any(|f| f.action == FaultAction::Fail)),
    };

    out.phases.op_ms = take_ms(&mut clock);

    // ---- Tiered recovery (§3.4: CN consistency first, then MN) -----------
    // The crash is quiesced before recovery begins (the membership service
    // fences the failed epoch), and recovery completes before the sweep:
    // both are barrier edges in the verb trace.
    let cli_id = client.id();
    drop(client);
    store.cluster.trace_barrier();
    if crashed {
        let mut revived = store.client_with_id(cli_id);
        recover_cn(&store, &mut revived).map_err(|e| format!("recover_cn: {e}"))?;
    }
    if kill_fired_at_verb {
        recover_mn(&store, home_col).map_err(|e| format!("recover_mn: {e}"))?;
    }
    if cell.kill == KillTiming::BeforeOpDegraded {
        // The op ran against an index-only replacement; finish the Block
        // tier so the parity invariant is checkable.
        recover_mn_with(&store, home_col, true)
            .map_err(|e| format!("recover_mn(block tier): {e}"))?;
    }
    store.cluster.trace_barrier();
    out.phases.recovery_ms = take_ms(&mut clock);

    // ---- Invariants -------------------------------------------------------
    let mut sweep = store.client().map_err(|e| format!("sweep client: {e}"))?;

    // 1. Oracle agreement, with the ambiguity window on the injected key.
    for (k, v) in &oracle {
        if *k == op_key {
            continue;
        }
        match sweep.search(k) {
            Ok(Some(got)) if got == *v => {}
            Ok(got) => out.violations.push(format!(
                "oracle mismatch on {}: got {} want {}",
                fmt_key(k),
                fmt_state(&got),
                fmt_state(&Some(v.clone()))
            )),
            Err(e) => out
                .violations
                .push(format!("oracle search {}: {e}", fmt_key(k))),
        }
    }
    match sweep.search(&op_key) {
        Ok(got) => {
            let allowed: Vec<Option<Vec<u8>>> = match &ambiguous {
                Some((pre, post)) => vec![pre.clone(), post.clone()],
                None => vec![oracle.get(&op_key).cloned()],
            };
            if !allowed.contains(&got) {
                out.violations.push(format!(
                    "op key {} outside ambiguity window: got {} allowed {}",
                    fmt_key(&op_key),
                    fmt_state(&got),
                    allowed
                        .iter()
                        .map(fmt_state)
                        .collect::<Vec<_>>()
                        .join(" | ")
                ));
            }
        }
        Err(e) => out
            .violations
            .push(format!("op key search {}: {e}", fmt_key(&op_key))),
    }
    match sweep.search(b"never-inserted-key") {
        Ok(None) => {}
        Ok(got) => out
            .violations
            .push(format!("phantom key materialized: {}", fmt_state(&got))),
        Err(e) => out.violations.push(format!("phantom key search: {e}")),
    }
    out.phases.invariants_ms[0] = take_ms(&mut clock);

    // 2. Meta-lock liveness: a probe write on the injected key must get
    // through (breaking any lock the crashed client abandoned).
    let probe = gen_value(&mut rng, b'P');
    match sweep.insert(&op_key, &probe) {
        Ok(()) => match sweep.search(&op_key) {
            Ok(Some(got)) if got == probe => {}
            Ok(got) => out.violations.push(format!(
                "probe readback mismatch: got {}",
                fmt_state(&got)
            )),
            Err(e) => out.violations.push(format!("probe readback: {e}")),
        },
        Err(e) => out
            .violations
            .push(format!("probe insert blocked (stale meta lock?): {e}")),
    }
    out.phases.invariants_ms[1] = take_ms(&mut clock);

    // 3. Index-Version monotonicity across kill + recovery.
    for (col, pre) in iv_pre.iter().enumerate() {
        let post = iv_of(&store, col);
        if post < *pre {
            out.violations.push(format!(
                "index version regressed on col {col}: {pre} -> {post}"
            ));
        }
    }
    out.phases.invariants_ms[2] = take_ms(&mut clock);

    // 4. Parity-stripe consistency after full recovery.
    if let Err(e) = sweep.flush_bitmaps() {
        out.violations.push(format!("final flush: {e}"));
    }
    store.cluster.trace_barrier();
    match scrub(&store) {
        Ok(r) if r.is_clean() => {}
        Ok(r) => out.violations.push(format!("scrub dirty: {r:?}")),
        Err(e) => out.violations.push(format!("scrub: {e}")),
    }
    out.phases.invariants_ms[3] = take_ms(&mut clock);

    store.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, InjectionSite, KillTiming, OpType, ReclaimState};
    use aceso_rdma::VerbKind;

    #[test]
    fn quiet_cell_passes() {
        let cell = Cell {
            op: OpType::Update,
            site: InjectionSite::None,
            kill: KillTiming::None,
            reclaim: ReclaimState::Fresh,
        };
        let out = run_cell(&cell, 11);
        assert!(out.ok(), "{:?}", out.violations);
        assert!(!out.injection_fired);
        assert!(!out.mn_killed);
        assert!(!out.client_crashed);
    }

    #[test]
    fn verb_fault_crashes_client_and_recovers() {
        let cell = Cell {
            op: OpType::Update,
            site: InjectionSite::Verb {
                kind: VerbKind::Write,
                skip: 0,
            },
            kill: KillTiming::None,
            reclaim: ReclaimState::Fresh,
        };
        let out = run_cell(&cell, 12);
        assert!(out.ok(), "{:?}", out.violations);
        assert!(out.injection_fired);
        assert!(out.client_crashed);
    }

    /// The degraded colliding-fingerprint cell (§3.4.1): the earlier
    /// twin's block is lost (index-tier-only recovery), so its candidate
    /// is read via reconstruction and must classify as a collision the
    /// scan steps past — misreading it as a tombstone made the later
    /// twin's SEARCH return "absent".
    #[test]
    fn degraded_collision_cell_passes() {
        let cell = Cell {
            op: OpType::SearchCollide,
            site: InjectionSite::None,
            kill: KillTiming::BeforeOpDegraded,
            reclaim: ReclaimState::Fresh,
        };
        let out = run_cell(&cell, 5);
        assert!(out.ok(), "{:?}", out.violations);
        assert!(out.mn_killed);
    }

    /// The same twin pair with the column healthy: the collision is
    /// classified off the direct read path.
    #[test]
    fn healthy_collision_cell_passes() {
        let cell = Cell {
            op: OpType::SearchCollide,
            site: InjectionSite::None,
            kill: KillTiming::None,
            reclaim: ReclaimState::Aged,
        };
        let out = run_cell(&cell, 6);
        assert!(out.ok(), "{:?}", out.violations);
        assert!(!out.mn_killed);
    }

    #[test]
    fn same_seed_reproduces_identical_outcome() {
        let cell = Cell {
            op: OpType::Delete,
            site: InjectionSite::Client(aceso_core::client::CrashPoint::BeforeCommit),
            kill: KillTiming::None,
            reclaim: ReclaimState::Aged,
        };
        let a = run_cell(&cell, 99);
        let b = run_cell(&cell, 99);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.injection_fired, b.injection_fired);
        assert_eq!(a.client_crashed, b.client_crashed);
    }
}
