//! `chaos cache` — the stale-index-cache fault axis.
//!
//! The crash matrix arms its faults *inside* one operation; this axis
//! attacks the gap the client index cache opens *between* operations: a
//! cache entry is filled, the node it points at dies (or the client
//! itself crashes with a hot cache), recovery re-homes the data — and
//! only then is the entry used. Before PR 10 nothing exercised that
//! fill→kill→recover→use window end to end.
//!
//! Two kills × the cache-consulting operations:
//!
//! * [`CacheKill::Mn`] — the index column of a cached key is killed
//!   **between cache fill and use**. The victim client then runs one
//!   operation against the dead column through its stale entry (it may
//!   fail fast — that is written off like a blocked client in the
//!   matrix), CN consistency recovery runs if it was interrupted, and MN
//!   recovery rebuilds the column.
//! * [`CacheKill::Cn`] — a client **with a hot cache** crashes at
//!   [`CrashPoint::BeforeCommit`] mid-mutation and CN recovery repairs
//!   its in-flight op.
//!
//! Post-conditions are the matrix invariants (oracle agreement with an
//! ambiguity window on the interrupted key, meta-lock liveness,
//! Index-Version monotonicity, parity scrub) plus the axis-defining one:
//!
//! * **No stale read after recovery** — a *second* client whose cache
//!   was filled before the kill and never touched again until recovery
//!   completed sweeps every key. Each cached slot address on the
//!   recovered column is now wrong or re-homed; every read must still
//!   return exactly the oracle value (the entry must revalidate or
//!   invalidate, never serve the pre-recovery image).

use crate::runner::{chaos_config, fmt_key, fmt_state, gen_value};
use crate::sweep::cell_seeds;
use aceso_core::client::CrashPoint;
use aceso_core::{recover_cn, recover_mn, scrub, AcesoStore, ClientTuning, StoreError};
use aceso_index::route_hash;
use aceso_rdma::{RdmaError, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Preloaded keys (every one cached by both clients before the kill).
const KEYS: usize = 24;

/// A commit ambiguity window: (pre-op state, intended post-op state) of
/// the interrupted key — either side may legitimately survive recovery.
type AmbiguityWindow = (Option<Vec<u8>>, Option<Vec<u8>>);

/// Which participant dies between cache fill and use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheKill {
    /// Kill the index column of the target key after the caches are hot.
    Mn,
    /// Crash the hot-cache client at a protocol crash point mid-op.
    Cn,
}

impl CacheKill {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CacheKill::Mn => "kill-mn",
            CacheKill::Cn => "crash-cn",
        }
    }
}

/// The cache-consulting operation run through the stale entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOp {
    /// SEARCH through the cached slot address (the 1-RTT fast path).
    Search,
    /// UPDATE speculating on the cached Atomic/Meta words.
    Update,
    /// DELETE (tombstone commit) through the cached slot address.
    Delete,
}

impl CacheOp {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOp::Search => "search",
            CacheOp::Update => "update",
            CacheOp::Delete => "delete",
        }
    }

    /// Whether the op mutates (and therefore opens an ambiguity window
    /// when interrupted).
    fn mutates(&self) -> bool {
        !matches!(self, CacheOp::Search)
    }
}

/// One cell of the cache matrix: a kill in the fill→use window × the op
/// that then consumes the stale entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheCell {
    /// Which participant dies.
    pub kill: CacheKill,
    /// The operation run through the stale cache.
    pub op: CacheOp,
}

impl core::fmt::Display for CacheCell {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}@{}", self.kill.label(), self.op.label())
    }
}

/// The full matrix. CN crash points live in the commit path, so the CN
/// kill pairs only with the mutating ops.
pub fn cache_matrix() -> Vec<CacheCell> {
    let mut cells = Vec::with_capacity(5);
    for op in [CacheOp::Search, CacheOp::Update, CacheOp::Delete] {
        cells.push(CacheCell { kill: CacheKill::Mn, op });
    }
    for op in [CacheOp::Update, CacheOp::Delete] {
        cells.push(CacheCell { kill: CacheKill::Cn, op });
    }
    cells
}

/// What one cache cell run observed.
#[derive(Clone, Debug)]
pub struct CacheOutcome {
    /// The cell that ran.
    pub cell: CacheCell,
    /// The seed its schedule was derived from.
    pub seed: u64,
    /// The killed (MN cells) or target (CN cells) index column.
    pub col: usize,
    /// Invariant violations (empty = the cell passed).
    pub violations: Vec<String>,
    /// Entries the sweep client held when the kill landed.
    pub warm_entries: usize,
    /// Whether the victim client's op was interrupted by the fault.
    pub interrupted: bool,
    /// Wall-clock cost of the cell.
    pub duration_ms: u128,
}

impl CacheOutcome {
    /// `true` when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn traffic_key(j: usize) -> Vec<u8> {
    format!("ck-{j:02}").into_bytes()
}

/// Runs one cache cell.
pub fn run_cache_cell(cell: &CacheCell, seed: u64) -> CacheOutcome {
    run_cache_cell_with_sink(cell, seed, None)
}

/// [`run_cache_cell`] with a [`TraceSink`] installed for the duration, so
/// the race detector observes the cached fast-path verbs interleaved with
/// the kill and the recovery stream.
pub fn run_cache_cell_with_sink(
    cell: &CacheCell,
    seed: u64,
    sink: Option<Arc<dyn TraceSink>>,
) -> CacheOutcome {
    let start = Instant::now();
    let mut out = CacheOutcome {
        cell: *cell,
        seed,
        col: 0,
        violations: Vec::new(),
        warm_entries: 0,
        interrupted: false,
        duration_ms: 0,
    };
    if let Err(e) = run_cache_cell_inner(cell, seed, &mut out, sink) {
        out.violations.push(format!("harness: {e}"));
    }
    out.duration_ms = start.elapsed().as_millis();
    out
}

#[allow(clippy::too_many_lines)]
fn run_cache_cell_inner(
    cell: &CacheCell,
    seed: u64,
    out: &mut CacheOutcome,
    sink: Option<Arc<dyn TraceSink>>,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let store = AcesoStore::launch(chaos_config()).map_err(|e| format!("launch: {e}"))?;
    if let Some(s) = sink {
        store.cluster.install_trace_sink(s);
    }
    let n = store.cfg.num_mns;

    // ---- Preload ---------------------------------------------------------
    let keys: Vec<Vec<u8>> = (0..KEYS).map(traffic_key).collect();
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    {
        let mut loader = store.client().map_err(|e| format!("loader: {e}"))?;
        for k in &keys {
            let v = gen_value(&mut rng, b'A');
            loader
                .insert(k, &v)
                .map_err(|e| format!("preload {}: {e}", fmt_key(k)))?;
            oracle.insert(k.clone(), v);
        }
        loader
            .close_open_blocks()
            .map_err(|e| format!("preload close: {e}"))?;
    }
    store.cluster.trace_barrier();
    for _ in 0..2 {
        store.checkpoint_tick().map_err(|e| format!("ckpt: {e}"))?;
    }
    store.cluster.trace_barrier();
    let iv_of = |store: &Arc<AcesoStore>, col: usize| {
        let s = store.server(col);
        s.index.local_index_version(&s.node.region)
    };
    let iv_pre: Vec<u64> = (0..n).map(|c| iv_of(&store, c)).collect();

    // ---- Cache fill ------------------------------------------------------
    // Two hot-cache clients, fail-fast tuned like the matrix. `victim`
    // runs the op through its stale entry; `sweeper` stays idle across
    // the kill and performs the no-stale-read sweep after recovery.
    let tuning = ClientTuning {
        max_retries: 40,
        index_wait_ms: 5,
        ..ClientTuning::default()
    };
    let mut victim = store
        .client_with(tuning)
        .map_err(|e| format!("victim client: {e}"))?;
    let mut sweeper = store
        .client_with(tuning)
        .map_err(|e| format!("sweeper client: {e}"))?;
    for k in &keys {
        for (who, cli) in [("victim", &mut victim), ("sweeper", &mut sweeper)] {
            match cli.search(k) {
                Ok(got) if got.as_ref() == oracle.get(k) => {}
                Ok(got) => out.violations.push(format!(
                    "{who} fill search({}) returned {} want {}",
                    fmt_key(k),
                    fmt_state(&got),
                    fmt_state(&oracle.get(k).cloned())
                )),
                Err(e) => out
                    .violations
                    .push(format!("{who} fill search({}): {e}", fmt_key(k))),
            }
        }
    }
    out.warm_entries = sweeper.cache_len();
    if out.warm_entries == 0 {
        out.violations.push("sweeper cache never filled".into());
    }
    let victim_id = victim.id();

    // The target key's index column is the MN victim, so both clients
    // hold a cached slot address that dies under them.
    let target = keys[rng.gen_range(0..KEYS)].clone();
    let col = (route_hash(&target) % n as u64) as usize;
    out.col = col;

    // ---- Kill between fill and use ---------------------------------------
    store.cluster.trace_barrier();
    if cell.kill == CacheKill::Mn && !store.kill_mn(col) {
        out.violations.push(format!("kill of col {col} found it already dead"));
    }
    if cell.kill == CacheKill::Cn {
        victim.crash_point = Some(CrashPoint::BeforeCommit);
    }
    store.cluster.trace_barrier();

    // ---- The op through the stale entry ----------------------------------
    let prev = oracle.get(&target).cloned();
    let intended: Option<Option<Vec<u8>>> = match cell.op {
        CacheOp::Search => None,
        CacheOp::Update => Some(Some(gen_value(&mut rng, b'U'))),
        CacheOp::Delete => Some(None),
    };
    let res: Result<(), StoreError> = match cell.op {
        CacheOp::Search => victim.search(&target).map(|got| {
            // A successful read against the dead column (degraded path)
            // must already be stale-free.
            if got != prev {
                out.violations.push(format!(
                    "degraded search({}) returned {} want {}",
                    fmt_key(&target),
                    fmt_state(&got),
                    fmt_state(&prev)
                ));
            }
        }),
        CacheOp::Update => {
            let v = intended.clone().flatten().expect("update has a value");
            victim.update(&target, &v)
        }
        CacheOp::Delete => victim.delete(&target).map(|_| ()),
    };
    // The commit ambiguity window of the target key: pre-op vs intended
    // post-op states, open only while an interrupted mutation is pending.
    let mut window: Option<AmbiguityWindow> = None;
    match res {
        Ok(()) => {
            if let Some(post) = intended {
                match post {
                    Some(v) => oracle.insert(target.clone(), v),
                    None => oracle.remove(&target),
                };
            }
            if cell.kill == CacheKill::Cn {
                out.violations.push("CN crash point never fired".into());
            }
        }
        Err(StoreError::Shutdown) if cell.kill == CacheKill::Cn => {
            out.interrupted = true;
            window = Some((prev.clone(), intended.clone().flatten()));
        }
        Err(StoreError::Rdma(RdmaError::NodeUnreachable(_))) | Err(StoreError::RetriesExhausted)
            if cell.kill == CacheKill::Mn =>
        {
            // The victim died under the op and nobody has recovered yet:
            // written off as crashed-while-blocked, like the matrix does.
            out.interrupted = true;
            if cell.op.mutates() {
                window = Some((prev.clone(), intended.clone().flatten()));
            }
        }
        Err(e) => out
            .violations
            .push(format!("op {} on {}: unexpected error: {e}", cell.op.label(), fmt_key(&target))),
    }
    drop(victim);

    // ---- Tiered recovery -------------------------------------------------
    store.cluster.trace_barrier();
    if out.interrupted {
        let mut revived = store.client_with_id(victim_id);
        recover_cn(&store, &mut revived).map_err(|e| format!("recover_cn: {e}"))?;
        store.cluster.trace_barrier();
    }
    if store.cluster.node(store.directory().node_of(col)).is_err() {
        recover_mn(&store, col).map_err(|e| format!("recover_mn: {e}"))?;
        store.cluster.trace_barrier();
    }

    // ---- No stale read after recovery ------------------------------------
    // The axis-defining check: the sweeper's cache was filled before the
    // kill and is consulted for the first time now. Every entry on the
    // recovered column points at pre-recovery memory; each read must
    // revalidate or invalidate it — never serve the old image.
    for k in &keys {
        let want = oracle.get(k).cloned();
        match sweeper.search(k) {
            Ok(got) => {
                let ok = if *k == target {
                    match &window {
                        Some((pre, post)) => got == *pre || got == *post,
                        None => got == want,
                    }
                } else {
                    got == want
                };
                if !ok {
                    out.violations.push(format!(
                        "stale read after recovery on {}: got {} want {}",
                        fmt_key(k),
                        fmt_state(&got),
                        fmt_state(&want)
                    ));
                } else if *k == target && window.is_some() {
                    // The read pinned the interrupted key's collapsed
                    // state; later checks compare against it exactly.
                    match &got {
                        Some(v) => oracle.insert(k.clone(), v.clone()),
                        None => oracle.remove(k),
                    };
                    window = None;
                }
            }
            Err(e) => out
                .violations
                .push(format!("post-recovery search {}: {e}", fmt_key(k))),
        }
    }
    if sweeper.cache_len() == 0 {
        out.violations
            .push("sweeper cache empty after the sweep (caching disabled?)".into());
    }

    // ---- Matrix invariants -----------------------------------------------
    let mut fresh = store.client().map_err(|e| format!("fresh client: {e}"))?;

    // 1. Oracle agreement through a cold cache (double-checks the sweep).
    for k in &keys {
        let want = oracle.get(k).cloned();
        match fresh.search(k) {
            Ok(got) if got == want => {}
            Ok(got) => out.violations.push(format!(
                "oracle mismatch on {}: got {} want {}",
                fmt_key(k),
                fmt_state(&got),
                fmt_state(&want)
            )),
            Err(e) => out
                .violations
                .push(format!("oracle search {}: {e}", fmt_key(k))),
        }
    }

    // 2. Meta-lock liveness on the interrupted key: a probe write must get
    //    through (breaking any lock the written-off client abandoned).
    if out.interrupted {
        let probe = gen_value(&mut rng, b'P');
        match fresh.insert(&target, &probe) {
            Ok(()) => match fresh.search(&target) {
                Ok(Some(got)) if got == probe => {}
                Ok(got) => out.violations.push(format!(
                    "probe readback mismatch on {}: got {}",
                    fmt_key(&target),
                    fmt_state(&got)
                )),
                Err(e) => out
                    .violations
                    .push(format!("probe readback {}: {e}", fmt_key(&target))),
            },
            Err(e) => out.violations.push(format!(
                "probe insert on {} blocked (stale meta lock?): {e}",
                fmt_key(&target)
            )),
        }
    }

    // 3. Index-Version monotonicity across kill + recovery.
    for (c, pre) in iv_pre.iter().enumerate() {
        let post = iv_of(&store, c);
        if post < *pre {
            out.violations
                .push(format!("index version regressed on col {c}: {pre} -> {post}"));
        }
    }

    // 4. Parity-stripe consistency after recovery.
    if let Err(e) = fresh.flush_bitmaps() {
        out.violations.push(format!("final flush: {e}"));
    }
    store.cluster.trace_barrier();
    match scrub(&store) {
        Ok(r) if r.is_clean() => {}
        Ok(r) => out.violations.push(format!("scrub dirty: {r:?}")),
        Err(e) => out.violations.push(format!("scrub: {e}")),
    }
    let degraded = store.degraded_columns();
    if !degraded.is_empty() {
        out.violations
            .push(format!("degraded windows left open: {degraded:?}"));
    }

    store.shutdown();
    Ok(())
}

/// Everything one `chaos cache` run produced.
#[derive(Clone, Debug)]
pub struct CacheReportCli {
    /// The master seed (per-cell seeds derive from it).
    pub seed: u64,
    /// Per-cell outcomes, in matrix order.
    pub outcomes: Vec<CacheOutcome>,
}

impl CacheReportCli {
    /// `true` when every cell held every invariant.
    pub fn clean(&self) -> bool {
        self.outcomes.iter().all(CacheOutcome::ok)
    }

    /// Renders the run summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let failed = self.outcomes.iter().filter(|o| !o.ok()).count();
        let interrupted = self.outcomes.iter().filter(|o| o.interrupted).count();
        let warm: usize = self.outcomes.iter().map(|o| o.warm_entries).sum();
        s.push_str(&format!(
            "cache report: seed {:#x}\n  {} cells, {} failed, {} interrupted ops, {} warm entries at kill time\n",
            self.seed,
            self.outcomes.len(),
            failed,
            interrupted,
            warm
        ));
        for o in self.outcomes.iter().filter(|o| !o.ok()) {
            s.push_str(&format!("  cell {} (seed {:#x}, col {}):\n", o.cell, o.seed, o.col));
            for v in &o.violations {
                s.push_str(&format!("    - {v}\n"));
            }
        }
        s.push_str(if self.clean() {
            "  no stale read survived any fill-kill-recover-use window\n"
        } else {
            "  CACHE AXIS FOUND PROBLEMS (see above)\n"
        });
        s
    }
}

/// Runs the full matrix with per-cell seeds derived from `seed`.
/// `progress` is called after each cell (CLI verbosity hook).
pub fn run_cache_matrix(seed: u64, mut progress: impl FnMut(&CacheOutcome)) -> CacheReportCli {
    let cells = cache_matrix();
    let seeds = cell_seeds(seed, cells.len());
    let outcomes = cells
        .iter()
        .zip(seeds)
        .map(|(cell, cell_seed)| {
            let out = run_cache_cell(cell, cell_seed);
            progress(&out);
            out
        })
        .collect();
    CacheReportCli { seed, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The index column of a cached key dies between fill and use: the
    /// hot-cache SEARCH either degrades correctly or fails fast, MN
    /// recovery rebuilds the column, and the idle hot-cache client reads
    /// nothing stale afterwards.
    #[test]
    fn mn_killed_between_fill_and_use_serves_no_stale_search() {
        let cell = CacheCell {
            kill: CacheKill::Mn,
            op: CacheOp::Search,
        };
        let out = run_cache_cell(&cell, crate::DEFAULT_SEED);
        assert!(out.ok(), "{:?}", out.violations);
        assert!(out.warm_entries > 0, "cache was never hot");
    }

    /// Same window, but the stale entry feeds an UPDATE speculation: the
    /// interrupted mutation collapses inside its ambiguity window and the
    /// post-recovery sweep sees exactly one of its two allowed states.
    #[test]
    fn mn_killed_before_update_recovers_clean() {
        let cell = CacheCell {
            kill: CacheKill::Mn,
            op: CacheOp::Update,
        };
        let out = run_cache_cell(&cell, crate::DEFAULT_SEED);
        assert!(out.ok(), "{:?}", out.violations);
    }

    /// A client with a hot cache crashes at the commit crash point; CN
    /// recovery repairs the in-flight op and the surviving hot-cache
    /// client reads nothing stale.
    #[test]
    fn cn_crash_with_hot_cache_recovers_clean() {
        let cell = CacheCell {
            kill: CacheKill::Cn,
            op: CacheOp::Update,
        };
        let out = run_cache_cell(&cell, crate::DEFAULT_SEED);
        assert!(out.ok(), "{:?}", out.violations);
        assert!(out.interrupted, "the crash point must interrupt the op");
    }

    /// The whole matrix holds its invariants under the default seed (the
    /// profile `chaos sweep --ci` runs).
    #[test]
    fn cache_matrix_is_clean() {
        let report = run_cache_matrix(crate::DEFAULT_SEED, |_| {});
        assert!(report.clean(), "{}", report.render());
        assert_eq!(report.outcomes.len(), 5);
    }

    /// Same seed, same schedule, same outcome.
    #[test]
    fn cache_cell_is_deterministic() {
        let cell = CacheCell {
            kill: CacheKill::Mn,
            op: CacheOp::Delete,
        };
        let a = run_cache_cell(&cell, 77);
        let b = run_cache_cell(&cell, 77);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.col, b.col);
        assert_eq!(a.warm_entries, b.warm_entries);
        assert_eq!(a.interrupted, b.interrupted);
    }
}
