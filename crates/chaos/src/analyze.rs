//! `chaos analyze` — the happens-before race detector driven over the
//! executions the harness already produces.
//!
//! Five stages, all seeded from one master seed:
//!
//! 1. **Traced sweep** — every cell of the (CI or full) crash matrix runs
//!    under a fresh [`aceso_san::Detector`], with the identical per-cell
//!    seeds the plain `sweep` would use, so any reported race replays with
//!    `chaos cell <id> --seed <cell seed>`.
//! 2. **Multi-client YCSB-A trace** — four clients share one store and
//!    interleave a Zipfian 50/50 read/update mix; the detector checks that
//!    every cross-client handoff is ordered by a commit CAS, lock CAS,
//!    FAA, RPC, or barrier edge.
//! 3. **Runtime-axis trace** — both [`crate::rt_axis`] kills rerun under
//!    the detector: coroutine clients interleave at *round-trip*
//!    granularity on one OS thread, so per-client trace ids must survive
//!    the interleaving for the happens-before graph to stay sound.
//! 4. **Elastic-axis trace** — a representative slice of the
//!    kill-mid-rebalance matrix ([`crate::elastic_axis`]) reruns under the
//!    detector: client verbs interleave with the migrator's fence installs
//!    and copy RPCs, so every cross-epoch handoff (stale write → fence
//!    bounce → refreshed write) must be RPC- or barrier-ordered.
//! 5. **Backends-axis trace** — a slice of the per-engine crash matrix
//!    ([`crate::backends_axis`]) reruns under the detector, one cell per
//!    [`aceso_engines::EngineKind`]: the replication engines' commit
//!    protocols (write-then-CAS publication, doorbell-batched 1-RTT
//!    commits) must order every cross-client handoff just as Aceso's do,
//!    including across a torn write and its reconcile pass.
//! 6. **Cache-axis trace** — a slice of the stale-index-cache matrix
//!    ([`crate::cache_axis`]) reruns under the detector: a node (or the
//!    client) dies between cache fill and use, so the hot-cache fast
//!    path's revalidating slot re-reads must be ordered against the
//!    recovery stream that rebuilt the memory they land on.
//! 7. **Liveness + lints** — the mutation self-tests
//!    ([`aceso_san::selftest`]) prove each ordering edge is actually
//!    checked (a weakened edge must produce a report), and the static
//!    protocol lints ([`aceso_san::lint`]) check layout constants and
//!    `CrashPoint` wiring.
//!
//! The run is clean only when all seven stages are: zero races, zero
//! detector violations, every self-test live, zero lint findings — and the
//! traced cells still hold their invariants.

use crate::backends_axis::{
    run_backends_cell_with_sink, BackendCell, BackendFault, BackendOp,
};
use crate::cache_axis::{run_cache_cell_with_sink, CacheCell, CacheKill, CacheOp};
use crate::cell::Cell;
use crate::elastic_axis::{run_elastic_cell_with_sink, ElasticBoundary, ElasticCell, ElasticKill};
use crate::rt_axis::{run_rt_cell_with_sink, RtKill};
use crate::runner::{chaos_config, run_cell_with_sink};
use crate::sweep::cell_seeds;
use aceso_core::AcesoStore;
use aceso_engines::EngineKind;
use aceso_index::IndexWord;
use aceso_rdma::TraceSink;
use aceso_san::{lint, selftest, Annotator, Detector, SelftestOutcome};
use aceso_workloads::ycsb::YcsbKind;
use aceso_workloads::{value_for, Op, YcsbWorkload};
use std::sync::Arc;

/// Detector findings for one traced matrix cell.
#[derive(Clone, Debug)]
pub struct CellTrace {
    /// The cell that ran.
    pub cell: Cell,
    /// Its (sweep-identical) seed.
    pub seed: u64,
    /// Rendered races the detector reported.
    pub races: Vec<String>,
    /// Detector violations (misaligned atomics seen in the trace).
    pub detector_violations: Vec<String>,
    /// Invariant violations from the cell run itself.
    pub cell_violations: Vec<String>,
    /// Events the detector processed.
    pub events: u64,
}

impl CellTrace {
    /// `true` when the cell raced nowhere and held its invariants.
    pub fn ok(&self) -> bool {
        self.races.is_empty() && self.detector_violations.is_empty() && self.cell_violations.is_empty()
    }
}

/// Detector findings for the multi-client YCSB trace.
#[derive(Clone, Debug)]
pub struct YcsbTrace {
    /// Logical clients interleaved.
    pub clients: usize,
    /// Operations executed.
    pub ops: usize,
    /// Events the detector processed.
    pub events: u64,
    /// Rendered races the detector reported.
    pub races: Vec<String>,
    /// Store errors the trace hit (a clean trace has none).
    pub errors: Vec<String>,
}

/// Detector findings for one traced runtime-axis cell (N coroutine
/// clients multiplexed on one executor thread, killed mid-suspension).
#[derive(Clone, Debug)]
pub struct RtTrace {
    /// The kill the cell armed.
    pub kill: RtKill,
    /// Tasks multiplexed on the executor thread.
    pub tasks: usize,
    /// Tasks still mid-op when the fault fired.
    pub inflight_at_fault: usize,
    /// Events the detector processed.
    pub events: u64,
    /// Rendered races the detector reported.
    pub races: Vec<String>,
    /// Detector violations (misaligned atomics seen in the trace).
    pub detector_violations: Vec<String>,
    /// Invariant violations from the cell run itself.
    pub cell_violations: Vec<String>,
}

impl RtTrace {
    /// `true` when the cell raced nowhere and held its invariants.
    pub fn ok(&self) -> bool {
        self.races.is_empty() && self.detector_violations.is_empty() && self.cell_violations.is_empty()
    }
}

/// Detector findings for one traced elastic-axis cell (a node or client
/// dies at a migrator step boundary under live traffic).
#[derive(Clone, Debug)]
pub struct ElasticTrace {
    /// The cell that ran.
    pub cell: ElasticCell,
    /// Client ops that committed while the migration was in flight.
    pub committed_ops: usize,
    /// Events the detector processed.
    pub events: u64,
    /// Rendered races the detector reported.
    pub races: Vec<String>,
    /// Detector violations (misaligned atomics seen in the trace).
    pub detector_violations: Vec<String>,
    /// Invariant violations from the cell run itself.
    pub cell_violations: Vec<String>,
}

impl ElasticTrace {
    /// `true` when the cell raced nowhere and held its invariants.
    pub fn ok(&self) -> bool {
        self.races.is_empty() && self.detector_violations.is_empty() && self.cell_violations.is_empty()
    }
}

/// Detector findings for one traced backends-axis cell (the shared crash
/// script against one [`aceso_core::FtEngine`] implementation).
#[derive(Clone, Debug)]
pub struct BackendsTrace {
    /// The cell that ran.
    pub cell: BackendCell,
    /// Events the detector processed.
    pub events: u64,
    /// Rendered races the detector reported.
    pub races: Vec<String>,
    /// Detector violations (misaligned atomics seen in the trace).
    pub detector_violations: Vec<String>,
    /// Invariant violations from the cell run itself.
    pub cell_violations: Vec<String>,
}

impl BackendsTrace {
    /// `true` when the cell raced nowhere and held its invariants.
    pub fn ok(&self) -> bool {
        self.races.is_empty() && self.detector_violations.is_empty() && self.cell_violations.is_empty()
    }
}

/// Detector findings for one traced cache-axis cell (a node or client
/// dies between cache fill and use).
#[derive(Clone, Debug)]
pub struct CacheTrace {
    /// The cell that ran.
    pub cell: CacheCell,
    /// Cache entries the sweep client held when the kill landed.
    pub warm_entries: usize,
    /// Events the detector processed.
    pub events: u64,
    /// Rendered races the detector reported.
    pub races: Vec<String>,
    /// Detector violations (misaligned atomics seen in the trace).
    pub detector_violations: Vec<String>,
    /// Invariant violations from the cell run itself.
    pub cell_violations: Vec<String>,
}

impl CacheTrace {
    /// `true` when the cell raced nowhere and held its invariants.
    pub fn ok(&self) -> bool {
        self.races.is_empty() && self.detector_violations.is_empty() && self.cell_violations.is_empty()
    }
}

/// Everything one `chaos analyze` run produced.
#[derive(Clone, Debug)]
pub struct AnalyzeReport {
    /// The master seed.
    pub seed: u64,
    /// Per-cell detector findings, in sweep order.
    pub cells: Vec<CellTrace>,
    /// The YCSB-A trace findings.
    pub ycsb: YcsbTrace,
    /// The runtime-axis trace findings (one per [`RtKill`]).
    pub rt: Vec<RtTrace>,
    /// The elastic-axis trace findings (one per traced cell).
    pub elastic: Vec<ElasticTrace>,
    /// The backends-axis trace findings (one per traced cell).
    pub backends: Vec<BackendsTrace>,
    /// The cache-axis trace findings (one per traced cell).
    pub cache: Vec<CacheTrace>,
    /// Mutation self-test outcomes (detector liveness proof).
    pub selftests: Vec<SelftestOutcome>,
    /// Static protocol lint findings.
    pub lint_violations: Vec<String>,
}

impl AnalyzeReport {
    /// `true` when every stage came back clean.
    pub fn clean(&self) -> bool {
        self.cells.iter().all(CellTrace::ok)
            && self.ycsb.races.is_empty()
            && self.ycsb.errors.is_empty()
            && self.rt.iter().all(RtTrace::ok)
            && self.elastic.iter().all(ElasticTrace::ok)
            && self.backends.iter().all(BackendsTrace::ok)
            && self.cache.iter().all(CacheTrace::ok)
            && self.selftests.iter().all(SelftestOutcome::ok)
            && self.lint_violations.is_empty()
    }

    /// Renders the analyze report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let cell_events: u64 = self.cells.iter().map(|c| c.events).sum();
        let racy = self.cells.iter().filter(|c| !c.races.is_empty()).count();
        let broken = self
            .cells
            .iter()
            .filter(|c| !c.cell_violations.is_empty() || !c.detector_violations.is_empty())
            .count();
        s.push_str(&format!(
            "analyze report: seed {:#x}\n  sweep: {} cells traced, {} events, {} racy cells, {} otherwise-violating cells\n",
            self.seed,
            self.cells.len(),
            cell_events,
            racy,
            broken
        ));
        for c in self.cells.iter().filter(|c| !c.ok()) {
            s.push_str(&format!("    cell {} (seed {:#x}):\n", c.cell, c.seed));
            for r in &c.races {
                s.push_str(&format!("      race: {r}\n"));
            }
            for v in &c.detector_violations {
                s.push_str(&format!("      detector: {v}\n"));
            }
            for v in &c.cell_violations {
                s.push_str(&format!("      invariant: {v}\n"));
            }
        }
        s.push_str(&format!(
            "  {}: {} clients, {} ops, {} events, {} races\n",
            YcsbKind::A.name(),
            self.ycsb.clients,
            self.ycsb.ops,
            self.ycsb.events,
            self.ycsb.races.len()
        ));
        for r in &self.ycsb.races {
            s.push_str(&format!("    race: {r}\n"));
        }
        for e in &self.ycsb.errors {
            s.push_str(&format!("    error: {e}\n"));
        }
        for t in &self.rt {
            s.push_str(&format!(
                "  rt {}: {} tasks (one thread), {} in flight at fault, {} events, {} races\n",
                t.kill.label(),
                t.tasks,
                t.inflight_at_fault,
                t.events,
                t.races.len()
            ));
            for r in &t.races {
                s.push_str(&format!("    race: {r}\n"));
            }
            for v in &t.detector_violations {
                s.push_str(&format!("    detector: {v}\n"));
            }
            for v in &t.cell_violations {
                s.push_str(&format!("    invariant: {v}\n"));
            }
        }
        for t in &self.elastic {
            s.push_str(&format!(
                "  elastic {}: {} ops under migration, {} events, {} races\n",
                t.cell,
                t.committed_ops,
                t.events,
                t.races.len()
            ));
            for r in &t.races {
                s.push_str(&format!("    race: {r}\n"));
            }
            for v in &t.detector_violations {
                s.push_str(&format!("    detector: {v}\n"));
            }
            for v in &t.cell_violations {
                s.push_str(&format!("    invariant: {v}\n"));
            }
        }
        for t in &self.backends {
            s.push_str(&format!(
                "  backends {}: {} events, {} races\n",
                t.cell,
                t.events,
                t.races.len()
            ));
            for r in &t.races {
                s.push_str(&format!("    race: {r}\n"));
            }
            for v in &t.detector_violations {
                s.push_str(&format!("    detector: {v}\n"));
            }
            for v in &t.cell_violations {
                s.push_str(&format!("    invariant: {v}\n"));
            }
        }
        for t in &self.cache {
            s.push_str(&format!(
                "  cache {}: {} warm entries at kill, {} events, {} races\n",
                t.cell,
                t.warm_entries,
                t.events,
                t.races.len()
            ));
            for r in &t.races {
                s.push_str(&format!("    race: {r}\n"));
            }
            for v in &t.detector_violations {
                s.push_str(&format!("    detector: {v}\n"));
            }
            for v in &t.cell_violations {
                s.push_str(&format!("    invariant: {v}\n"));
            }
        }
        s.push_str("  detector liveness (mutation self-tests):\n");
        for t in &self.selftests {
            if t.ok() {
                s.push_str(&format!("    {:<24} detected: {}\n", t.name, t.report));
            } else if !t.baseline_clean {
                s.push_str(&format!(
                    "    {:<24} FALSE POSITIVE in baseline: {}\n",
                    t.name, t.report
                ));
            } else {
                s.push_str(&format!("    {:<24} MUTATION UNDETECTED\n", t.name));
            }
        }
        if self.lint_violations.is_empty() {
            s.push_str("  protocol lints: clean\n");
        } else {
            s.push_str(&format!(
                "  protocol lints: {} violations\n",
                self.lint_violations.len()
            ));
            for v in &self.lint_violations {
                s.push_str(&format!("    - {v}\n"));
            }
        }
        s.push_str(if self.clean() {
            "  no unordered conflicting accesses in any traced execution\n"
        } else {
            "  ANALYSIS FOUND PROBLEMS (see above)\n"
        });
        s
    }
}

/// Maps a traced address to its protocol role, so race reports read as
/// "index slot Meta word g3/s12", not bare offsets. All chaos-store nodes
/// share one memory map.
fn annotator() -> Annotator {
    let map = chaos_config().memory_map();
    Box::new(move |_node, off| match map.index.classify_word(off) {
        IndexWord::Atomic { group, slot } => Some(format!("index slot Atomic word g{group}/s{slot}")),
        IndexWord::Meta { group, slot } => Some(format!("index slot Meta word g{group}/s{slot}")),
        IndexWord::IndexVersion => Some("Index Version word".into()),
        IndexWord::OutsideIndex => {
            if let Some((id, rel)) = map.blocks.locate(off) {
                Some(format!("block {id} +{rel:#x} ({:?})", map.blocks.kind_of(id)))
            } else if off >= map.blocks.meta_base
                && off < map.blocks.meta_base + map.blocks.meta_size()
            {
                Some("alloc-table record area".into())
            } else {
                None
            }
        }
    })
}

/// Runs every cell under a fresh detector with sweep-identical seeds.
/// `progress` is called after each cell (CLI verbosity hook).
pub fn analyze_cells(
    cells: &[Cell],
    seed: u64,
    mut progress: impl FnMut(&CellTrace),
) -> Vec<CellTrace> {
    let seeds = cell_seeds(seed, cells.len());
    cells
        .iter()
        .zip(seeds)
        .map(|(cell, cell_seed)| {
            let det = Arc::new(Detector::with_annotator(annotator()));
            let sink: Arc<dyn TraceSink> = det.clone();
            let out = run_cell_with_sink(cell, cell_seed, Some(sink));
            let trace = CellTrace {
                cell: *cell,
                seed: cell_seed,
                races: det.races().iter().map(|r| r.to_string()).collect(),
                detector_violations: det.violations(),
                cell_violations: out.violations,
                events: det.events(),
            };
            progress(&trace);
            trace
        })
        .collect()
}

/// Four logical clients interleaving YCSB-A over one store, traced.
///
/// The interleaving is round-robin in a single thread so the schedule is
/// deterministic under the seed; each logical client is a distinct
/// [`aceso_core::AcesoClient`] (own DM client, own trace id), so every
/// cross-client handoff still has to be justified by a happens-before
/// edge. The keyspace and op count are sized to stay well inside fresh
/// blocks (no reclamation) and inside the CI time budget.
pub fn analyze_ycsb(seed: u64) -> YcsbTrace {
    const CLIENTS: usize = 4;
    const KEYS: u64 = 200;
    const OPS: usize = 2000;
    const VALUE_LEN: usize = 64;

    let det = Arc::new(Detector::with_annotator(annotator()));
    let mut trace = YcsbTrace {
        clients: CLIENTS,
        ops: 0,
        events: 0,
        races: Vec::new(),
        errors: Vec::new(),
    };
    let store = match AcesoStore::launch(chaos_config()) {
        Ok(s) => s,
        Err(e) => {
            trace.errors.push(format!("launch: {e}"));
            return trace;
        }
    };
    store.cluster.install_trace_sink(det.clone());

    let mut clients = Vec::with_capacity(CLIENTS);
    for _ in 0..CLIENTS {
        match store.client() {
            Ok(c) => clients.push(c),
            Err(e) => {
                trace.errors.push(format!("client: {e}"));
                return trace;
            }
        }
    }

    for key in YcsbWorkload::preload_keys(KEYS) {
        if let Err(e) = clients[0].insert(&key, &value_for(&key, 0, VALUE_LEN)) {
            trace.errors.push(format!("preload: {e}"));
            return trace;
        }
    }
    store.cluster.trace_barrier();

    let mut streams: Vec<YcsbWorkload> = (0..CLIENTS)
        .map(|i| YcsbWorkload::new(YcsbKind::A, KEYS, 0.99, VALUE_LEN, i as u32, seed))
        .collect();
    for opno in 0..OPS {
        let i = opno % CLIENTS;
        let req = streams[i].next().expect("ycsb streams are infinite");
        let val = value_for(&req.key, opno as u64, req.value_len);
        let res = match req.op {
            Op::Search => clients[i].search(&req.key).map(|_| ()),
            Op::Update => clients[i].update(&req.key, &val),
            Op::Insert => clients[i].insert(&req.key, &val),
            Op::Delete => clients[i].delete(&req.key).map(|_| ()),
        };
        if let Err(e) = res {
            trace.errors.push(format!("op {opno} ({:?}): {e}", req.op));
            if trace.errors.len() >= 8 {
                break;
            }
        }
        trace.ops += 1;
    }

    store.cluster.trace_barrier();
    store.shutdown();
    trace.races = det.races().iter().map(|r| r.to_string()).collect();
    trace
        .errors
        .extend(det.violations().iter().map(|v| format!("detector: {v}")));
    trace.events = det.events();
    trace
}

/// Both runtime-axis cells, traced: the kill lands while several
/// coroutine clients are suspended mid-op on one executor thread, and
/// the detector must still order every cross-client handoff — the
/// per-client trace ids have to survive the interleaving.
pub fn analyze_rt(seed: u64) -> Vec<RtTrace> {
    [RtKill::Mn, RtKill::Cn]
        .into_iter()
        .map(|kill| {
            let det = Arc::new(Detector::with_annotator(annotator()));
            let sink: Arc<dyn TraceSink> = det.clone();
            let out = run_rt_cell_with_sink(kill, seed, Some(sink));
            RtTrace {
                kill,
                tasks: out.tasks,
                inflight_at_fault: out.inflight_at_fault,
                events: det.events(),
                races: det.races().iter().map(|r| r.to_string()).collect(),
                detector_violations: det.violations(),
                cell_violations: out.violations,
            }
        })
        .collect()
}

/// A representative slice of the elastic axis, traced: the abort path
/// (join target dies mid-copy), the rebuild path (drain source dies at
/// announce), and a CN crash at the publish handover. Client verbs
/// interleave with the migrator's fence installs and copy RPCs; the
/// detector must order every stale-write → fence-bounce → refreshed-write
/// handoff.
pub fn analyze_elastic(seed: u64) -> Vec<ElasticTrace> {
    [
        ElasticCell {
            kill: ElasticKill::JoinMn,
            boundary: ElasticBoundary::Copy,
        },
        ElasticCell {
            kill: ElasticKill::DrainMn,
            boundary: ElasticBoundary::Announce,
        },
        ElasticCell {
            kill: ElasticKill::Cn,
            boundary: ElasticBoundary::Publish,
        },
    ]
    .into_iter()
    .map(|cell| {
        let det = Arc::new(Detector::with_annotator(annotator()));
        let sink: Arc<dyn TraceSink> = det.clone();
        let out = run_elastic_cell_with_sink(&cell, seed, Some(sink));
        ElasticTrace {
            cell,
            committed_ops: out.committed_ops,
            events: det.events(),
            races: det.races().iter().map(|r| r.to_string()).collect(),
            detector_violations: det.violations(),
            cell_violations: out.violations,
        }
    })
    .collect()
}

/// A per-engine slice of the backends axis, traced: one cell per engine
/// kind, chosen so each strategy's commit protocol is exercised across a
/// fault — Aceso through the seam (a home-node kill mid-update), FUSEE's
/// write-then-CAS replication across a torn client write plus its
/// reconcile pass, and SWARM's doorbell-batched commit across both fault
/// kinds. Aceso cells keep the memory-map annotator; the replication
/// engines have their own layouts, so their detectors run unannotated.
pub fn analyze_backends(seed: u64) -> Vec<BackendsTrace> {
    [
        BackendCell {
            engine: EngineKind::Aceso,
            op: BackendOp::Update,
            fault: BackendFault::KillMn,
            skip: 0,
        },
        BackendCell {
            engine: EngineKind::Fusee,
            op: BackendOp::Update,
            fault: BackendFault::CrashCn,
            skip: 0,
        },
        BackendCell {
            engine: EngineKind::Swarm,
            op: BackendOp::Update,
            fault: BackendFault::CrashCn,
            skip: 2,
        },
        BackendCell {
            engine: EngineKind::Swarm,
            op: BackendOp::Insert,
            fault: BackendFault::KillMn,
            skip: 0,
        },
    ]
    .into_iter()
    .map(|cell| {
        let det = if cell.engine == EngineKind::Aceso {
            Arc::new(Detector::with_annotator(annotator()))
        } else {
            Arc::new(Detector::new())
        };
        let sink: Arc<dyn TraceSink> = det.clone();
        let out = run_backends_cell_with_sink(&cell, seed, Some(sink));
        BackendsTrace {
            cell,
            events: det.events(),
            races: det.races().iter().map(|r| r.to_string()).collect(),
            detector_violations: det.violations(),
            cell_violations: out.violations,
        }
    })
    .collect()
}

/// A representative slice of the cache axis, traced: the stale-cache
/// SEARCH fast path, the stale-cache UPDATE speculation, and the hot-cache
/// CN crash. The kill lands between cache fill and use, so the detector
/// must order the sweeper's revalidating slot re-reads against the
/// recovery stream that rebuilt (or repaired) the memory they land on.
pub fn analyze_cache(seed: u64) -> Vec<CacheTrace> {
    [
        CacheCell {
            kill: CacheKill::Mn,
            op: CacheOp::Search,
        },
        CacheCell {
            kill: CacheKill::Mn,
            op: CacheOp::Update,
        },
        CacheCell {
            kill: CacheKill::Cn,
            op: CacheOp::Update,
        },
    ]
    .into_iter()
    .map(|cell| {
        let det = Arc::new(Detector::with_annotator(annotator()));
        let sink: Arc<dyn TraceSink> = det.clone();
        let out = run_cache_cell_with_sink(&cell, seed, Some(sink));
        CacheTrace {
            cell,
            warm_entries: out.warm_entries,
            events: det.events(),
            races: det.races().iter().map(|r| r.to_string()).collect(),
            detector_violations: det.violations(),
            cell_violations: out.violations,
        }
    })
    .collect()
}

/// Runs all seven stages.
pub fn analyze(
    cells: &[Cell],
    seed: u64,
    progress: impl FnMut(&CellTrace),
) -> AnalyzeReport {
    let cell_traces = analyze_cells(cells, seed, progress);
    let ycsb = analyze_ycsb(seed);
    let rt = analyze_rt(seed);
    let elastic = analyze_elastic(seed);
    let backends = analyze_backends(seed);
    let cache = analyze_cache(seed);
    AnalyzeReport {
        seed,
        cells: cell_traces,
        ycsb,
        rt,
        elastic,
        backends,
        cache,
        selftests: selftest::run_all(),
        lint_violations: lint::run_all(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{InjectionSite, KillTiming, OpType, ReclaimState};
    use aceso_core::client::CrashPoint;

    /// One quiet cell and one crashing cell, both traced: no races, and
    /// the detector actually saw the execution.
    #[test]
    fn traced_cells_are_race_free_and_nonempty() {
        let cells = [
            Cell {
                op: OpType::Update,
                site: InjectionSite::None,
                kill: KillTiming::None,
                reclaim: ReclaimState::Fresh,
            },
            Cell {
                op: OpType::Insert,
                site: InjectionSite::Client(CrashPoint::BeforeCommit),
                kill: KillTiming::None,
                reclaim: ReclaimState::Fresh,
            },
        ];
        for t in analyze_cells(&cells, 41, |_| {}) {
            assert!(t.ok(), "cell {}: races {:?}, violations {:?}/{:?}", t.cell, t.races, t.detector_violations, t.cell_violations);
            assert!(t.events > 100, "cell {}: only {} events traced", t.cell, t.events);
        }
    }

    /// Both runtime-axis kills trace race-free: the detector orders
    /// every handoff even though the clients interleave at round-trip
    /// granularity on one thread, and the cell invariants hold.
    #[test]
    fn rt_traces_are_race_free() {
        for t in analyze_rt(crate::DEFAULT_SEED) {
            assert!(
                t.ok(),
                "rt {}: races {:?}, violations {:?}/{:?}",
                t.kill.label(),
                t.races,
                t.detector_violations,
                t.cell_violations
            );
            assert!(t.events > 100, "rt {}: only {} events", t.kill.label(), t.events);
            assert!(t.inflight_at_fault >= 2);
        }
    }

    /// The traced elastic slice is race-free: the migrator's fence/copy
    /// stream interleaved with client verbs produces no unordered
    /// conflicting accesses, and the cells hold their invariants.
    #[test]
    fn elastic_traces_are_race_free() {
        for t in analyze_elastic(crate::DEFAULT_SEED) {
            assert!(
                t.ok(),
                "elastic {}: races {:?}, violations {:?}/{:?}",
                t.cell,
                t.races,
                t.detector_violations,
                t.cell_violations
            );
            assert!(t.events > 100, "elastic {}: only {} events", t.cell, t.events);
            assert!(t.committed_ops > 0, "elastic {}: no ops committed", t.cell);
        }
    }

    /// The traced backends slice is race-free on every engine: FUSEE's
    /// write-then-CAS replication and SWARM's doorbell-batched commit
    /// order every cross-client handoff across torn writes and node
    /// kills, just like Aceso's native protocol.
    #[test]
    fn backends_traces_are_race_free() {
        for t in analyze_backends(crate::DEFAULT_SEED) {
            assert!(
                t.ok(),
                "backends {}: races {:?}, violations {:?}/{:?}",
                t.cell,
                t.races,
                t.detector_violations,
                t.cell_violations
            );
            assert!(t.events > 100, "backends {}: only {} events", t.cell, t.events);
        }
    }

    /// The traced cache slice is race-free: the kill between cache fill
    /// and use, the recovery stream, and the hot-cache revalidation reads
    /// produce no unordered conflicting accesses, and every cell holds
    /// the no-stale-read-after-recovery invariant.
    #[test]
    fn cache_traces_are_race_free() {
        for t in analyze_cache(crate::DEFAULT_SEED) {
            assert!(
                t.ok(),
                "cache {}: races {:?}, violations {:?}/{:?}",
                t.cell,
                t.races,
                t.detector_violations,
                t.cell_violations
            );
            assert!(t.events > 100, "cache {}: only {} events", t.cell, t.events);
            assert!(t.warm_entries > 0, "cache {}: cache never warm", t.cell);
        }
    }

    /// The multi-client YCSB-A interleaving is race-free and replays
    /// identically under the same seed.
    #[test]
    fn ycsb_trace_is_race_free_and_deterministic() {
        let a = analyze_ycsb(7);
        assert!(a.races.is_empty(), "{:?}", a.races);
        assert!(a.errors.is_empty(), "{:?}", a.errors);
        assert_eq!(a.ops, 2000);
        assert!(a.events > 1000, "only {} events traced", a.events);
        let b = analyze_ycsb(7);
        assert_eq!(a.events, b.events);
    }
}
