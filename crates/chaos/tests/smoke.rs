//! End-to-end smoke of the chaos harness: a small deterministic slice of
//! the CI matrix must run clean, reproduce identically, and actually
//! exercise the fault machinery (kills, injections, client crashes).

use aceso_chaos::{ci_matrix, sweep, Cell, KillTiming, DEFAULT_SEED};

fn outcome_fingerprint(report: &aceso_chaos::SweepReport) -> Vec<(String, Vec<String>, bool, bool, bool)> {
    report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.cell.id(),
                o.violations.clone(),
                o.injection_fired,
                o.mn_killed,
                o.client_crashed,
            )
        })
        .collect()
}

#[test]
fn ci_slice_is_clean_and_deterministic() {
    // A slice of the real CI profile, padded with a kill cell so the
    // smoke is guaranteed to cross the recovery path.
    let mut cells: Vec<Cell> = ci_matrix(DEFAULT_SEED, 6);
    if !cells.iter().any(|c| c.kill != KillTiming::None) {
        cells.extend(
            ci_matrix(DEFAULT_SEED, 120)
                .into_iter()
                .find(|c| c.kill != KillTiming::None),
        );
    }

    let a = sweep(&cells, DEFAULT_SEED, |_| {});
    assert!(
        a.clean(),
        "smoke slice violated invariants:\n{}",
        a.render()
    );

    // Same seed, same cells: bit-identical schedules and outcomes.
    let b = sweep(&cells, DEFAULT_SEED, |_| {});
    assert_eq!(outcome_fingerprint(&a), outcome_fingerprint(&b));

    // The slice must exercise the machinery, not just quiet cells.
    assert!(a.outcomes.iter().any(|o| o.mn_killed), "no MN ever killed");

    // The report renders a coverage section and the explored-cell count.
    let rendered = a.render();
    assert!(rendered.contains("chaos report"));
    assert!(rendered.contains(&format!("{} cells", cells.len())));
}
