//! Wide XOR kernels.
//!
//! XOR is the inner loop of X-Code encode/decode, of differential
//! checkpointing (delta = new ⊕ old), and of delta-based space reclamation
//! (delta = old KV ⊕ new KV). The kernel processes 8 bytes per step on the
//! aligned middle of the buffers; on typical hardware the compiler further
//! auto-vectorizes the `u64` loop.

/// XORs `src` into `dst` element-wise: `dst[i] ^= src[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length — mismatched cells indicate a
/// stripe-geometry bug, not a recoverable condition.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into length mismatch");
    // Split both buffers into 8-byte lanes plus byte edges. `align_to` on
    // `u64` would need equal alignment of both buffers; chunking is just as
    // fast once the compiler unrolls it and has no alignment precondition.
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let a = u64::from_ne_bytes(dc.try_into().unwrap());
        let b = u64::from_ne_bytes(sc.try_into().unwrap());
        dc.copy_from_slice(&(a ^ b).to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= *sb;
    }
}

/// Returns the XOR of all `parts`, which must be non-empty and equal-length.
///
/// # Panics
///
/// Panics if `parts` is empty or lengths differ.
pub fn xor_of(parts: &[&[u8]]) -> Vec<u8> {
    let first = parts.first().expect("xor_of needs at least one part");
    let mut acc = first.to_vec();
    for p in &parts[1..] {
        xor_into(&mut acc, p);
    }
    acc
}

/// Returns `true` if every byte of `buf` is zero (fast path for skipping
/// all-zero checkpoint deltas).
pub fn is_zero(buf: &[u8]) -> bool {
    let mut it = buf.chunks_exact(8);
    for c in &mut it {
        if u64::from_ne_bytes(c.try_into().unwrap()) != 0 {
            return false;
        }
    }
    it.remainder().iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn xor_into_basic() {
        let mut a = vec![0b1010u8; 20];
        let b = vec![0b0110u8; 20];
        xor_into(&mut a, &b);
        assert!(a.iter().all(|&x| x == 0b1100));
    }

    #[test]
    fn xor_of_three() {
        let a = [1u8, 2, 3];
        let b = [4u8, 5, 6];
        let c = [7u8, 8, 9];
        let x = xor_of(&[&a, &b, &c]);
        assert_eq!(x, vec![1 ^ 4 ^ 7, 2 ^ 5 ^ 8, 3 ^ 6 ^ 9]);
    }

    #[test]
    fn is_zero_detects() {
        assert!(is_zero(&[0u8; 17]));
        let mut v = vec![0u8; 17];
        v[16] = 1;
        assert!(!is_zero(&v));
        assert!(is_zero(&[]));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        xor_into(&mut [0u8; 3], &[0u8; 4]);
    }

    proptest! {
        /// x ⊕ x = 0.
        #[test]
        fn self_inverse(v in proptest::collection::vec(any::<u8>(), 0..257)) {
            let mut a = v.clone();
            xor_into(&mut a, &v);
            prop_assert!(is_zero(&a));
        }

        /// (a ⊕ b) ⊕ b = a, across the unaligned-tail boundary.
        #[test]
        fn roundtrip(a in proptest::collection::vec(any::<u8>(), 1..300),
                     seed in any::<u64>()) {
            let b: Vec<u8> = a.iter().enumerate()
                .map(|(i, _)| (seed.wrapping_mul(i as u64 + 1) >> 13) as u8)
                .collect();
            let mut x = a.clone();
            xor_into(&mut x, &b);
            xor_into(&mut x, &b);
            prop_assert_eq!(x, a);
        }
    }
}
