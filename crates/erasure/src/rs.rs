//! Systematic Reed-Solomon over GF(2^8).
//!
//! Geometry: `k` data shards, `m` parity shards, `k + m ≤ 256`. Parity
//! coefficients come from a Cauchy matrix, which is MDS by construction, so
//! any `k` surviving shards reconstruct everything. Decode inverts the
//! corresponding `k × k` submatrix of the generator.
//!
//! Used by Aceso only as the baseline code of Table 2; the production path
//! is [`crate::xcode`]. Like X-Code, RS is linear: a data delta `Δ` on shard
//! `j` moves parity `i` by `c[i][j] · Δ`, exposed as
//! [`ReedSolomon::xor_delta_into_parity`].

use crate::gf256;
use crate::CodeError;

/// A systematic RS(k, m) code instance.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// `m × k` parity coefficient rows.
    coef: Vec<Vec<u8>>,
}

/// Inverts a square matrix over GF(2^8) by Gauss-Jordan elimination.
fn invert(mut a: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodeError> {
    let n = a.len();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..n).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..n {
        // Find a pivot.
        let pivot = (col..n)
            .find(|&r| a[r][col] != 0)
            .ok_or(CodeError::Unsolvable)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let p = gf256::inv(a[col][col]);
        for j in 0..n {
            a[col][j] = gf256::mul(a[col][j], p);
            inv[col][j] = gf256::mul(inv[col][j], p);
        }
        for r in 0..n {
            if r != col && a[r][col] != 0 {
                let f = a[r][col];
                for j in 0..n {
                    a[r][j] ^= gf256::mul(f, a[col][j]);
                    inv[r][j] ^= gf256::mul(f, inv[col][j]);
                }
            }
        }
    }
    Ok(inv)
}

impl ReedSolomon {
    /// Creates an RS(k, m) instance.
    pub fn new(k: usize, m: usize) -> Result<Self, CodeError> {
        if k == 0 || m == 0 || k + m > 256 {
            return Err(CodeError::BadGeometry(format!(
                "rs({k},{m}) needs 0 < k, 0 < m, k+m ≤ 256"
            )));
        }
        // Cauchy matrix: rows indexed by x_i = i, columns by y_j = m + j.
        // x_i ≠ y_j always, so every entry is invertible and the matrix is
        // MDS (every square submatrix is nonsingular).
        let coef = (0..m)
            .map(|i| {
                (0..k)
                    .map(|j| gf256::inv((i as u8) ^ ((m + j) as u8)))
                    .collect()
            })
            .collect();
        Ok(ReedSolomon { k, m, coef })
    }

    /// Number of data shards.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// The parity coefficient for (parity row `i`, data column `j`).
    pub fn coefficient(&self, i: usize, j: usize) -> u8 {
        self.coef[i][j]
    }

    /// Encodes `k` equal-length data shards into `m` parity shards.
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, CodeError> {
        if data.len() != self.k {
            return Err(CodeError::BadGeometry(format!(
                "expected {} data shards, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) {
            return Err(CodeError::LengthMismatch);
        }
        let mut parity = vec![vec![0u8; len]; self.m];
        for (i, p) in parity.iter_mut().enumerate() {
            for (j, d) in data.iter().enumerate() {
                gf256::mul_slice_xor(self.coef[i][j], d, p);
            }
        }
        Ok(parity)
    }

    /// Applies a data delta to one parity shard in place:
    /// `parity_i ^= c[i][j] · delta` (the linearity property, §3.3.3).
    pub fn xor_delta_into_parity(&self, i: usize, j: usize, delta: &[u8], parity: &mut [u8]) {
        gf256::mul_slice_xor(self.coef[i][j], delta, parity);
    }

    /// Reconstructs all missing shards in place.
    ///
    /// `shards` holds `k + m` optional buffers: indices `0..k` are data,
    /// `k..k+m` parity. At least `k` must be present and all present shards
    /// must share one length.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodeError> {
        if shards.len() != self.k + self.m {
            return Err(CodeError::BadGeometry(format!(
                "expected {} shards, got {}",
                self.k + self.m,
                shards.len()
            )));
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(CodeError::TooManyErasures {
                lost: shards.len() - present.len(),
                tolerated: self.m,
            });
        }
        let len = shards[present[0]].as_ref().unwrap().len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().unwrap().len() != len)
        {
            return Err(CodeError::LengthMismatch);
        }
        if present.len() == shards.len() {
            return Ok(());
        }

        // Generator row for shard index s: identity for data, coef for parity.
        let gen_row = |s: usize| -> Vec<u8> {
            if s < self.k {
                (0..self.k).map(|j| u8::from(j == s)).collect()
            } else {
                self.coef[s - self.k].clone()
            }
        };

        // Take the first k surviving shards, invert their generator rows to
        // express the data in terms of them.
        let basis: Vec<usize> = present.iter().copied().take(self.k).collect();
        let sub: Vec<Vec<u8>> = basis.iter().map(|&s| gen_row(s)).collect();
        let inv = invert(sub)?;

        // Recover missing data shards.
        let mut data: Vec<Option<Vec<u8>>> = vec![None; self.k];
        for j in 0..self.k {
            if shards[j].is_some() {
                data[j] = shards[j].clone();
            }
        }
        for j in 0..self.k {
            if data[j].is_none() {
                let mut out = vec![0u8; len];
                for (bi, &s) in basis.iter().enumerate() {
                    gf256::mul_slice_xor(inv[j][bi], shards[s].as_ref().unwrap(), &mut out);
                }
                data[j] = Some(out);
            }
        }
        for j in 0..self.k {
            if shards[j].is_none() {
                shards[j] = data[j].clone();
            }
        }
        // Recompute missing parity from (now complete) data.
        let data_refs: Vec<&[u8]> = (0..self.k).map(|j| data[j].as_deref().unwrap()).collect();
        for i in 0..self.m {
            if shards[self.k + i].is_none() {
                let mut p = vec![0u8; len];
                for (j, d) in data_refs.iter().enumerate() {
                    gf256::mul_slice_xor(self.coef[i][j], d, &mut p);
                }
                shards[self.k + i] = Some(p);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn shards_of(rs: &ReedSolomon, data: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        data.iter().cloned().chain(parity).map(Some).collect()
    }

    #[test]
    fn encode_decode_two_losses() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8 + 1; 64]).collect();
        let full = shards_of(&rs, &data);
        for a in 0..5 {
            for b in 0..5 {
                if a == b {
                    continue;
                }
                let mut s = full.clone();
                s[a] = None;
                s[b] = None;
                rs.reconstruct(&mut s).unwrap();
                assert_eq!(s, full, "erasing {a},{b}");
            }
        }
    }

    #[test]
    fn three_losses_rejected() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 16]).collect();
        let mut s = shards_of(&rs, &data);
        s[0] = None;
        s[1] = None;
        s[2] = None;
        assert!(matches!(
            rs.reconstruct(&mut s),
            Err(CodeError::TooManyErasures {
                lost: 3,
                tolerated: 2
            })
        ));
    }

    #[test]
    fn delta_update_matches_reencode() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut data: Vec<Vec<u8>> = (0..4).map(|i| vec![(i * 17) as u8; 32]).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parity = rs.encode(&refs).unwrap();

        // Overwrite shard 2 and apply the delta to both parities.
        let newv = vec![0x5Au8; 32];
        let delta: Vec<u8> = data[2].iter().zip(&newv).map(|(a, b)| a ^ b).collect();
        for (i, p) in parity.iter_mut().enumerate() {
            rs.xor_delta_into_parity(i, 2, &delta, p);
        }
        data[2] = newv;
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert_eq!(parity, rs.encode(&refs).unwrap());
    }

    #[test]
    fn bad_geometry_rejected() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(2, 0).is_err());
        assert!(ReedSolomon::new(200, 60).is_err());
        assert!(ReedSolomon::new(200, 56).is_ok());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        assert!(matches!(
            rs.encode(&[&[1u8, 2][..], &[3u8][..]]),
            Err(CodeError::LengthMismatch)
        ));
    }

    proptest! {
        /// Any ≤ m erasure pattern reconstructs exactly, for several geometries.
        #[test]
        fn reconstructs_any_pattern(
            k in 2usize..6,
            m in 1usize..4,
            len in 1usize..80,
            seed in any::<u64>(),
        ) {
            let rs = ReedSolomon::new(k, m).unwrap();
            let data: Vec<Vec<u8>> = (0..k)
                .map(|i| (0..len)
                    .map(|b| (seed.wrapping_mul((i * len + b + 1) as u64) >> 17) as u8)
                    .collect())
                .collect();
            let full = shards_of(&rs, &data);
            // Erase the m shards selected by the seed.
            let mut s = full.clone();
            let mut erased = 0;
            let mut idx = seed as usize;
            while erased < m {
                idx = idx.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let pos = idx % (k + m);
                if s[pos].is_some() {
                    s[pos] = None;
                    erased += 1;
                }
            }
            rs.reconstruct(&mut s).unwrap();
            prop_assert_eq!(s, full);
        }
    }
}
