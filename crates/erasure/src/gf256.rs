//! GF(2^8) arithmetic with the AES-adjacent polynomial 0x11D.
//!
//! Multiplication and inversion use exp/log tables generated at first use
//! (generator α = 2, which is primitive for 0x11D). Bulk slice operations
//! (`mul_slice_into`) build a per-coefficient 256-entry product table once
//! per call and stream through the buffers — the same structure ISA-L uses,
//! minus SIMD shuffles. This genuinely costs more per byte than pure XOR,
//! which is exactly the asymmetry the paper's Table 2 measures between RS
//! and X-Code.

use std::sync::OnceLock;

/// The field's reduction polynomial: x^8 + x^4 + x^3 + x^2 + 1.
pub const POLY: u16 = 0x11D;

struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        // Duplicate the table so exp[(a + b) as usize] needs no modulo.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Adds two field elements (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on zero, which has no inverse; callers guard against singular
/// matrices before inverting.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no inverse in GF(2^8)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Exponentiation `base^e` by repeated squaring (table-free; used in tests).
pub fn pow(mut base: u8, mut e: u32) -> u8 {
    let mut acc = 1u8;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        e >>= 1;
    }
    acc
}

/// Computes `dst[i] ^= c · src[i]` for the whole slice.
///
/// This is the RS encode/decode inner loop and the RS form of the linear
/// delta update (parity ^= coefficient · delta).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn mul_slice_xor(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice_xor length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        crate::xor::xor_into(dst, src);
        return;
    }
    // Per-coefficient product table: one lookup per byte.
    let mut table = [0u8; 256];
    for (b, t) in table.iter_mut().enumerate() {
        *t = mul(c, b as u8);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= table[*s as usize];
    }
}

/// Computes `dst[i] = c · src[i]` for the whole slice.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
    let mut table = [0u8; 256];
    for (b, t) in table.iter_mut().enumerate() {
        *t = mul(c, b as u8);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = table[*s as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mul_identities() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn known_products() {
        // 2 · 0x80 = 0x100 mod 0x11D = 0x1D.
        assert_eq!(mul(2, 0x80), 0x1D);
        assert_eq!(mul(3, 3), 5); // (x+1)² = x²+1.
    }

    #[test]
    fn inverse_works() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn generator_order_is_255() {
        // α=2 must generate the full multiplicative group.
        let mut seen = [false; 256];
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
            x = mul(x, 2);
        }
        assert_eq!(x, 1);
    }

    #[test]
    fn mul_slice_xor_matches_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0xA5u8; 256];
        let expect: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ mul(7, *s)).collect();
        mul_slice_xor(7, &src, &mut dst);
        assert_eq!(dst, expect);
    }

    proptest! {
        /// Distributivity: a·(b ⊕ c) = a·b ⊕ a·c.
        #[test]
        fn distributive(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }

        /// Associativity and commutativity of multiplication.
        #[test]
        fn mul_assoc_comm(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
            prop_assert_eq!(mul(a, b), mul(b, a));
        }

        /// pow agrees with repeated multiplication.
        #[test]
        fn pow_matches(a: u8, e in 0u32..600) {
            let mut acc = 1u8;
            for _ in 0..e { acc = mul(acc, a); }
            prop_assert_eq!(pow(a, e), acc);
        }

        /// Division undoes multiplication.
        #[test]
        fn div_undoes_mul(a: u8, b in 1u8..) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }
    }
}
