//! Erasure codes for the Block Area of Aceso.
//!
//! The paper encodes 2 MB memory blocks with **X-Code** (Xu & Bruck, 1999),
//! an XOR-only MDS array code tolerating two node failures, and compares it
//! against **Reed-Solomon** over GF(2^8) (Table 2). Both codes are
//! implemented here from first principles:
//!
//! * [`xor`] — wide XOR kernels, the workhorse of X-Code, differential
//!   checkpointing and delta-based space reclamation;
//! * [`gf256`] — GF(2^8) arithmetic with exp/log tables;
//! * [`rs`] — systematic Reed-Solomon (k data, m parity) built from a Cauchy
//!   matrix, with decode by matrix inversion;
//! * [`xcode`] — X-Code over a prime `n`: an `n × n` array of cells per
//!   stripe, columns mapped to memory nodes, the last two rows of each
//!   column holding diagonal and anti-diagonal parity.
//!
//! Both codes expose the *linearity* property Aceso's delta-based space
//! reclamation relies on (§3.3.3): updating a data cell by `Δ` updates each
//! dependent parity cell by a linear image of `Δ` (plain `Δ` for X-Code, a
//! coefficient multiple for RS), so parities can be maintained by XORing
//! deltas instead of re-encoding stripes.

#![forbid(unsafe_code)]

pub mod gf256;
pub mod rs;
pub mod xcode;
pub mod xor;

pub use rs::ReedSolomon;
pub use xcode::XCode;
pub use xor::{xor_into, xor_of};

/// Errors from erasure encode/decode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodeError {
    /// The requested geometry is invalid (e.g. X-Code `n` not prime).
    BadGeometry(String),
    /// More cells were erased than the code can tolerate.
    TooManyErasures {
        /// Number of erased columns/shards.
        lost: usize,
        /// Maximum the code tolerates.
        tolerated: usize,
    },
    /// Cell buffers disagree in length.
    LengthMismatch,
    /// The surviving cells are insufficient or inconsistent for decoding.
    Unsolvable,
}

impl core::fmt::Display for CodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodeError::BadGeometry(s) => write!(f, "bad geometry: {s}"),
            CodeError::TooManyErasures { lost, tolerated } => {
                write!(f, "{lost} erasures exceed tolerance {tolerated}")
            }
            CodeError::LengthMismatch => write!(f, "cell length mismatch"),
            CodeError::Unsolvable => write!(f, "erasure pattern unsolvable"),
        }
    }
}

impl std::error::Error for CodeError {}
