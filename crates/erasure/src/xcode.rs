//! X-Code (Xu & Bruck, 1999): an XOR-only MDS array code tolerating two
//! column erasures.
//!
//! Geometry: an `n × n` array of equal-size cells, `n` prime. Rows
//! `0..n-2` hold data; row `n-2` holds *diagonal* parity and row `n-1`
//! *anti-diagonal* parity:
//!
//! ```text
//! C[n-2][i] = ⊕_{k=0}^{n-3} C[k][(i + k + 2) mod n]   (diagonal)
//! C[n-1][i] = ⊕_{k=0}^{n-3} C[k][(i − k − 2) mod n]   (anti-diagonal)
//! ```
//!
//! Each data cell `(k, j)` therefore contributes to exactly two parity
//! cells, in columns `(j − k − 2) mod n` and `(j + k + 2) mod n` — both
//! different from `j`, so losing a column never loses a cell together with
//! both of its parities. In Aceso, columns are memory nodes and cells are
//! 2 MB memory blocks (§3.3.1): every MN stores both DATA and PARITY
//! blocks, and X-Code's two-erasure tolerance matches 3-way replication.
//!
//! Decoding is implemented as *peeling*: repeatedly find a parity equation
//! with exactly one erased cell and solve it by XOR. For any pattern of at
//! most two erased columns, peeling provably completes (it walks the
//! classical zig-zag chains); it also opportunistically handles many
//! sub-column erasure patterns, which Aceso's degraded SEARCH exploits to
//! recover a single block without touching full columns.

use crate::xor::xor_into;
use crate::CodeError;

/// An X-Code instance over a prime `n ≥ 3`.
#[derive(Clone, Copy, Debug)]
pub struct XCode {
    n: usize,
}

/// A stripe's two parity rows `(diagonal, anti-diagonal)`, each `n` cells.
pub type ParityRows = (Vec<Vec<u8>>, Vec<Vec<u8>>);

fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// One parity equation: the parity cell plus the data cells it covers.
#[derive(Clone, Debug)]
pub struct Equation {
    /// Row of the parity cell (`n-2` diagonal, `n-1` anti-diagonal).
    pub parity_row: usize,
    /// Column of the parity cell.
    pub parity_col: usize,
    /// Data cells `(row, col)` covered by the equation.
    pub data: Vec<(usize, usize)>,
}

impl XCode {
    /// Creates an X-Code instance; `n` must be prime and at least 3.
    pub fn new(n: usize) -> Result<Self, CodeError> {
        if !is_prime(n) || n < 3 {
            return Err(CodeError::BadGeometry(format!(
                "x-code needs prime n ≥ 3, got {n}"
            )));
        }
        Ok(XCode { n })
    }

    /// Array dimension (columns = memory nodes).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of data rows per column.
    pub fn data_rows(&self) -> usize {
        self.n - 2
    }

    /// Row index of the diagonal parity.
    pub fn diag_row(&self) -> usize {
        self.n - 2
    }

    /// Row index of the anti-diagonal parity.
    pub fn anti_row(&self) -> usize {
        self.n - 1
    }

    /// The two parity cells that protect data cell `(row, col)`:
    /// `((diag_row, diag_col), (anti_row, anti_col))`.
    ///
    /// Both parity columns differ from `col`, which is what lets Aceso place
    /// a data block's two DELTA blocks on two *other* memory nodes.
    pub fn parity_cells_for(&self, row: usize, col: usize) -> ((usize, usize), (usize, usize)) {
        debug_assert!(row < self.data_rows() && col < self.n);
        let n = self.n;
        let diag_col = (col + n - ((row + 2) % n)) % n;
        let anti_col = (col + row + 2) % n;
        ((self.diag_row(), diag_col), (self.anti_row(), anti_col))
    }

    /// All `2n` parity equations of the array.
    pub fn equations(&self) -> Vec<Equation> {
        let n = self.n;
        let mut eqs = Vec::with_capacity(2 * n);
        for i in 0..n {
            eqs.push(Equation {
                parity_row: self.diag_row(),
                parity_col: i,
                data: (0..n - 2).map(|k| (k, (i + k + 2) % n)).collect(),
            });
            eqs.push(Equation {
                parity_row: self.anti_row(),
                parity_col: i,
                data: (0..n - 2)
                    .map(|k| (k, (i + n - ((k + 2) % n)) % n))
                    .collect(),
            });
        }
        eqs
    }

    /// Encodes a full stripe: computes both parity rows from the data rows.
    ///
    /// `data[k][j]` is the cell at data row `k`, column `j`; all cells must
    /// share one length. Returns `(diagonal_row, anti_diagonal_row)`, each a
    /// vector of `n` cells.
    pub fn encode(&self, data: &[Vec<Vec<u8>>]) -> Result<ParityRows, CodeError> {
        let n = self.n;
        if data.len() != n - 2 || data.iter().any(|r| r.len() != n) {
            return Err(CodeError::BadGeometry(format!(
                "expected {} rows of {} cells",
                n - 2,
                n
            )));
        }
        let len = data[0][0].len();
        if data.iter().flatten().any(|c| c.len() != len) {
            return Err(CodeError::LengthMismatch);
        }
        let mut diag = vec![vec![0u8; len]; n];
        let mut anti = vec![vec![0u8; len]; n];
        for (k, row) in data.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let ((_, dc), (_, ac)) = self.parity_cells_for(k, j);
                xor_into(&mut diag[dc], cell);
                xor_into(&mut anti[ac], cell);
            }
        }
        Ok((diag, anti))
    }

    /// Reconstructs every erased (`None`) cell of a stripe in place.
    ///
    /// `stripe[row][col]`; rows `0..n-2` data, row `n-2` diagonal parity,
    /// row `n-1` anti-diagonal parity. Succeeds for any pattern of erasures
    /// confined to at most two columns (X-Code's guarantee) and for any
    /// other pattern that happens to be peelable.
    pub fn reconstruct(&self, stripe: &mut [Vec<Option<Vec<u8>>>]) -> Result<(), CodeError> {
        let n = self.n;
        if stripe.len() != n || stripe.iter().any(|r| r.len() != n) {
            return Err(CodeError::BadGeometry(format!("stripe must be {n}×{n}")));
        }
        let len = match stripe.iter().flatten().flatten().next() {
            Some(c) => c.len(),
            None => return Err(CodeError::Unsolvable),
        };
        if stripe.iter().flatten().flatten().any(|c| c.len() != len) {
            return Err(CodeError::LengthMismatch);
        }
        let erased_cols: std::collections::BTreeSet<usize> = stripe
            .iter()
            .flat_map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(_, c)| c.is_none())
                    .map(|(j, _)| j)
            })
            .collect();
        if erased_cols.len() > 2 {
            // More than two columns touched: may still be peelable (e.g.
            // scattered single cells), so do not reject outright — but full
            // column losses beyond two will fail below with Unsolvable.
        }

        // Peeling over data cells. Live equations: parity cell present.
        // Each equation tracks its current RHS (parity ⊕ known data) and the
        // set of still-unknown data cells in its support.
        struct Live {
            rhs: Vec<u8>,
            unknowns: Vec<(usize, usize)>,
        }
        let mut live: Vec<Live> = Vec::new();
        for eq in self.equations() {
            let Some(p) = stripe[eq.parity_row][eq.parity_col].clone() else {
                continue;
            };
            let mut rhs = p;
            let mut unknowns = Vec::new();
            for &(r, c) in &eq.data {
                match &stripe[r][c] {
                    Some(cell) => xor_into(&mut rhs, cell),
                    None => unknowns.push((r, c)),
                }
            }
            live.push(Live { rhs, unknowns });
        }

        // Peel: keep solving equations with exactly one unknown.
        while let Some(idx) = live.iter().position(|e| e.unknowns.len() == 1) {
            let e = live.swap_remove(idx);
            let (r, c) = e.unknowns[0];
            let value = e.rhs;
            // Substitute into the remaining equations.
            for other in &mut live {
                if let Some(pos) = other.unknowns.iter().position(|&u| u == (r, c)) {
                    other.unknowns.swap_remove(pos);
                    xor_into(&mut other.rhs, &value);
                }
            }
            stripe[r][c] = Some(value);
        }

        // All data recovered? Then recompute any erased parity cells.
        let data_missing = stripe[..n - 2].iter().flatten().any(|c| c.is_none());
        if data_missing {
            return Err(CodeError::Unsolvable);
        }
        for eq in self.equations() {
            if stripe[eq.parity_row][eq.parity_col].is_none() {
                let mut p = vec![0u8; len];
                for &(r, c) in &eq.data {
                    xor_into(&mut p, stripe[r][c].as_ref().unwrap());
                }
                stripe[eq.parity_row][eq.parity_col] = Some(p);
            }
        }
        Ok(())
    }

    /// Recomputes a single parity cell `(parity_row, parity_col)` from the
    /// current contents of the data cells its equation covers.
    ///
    /// This is the migrator's incremental re-encode primitive: when a
    /// column moves to a new memory node, each of its parity cells is
    /// rebuilt one equation at a time — reading `n − 2` live data cells —
    /// instead of re-encoding the whole stripe. The `fetch` callback
    /// supplies the data cell at `(row, col)`; a `None` means the cell is
    /// unavailable and the re-encode fails (the caller falls back to full
    /// reconstruction).
    pub fn reencode_cell(
        &self,
        parity_row: usize,
        parity_col: usize,
        mut fetch: impl FnMut(usize, usize) -> Option<Vec<u8>>,
    ) -> Result<Vec<u8>, CodeError> {
        if !(parity_row == self.diag_row() || parity_row == self.anti_row()) || parity_col >= self.n
        {
            return Err(CodeError::BadGeometry(format!(
                "({parity_row}, {parity_col}) is not a parity cell of n={}",
                self.n
            )));
        }
        let eq = self
            .equations()
            .into_iter()
            .find(|e| e.parity_row == parity_row && e.parity_col == parity_col)
            .expect("parity cell has an equation");
        let mut acc: Option<Vec<u8>> = None;
        for (r, c) in eq.data {
            let cell = fetch(r, c).ok_or(CodeError::Unsolvable)?;
            match &mut acc {
                None => acc = Some(cell),
                Some(a) => {
                    if cell.len() != a.len() {
                        return Err(CodeError::LengthMismatch);
                    }
                    xor_into(a, &cell);
                }
            }
        }
        acc.ok_or(CodeError::Unsolvable)
    }

    /// Folds a delta into a parity cell in place: `parity ⊕= delta`.
    ///
    /// By XOR linearity this is all it takes to keep a re-encoded parity
    /// cell current while writers keep publishing deltas against the
    /// stripe mid-migration (see the `delta_linearity` test).
    pub fn fold_delta(parity: &mut [u8], delta: &[u8]) -> Result<(), CodeError> {
        if parity.len() != delta.len() {
            return Err(CodeError::LengthMismatch);
        }
        xor_into(parity, delta);
        Ok(())
    }

    /// Reconstructs a single data cell `(row, col)` from one parity chain,
    /// reading only the `n − 1` surviving cells of that chain.
    ///
    /// This is the paper's "just one XOR operation involving all DATA,
    /// DELTA, and PARITY blocks" fast path used by degraded SEARCH. The
    /// `fetch` callback supplies surviving cells; it is called once per
    /// chain member. Tries the diagonal chain first, then the
    /// anti-diagonal.
    pub fn reconstruct_cell(
        &self,
        row: usize,
        col: usize,
        mut fetch: impl FnMut(usize, usize) -> Option<Vec<u8>>,
    ) -> Result<Vec<u8>, CodeError> {
        let (diag, anti) = self.parity_cells_for(row, col);
        'chain: for (prow, pcol) in [diag, anti] {
            let Some(mut acc) = fetch(prow, pcol) else {
                continue;
            };
            let eq = self
                .equations()
                .into_iter()
                .find(|e| e.parity_row == prow && e.parity_col == pcol)
                .expect("parity cell has an equation");
            for (r, c) in eq.data {
                if (r, c) == (row, col) {
                    continue;
                }
                match fetch(r, c) {
                    Some(cell) => {
                        if cell.len() != acc.len() {
                            return Err(CodeError::LengthMismatch);
                        }
                        xor_into(&mut acc, &cell);
                    }
                    None => continue 'chain,
                }
            }
            return Ok(acc);
        }
        Err(CodeError::Unsolvable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stripe_for(n: usize, len: usize, seed: u64) -> Vec<Vec<Option<Vec<u8>>>> {
        let code = XCode::new(n).unwrap();
        let data: Vec<Vec<Vec<u8>>> = (0..n - 2)
            .map(|k| {
                (0..n)
                    .map(|j| {
                        (0..len)
                            .map(|b| {
                                (seed.wrapping_mul((k * n * len + j * len + b) as u64 + 0x9E37)
                                    >> 21) as u8
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let (diag, anti) = code.encode(&data).unwrap();
        let mut stripe: Vec<Vec<Option<Vec<u8>>>> = data
            .into_iter()
            .map(|row| row.into_iter().map(Some).collect())
            .collect();
        stripe.push(diag.into_iter().map(Some).collect());
        stripe.push(anti.into_iter().map(Some).collect());
        stripe
    }

    #[test]
    fn rejects_non_prime() {
        assert!(XCode::new(4).is_err());
        assert!(XCode::new(1).is_err());
        assert!(XCode::new(2).is_err());
        assert!(XCode::new(5).is_ok());
        assert!(XCode::new(7).is_ok());
    }

    #[test]
    fn parity_columns_avoid_own_column() {
        for n in [3usize, 5, 7, 11] {
            let code = XCode::new(n).unwrap();
            for k in 0..n - 2 {
                for j in 0..n {
                    let ((dr, dc), (ar, ac)) = code.parity_cells_for(k, j);
                    assert_eq!(dr, n - 2);
                    assert_eq!(ar, n - 1);
                    assert_ne!(dc, j, "n={n} k={k} j={j}");
                    assert_ne!(ac, j, "n={n} k={k} j={j}");
                }
            }
        }
    }

    #[test]
    fn equations_match_parity_map() {
        // Every data cell appears in exactly one diagonal and one
        // anti-diagonal equation, the ones parity_cells_for names.
        for n in [5usize, 7] {
            let code = XCode::new(n).unwrap();
            for eq in code.equations() {
                for &(r, c) in &eq.data {
                    let ((_, dc), (_, ac)) = code.parity_cells_for(r, c);
                    if eq.parity_row == code.diag_row() {
                        assert_eq!(eq.parity_col, dc);
                    } else {
                        assert_eq!(eq.parity_col, ac);
                    }
                }
                assert_eq!(eq.data.len(), n - 2);
            }
        }
    }

    #[test]
    fn recovers_single_column() {
        for n in [3usize, 5, 7] {
            let full = stripe_for(n, 48, 7);
            for col in 0..n {
                let mut s = full.clone();
                for row in s.iter_mut() {
                    row[col] = None;
                }
                XCode::new(n).unwrap().reconstruct(&mut s).unwrap();
                assert_eq!(s, full, "n={n} col={col}");
            }
        }
    }

    #[test]
    fn recovers_two_columns() {
        for n in [5usize, 7] {
            let full = stripe_for(n, 32, 99);
            for c1 in 0..n {
                for c2 in c1 + 1..n {
                    let mut s = full.clone();
                    for row in s.iter_mut() {
                        row[c1] = None;
                        row[c2] = None;
                    }
                    XCode::new(n).unwrap().reconstruct(&mut s).unwrap();
                    assert_eq!(s, full, "n={n} cols={c1},{c2}");
                }
            }
        }
    }

    #[test]
    fn three_columns_unsolvable() {
        let full = stripe_for(5, 16, 3);
        let mut s = full.clone();
        for row in s.iter_mut() {
            row[0] = None;
            row[1] = None;
            row[2] = None;
        }
        assert!(XCode::new(5).unwrap().reconstruct(&mut s).is_err());
    }

    #[test]
    fn single_cell_fast_path() {
        let n = 5;
        let full = stripe_for(n, 64, 42);
        let code = XCode::new(n).unwrap();
        for k in 0..n - 2 {
            for j in 0..n {
                let got = code
                    .reconstruct_cell(k, j, |r, c| {
                        if (r, c) == (k, j) {
                            None
                        } else {
                            full[r][c].clone()
                        }
                    })
                    .unwrap();
                assert_eq!(&got, full[k][j].as_ref().unwrap());
            }
        }
    }

    #[test]
    fn single_cell_fast_path_with_dead_column() {
        // The cell's whole column is dead plus nothing else: still one chain.
        let n = 5;
        let full = stripe_for(n, 64, 5);
        let code = XCode::new(n).unwrap();
        for k in 0..n - 2 {
            for j in 0..n {
                let got = code
                    .reconstruct_cell(k, j, |r, c| if c == j { None } else { full[r][c].clone() })
                    .unwrap();
                assert_eq!(&got, full[k][j].as_ref().unwrap(), "k={k} j={j}");
            }
        }
    }

    #[test]
    fn reencode_matches_encode() {
        for n in [3usize, 5, 7] {
            let full = stripe_for(n, 48, 21);
            let code = XCode::new(n).unwrap();
            for prow in [code.diag_row(), code.anti_row()] {
                for pcol in 0..n {
                    let got = code
                        .reencode_cell(prow, pcol, |r, c| full[r][c].clone())
                        .unwrap();
                    assert_eq!(&got, full[prow][pcol].as_ref().unwrap(), "n={n} ({prow},{pcol})");
                }
            }
        }
    }

    #[test]
    fn reencode_rejects_bad_targets_and_missing_cells() {
        let n = 5;
        let full = stripe_for(n, 16, 8);
        let code = XCode::new(n).unwrap();
        // A data cell is not a parity cell.
        assert!(code.reencode_cell(0, 0, |r, c| full[r][c].clone()).is_err());
        assert!(code
            .reencode_cell(code.diag_row(), n, |r, c| full[r][c].clone())
            .is_err());
        // An unavailable data cell fails the re-encode.
        assert!(matches!(
            code.reencode_cell(code.diag_row(), 0, |r, c| if (r, c) == (0, 2) {
                None
            } else {
                full[r][c].clone()
            }),
            Err(CodeError::Unsolvable)
        ));
    }

    #[test]
    fn fold_delta_tracks_live_writes() {
        // Re-encode a parity cell from old data, then fold in the delta of
        // a concurrent overwrite: the result must equal the parity of the
        // new data (the migrator's mid-batch correctness argument).
        let n = 5;
        let code = XCode::new(n).unwrap();
        let full = stripe_for(n, 32, 13);
        let (k, j) = (1usize, 4usize);
        let ((prow, pcol), _) = code.parity_cells_for(k, j);
        let mut parity = code
            .reencode_cell(prow, pcol, |r, c| full[r][c].clone())
            .unwrap();

        let newv = vec![0x5Au8; 32];
        let delta: Vec<u8> = full[k][j]
            .as_ref()
            .unwrap()
            .iter()
            .zip(&newv)
            .map(|(a, b)| a ^ b)
            .collect();
        XCode::fold_delta(&mut parity, &delta).unwrap();
        assert!(XCode::fold_delta(&mut parity, &[0u8; 8]).is_err());

        let expect = code
            .reencode_cell(prow, pcol, |r, c| {
                if (r, c) == (k, j) {
                    Some(newv.clone())
                } else {
                    full[r][c].clone()
                }
            })
            .unwrap();
        assert_eq!(parity, expect);
    }

    #[test]
    fn delta_linearity() {
        // parity(new) = parity(old) ⊕ contributions of Δ — the property
        // behind Aceso's delta-based reclamation.
        let n = 5;
        let code = XCode::new(n).unwrap();
        let full = stripe_for(n, 32, 11);
        let data_old: Vec<Vec<Vec<u8>>> = (0..n - 2)
            .map(|k| (0..n).map(|j| full[k][j].clone().unwrap()).collect())
            .collect();
        let (mut diag, mut anti) = code.encode(&data_old).unwrap();

        let mut data_new = data_old.clone();
        let newv = vec![0xC3u8; 32];
        let delta: Vec<u8> = data_old[1][3]
            .iter()
            .zip(&newv)
            .map(|(a, b)| a ^ b)
            .collect();
        data_new[1][3] = newv;

        let ((_, dc), (_, ac)) = code.parity_cells_for(1, 3);
        xor_into(&mut diag[dc], &delta);
        xor_into(&mut anti[ac], &delta);
        let (d2, a2) = code.encode(&data_new).unwrap();
        assert_eq!(diag, d2);
        assert_eq!(anti, a2);
    }

    proptest! {
        /// Any two-column erasure over random data reconstructs exactly.
        #[test]
        fn proptest_two_column_recovery(
            seed in any::<u64>(),
            len in 1usize..100,
            c1 in 0usize..5,
            c2 in 0usize..5,
        ) {
            let full = stripe_for(5, len, seed);
            let mut s = full.clone();
            for row in s.iter_mut() {
                row[c1] = None;
                row[c2] = None;
            }
            XCode::new(5).unwrap().reconstruct(&mut s).unwrap();
            prop_assert_eq!(s, full);
        }

        /// Random scattered erasures of ≤ 2 cells always recover (they span
        /// at most two columns).
        #[test]
        fn proptest_scattered_cells(
            seed in any::<u64>(),
            a in (0usize..5, 0usize..5),
            b in (0usize..5, 0usize..5),
        ) {
            let full = stripe_for(5, 24, seed);
            let mut s = full.clone();
            s[a.0][a.1] = None;
            s[b.0][b.1] = None;
            XCode::new(5).unwrap().reconstruct(&mut s).unwrap();
            prop_assert_eq!(s, full);
        }
    }
}
