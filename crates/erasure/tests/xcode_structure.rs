//! Structural invariants of the X-Code construction across prime sizes —
//! the properties the Aceso layout (delta placement, chain decoding)
//! silently relies on.

use aceso_erasure::XCode;
use proptest::prelude::*;
use std::collections::HashMap;

const PRIMES: [usize; 5] = [3, 5, 7, 11, 13];

/// Every data cell appears in exactly one diagonal and one anti-diagonal
/// equation, and those equations' parity columns are what
/// `parity_cells_for` reports.
#[test]
fn every_data_cell_covered_exactly_twice() {
    for n in PRIMES {
        let code = XCode::new(n).unwrap();
        let mut diag_count: HashMap<(usize, usize), usize> = HashMap::new();
        let mut anti_count: HashMap<(usize, usize), usize> = HashMap::new();
        for eq in code.equations() {
            let m = if eq.parity_row == code.diag_row() {
                &mut diag_count
            } else {
                &mut anti_count
            };
            for cell in eq.data {
                *m.entry(cell).or_insert(0) += 1;
            }
        }
        for r in 0..n - 2 {
            for c in 0..n {
                assert_eq!(diag_count.get(&(r, c)), Some(&1), "n={n} ({r},{c}) diag");
                assert_eq!(anti_count.get(&(r, c)), Some(&1), "n={n} ({r},{c}) anti");
            }
        }
    }
}

/// The two parity columns of a data cell are always distinct from the
/// cell's own column *and from each other* — the property that lets Aceso
/// keep two independent delta copies per block.
#[test]
fn parity_columns_distinct_for_n_ge_5() {
    for n in [5usize, 7, 11, 13] {
        let code = XCode::new(n).unwrap();
        for r in 0..n - 2 {
            for c in 0..n {
                let ((_, dc), (_, ac)) = code.parity_cells_for(r, c);
                assert_ne!(dc, c);
                assert_ne!(ac, c);
                assert_ne!(dc, ac, "n={n} r={r} c={c}: delta copies must not collocate");
            }
        }
    }
}

/// Each parity equation touches `n − 1` distinct columns (misses exactly
/// one besides carrying its parity cell).
#[test]
fn equations_span_n_minus_one_columns() {
    for n in PRIMES {
        let code = XCode::new(n).unwrap();
        for eq in code.equations() {
            let mut cols: Vec<usize> = eq.data.iter().map(|&(_, c)| c).collect();
            cols.push(eq.parity_col);
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), n - 1, "n={n} parity@{}", eq.parity_col);
        }
    }
}

proptest! {
    /// Two-column erasures decode for every prime size up to 13.
    #[test]
    fn two_column_recovery_all_primes(
        pi in 0usize..PRIMES.len(),
        seed in any::<u64>(),
        c1 in 0usize..13,
        c2 in 0usize..13,
    ) {
        let n = PRIMES[pi];
        let (c1, c2) = (c1 % n, c2 % n);
        let code = XCode::new(n).unwrap();
        let data: Vec<Vec<Vec<u8>>> = (0..n - 2)
            .map(|k| {
                (0..n)
                    .map(|j| {
                        (0..24)
                            .map(|b| (seed.wrapping_mul((k * 131 + j * 17 + b + 1) as u64) >> 23) as u8)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let (diag, anti) = code.encode(&data).unwrap();
        let mut stripe: Vec<Vec<Option<Vec<u8>>>> = data
            .iter()
            .map(|row| row.iter().cloned().map(Some).collect())
            .collect();
        stripe.push(diag.into_iter().map(Some).collect());
        stripe.push(anti.into_iter().map(Some).collect());
        let full = stripe.clone();
        for row in stripe.iter_mut() {
            row[c1] = None;
            row[c2] = None;
        }
        code.reconstruct(&mut stripe).unwrap();
        prop_assert_eq!(stripe, full);
    }

    /// The single-cell fast path agrees with full-stripe reconstruction.
    #[test]
    fn fast_path_matches_full_decode(
        seed in any::<u64>(),
        r in 0usize..5,
        c in 0usize..7,
    ) {
        let n = 7;
        let code = XCode::new(n).unwrap();
        let data: Vec<Vec<Vec<u8>>> = (0..n - 2)
            .map(|k| {
                (0..n)
                    .map(|j| (0..32).map(|b| (seed.wrapping_mul((k * 97 + j * 13 + b + 1) as u64) >> 19) as u8).collect())
                    .collect()
            })
            .collect();
        let (diag, anti) = code.encode(&data).unwrap();
        let got = code
            .reconstruct_cell(r, c, |rr, cc| {
                if (rr, cc) == (r, c) {
                    None
                } else if rr < n - 2 {
                    Some(data[rr][cc].clone())
                } else if rr == n - 2 {
                    Some(diag[cc].clone())
                } else {
                    Some(anti[cc].clone())
                }
            })
            .unwrap();
        prop_assert_eq!(got, data[r][c].clone());
    }
}
