//! Zipfian sampling over a dense key range `0..n`.
//!
//! Implemented with a precomputed CDF and binary search: exact, simple, and
//! fast enough (one `log2 n` search per sample). The YCSB default skew is
//! θ = 0.99. Ranks are scattered over the key range by a fixed permutation
//! hash so that "hot" keys are not physically adjacent, like YCSB's
//! `ZipfianGenerator` + `fnvhash`.

use rand::Rng;

/// A Zipfian distribution over `0..n` with exponent `theta`.
pub struct Zipf {
    cdf: Vec<f64>,
    n: u64,
    /// Feistel half-width (bits) of the scatter permutation's domain.
    half_bits: u32,
}

impl Zipf {
    /// Builds the distribution (O(n) once).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty key range");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Smallest even bit-width whose domain covers n (Feistel halves
        // must be equal, so round the width up to even).
        let bits = (64 - (n - 1).leading_zeros()).max(2);
        let half_bits = bits.div_ceil(2);
        Zipf { cdf, n, half_bits }
    }

    /// Samples a key id in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let rank = match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i,
        } as u64;
        self.scatter(rank.min(self.n - 1))
    }

    /// Scatters rank `r` over the key range with a fixed permutation.
    ///
    /// A 3-round Feistel network over the smallest even-width power-of-two
    /// domain covering `n`, cycle-walked back into `0..n`. Unlike a hash
    /// modulo `n`, this is bijective: no two ranks merge onto one key, so
    /// the sampled distribution is exactly the Zipf mass per key.
    fn scatter(&self, r: u64) -> u64 {
        let mut x = r;
        loop {
            x = self.permute(x);
            if x < self.n {
                return x;
            }
        }
    }

    /// One pass of the fixed Feistel permutation over `2^(2·half_bits)`.
    fn permute(&self, x: u64) -> u64 {
        let half = self.half_bits;
        let mask = (1u64 << half) - 1;
        let (mut l, mut r) = (x >> half, x & mask);
        for key in [0x9E37_79B9u64, 0xBF58_476Du64, 0x94D0_49BBu64] {
            let f = (r ^ key)
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .rotate_right(21)
                & mask;
            let nl = r;
            r = l ^ f;
            l = nl;
        }
        (l << half) | r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_concentrates_mass() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0u32; 1000];
        let total = 100_000;
        for _ in 0..total {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = counts[..10].iter().sum();
        // Zipf(0.99) over 1000 keys puts roughly a third of the mass on the
        // ten hottest keys.
        assert!(top10 as f64 > 0.25 * total as f64, "top10={top10}");
        // Uniform would put ~1% on any ten keys.
        assert!(top10 as f64 > 10.0 * (total as f64 / 1000.0));
    }

    #[test]
    fn theta_zero_is_uniformish() {
        let z = Zipf::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // The rank→key scatter is a true permutation, so θ=0 should put
        // ~1000 samples on every key.
        let max = *counts.iter().max().unwrap();
        let hit = counts.iter().filter(|&&c| c > 0).count();
        assert!(max < 2_000, "max={max}");
        assert_eq!(hit, 100, "hit={hit}");
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(50, 0.9);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
