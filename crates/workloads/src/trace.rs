//! Replay of external trace files.
//!
//! The paper replays Twitter's production cache traces (ref. \[84\]), which are not
//! redistributable; `crates/workloads` ships synthetic mixes instead
//! ([`crate::twitter`]). Users who *do* have trace files can replay them
//! through this parser. The format is one request per line:
//!
//! ```text
//! <op>,<key>[,<value_len>]
//! ```
//!
//! where `op` is one of `get`, `set`, `add`, `delete` (the twemcache verbs
//! the Twitter traces use: `get`→SEARCH, `set`→UPDATE-or-INSERT,
//! `add`→INSERT, `delete`→DELETE). Blank lines and `#` comments are
//! skipped; malformed lines are reported with their line number.

use crate::{Op, Request};

/// A parse failure with its 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceError {
    /// Line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceError {}

/// Parses a trace from text; `default_value_len` fills in records without
/// an explicit length.
pub fn parse_trace(text: &str, default_value_len: usize) -> Result<Vec<Request>, TraceError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let t = raw.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut fields = t.split(',');
        let op = fields.next().unwrap_or("").trim().to_ascii_lowercase();
        let key = fields.next().map(str::trim).unwrap_or("");
        if key.is_empty() {
            return Err(TraceError {
                line,
                reason: "missing key".into(),
            });
        }
        let value_len = match fields.next().map(str::trim) {
            None | Some("") => default_value_len,
            Some(v) => v.parse().map_err(|_| TraceError {
                line,
                reason: format!("bad value length {v:?}"),
            })?,
        };
        let op = match op.as_str() {
            "get" | "gets" => Op::Search,
            "set" | "replace" | "cas" => Op::Update,
            "add" => Op::Insert,
            "delete" | "del" => Op::Delete,
            other => {
                return Err(TraceError {
                    line,
                    reason: format!("unknown op {other:?}"),
                });
            }
        };
        out.push(Request {
            op,
            key: key.as_bytes().to_vec(),
            value_len,
        });
    }
    Ok(out)
}

/// Reads and parses a trace file.
pub fn load_trace(
    path: &std::path::Path,
    default_value_len: usize,
) -> Result<Vec<Request>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_trace(&text, default_value_len)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_trace() {
        let text = "\
# a comment
get,user1
set,user2,512

add,user3
delete,user1
";
        let reqs = parse_trace(text, 100).unwrap();
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0].op, Op::Search);
        assert_eq!(reqs[0].key, b"user1");
        assert_eq!(reqs[0].value_len, 100);
        assert_eq!(reqs[1].op, Op::Update);
        assert_eq!(reqs[1].value_len, 512);
        assert_eq!(reqs[2].op, Op::Insert);
        assert_eq!(reqs[3].op, Op::Delete);
    }

    #[test]
    fn rejects_bad_lines_with_position() {
        let e = parse_trace("get,k\nfrobnicate,k2\n", 10).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("frobnicate"));

        let e = parse_trace("set,k,notanumber\n", 10).unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse_trace("get,\n", 10).unwrap_err();
        assert_eq!(e.reason, "missing key");
    }

    #[test]
    fn empty_trace_is_empty() {
        assert!(parse_trace("", 10).unwrap().is_empty());
        assert!(parse_trace("# only comments\n\n", 10).unwrap().is_empty());
    }
}
