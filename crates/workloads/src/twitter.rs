//! Synthetic stand-ins for Twitter's production cache traces (paper §4.3).
//!
//! The paper replays traces from three cluster types [Yang et al., ToS'21]:
//!
//! * **STORAGE** — fronts slow storage; read-dominated.
//! * **COMPUTE** — caches computation results; modification-heavy.
//! * **TRANSIENT** — short-lived data; frequent inserts and deletions.
//!
//! The traces themselves are not redistributable, so these generators
//! reproduce the *mix shape* the paper describes (read-dominated vs
//! write-heavy vs churn-heavy), with Zipfian key popularity as observed in
//! the trace study. See `DESIGN.md` (substitutions table).

use crate::zipf::Zipf;
use crate::{key_bytes, Op, OpMix, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which Twitter cluster mix to synthesize.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TwitterCluster {
    /// Read-dominated (≈ 94% reads).
    Storage,
    /// Modification-heavy (≈ 55% writes).
    Compute,
    /// Churn-heavy: inserts and deletes of short-lived keys.
    Transient,
}

impl TwitterCluster {
    /// The op mix of this cluster family.
    pub fn mix(&self) -> OpMix {
        match self {
            TwitterCluster::Storage => OpMix {
                search: 0.94,
                update: 0.05,
                insert: 0.01,
                delete: 0.0,
            },
            TwitterCluster::Compute => OpMix {
                search: 0.45,
                update: 0.50,
                insert: 0.05,
                delete: 0.0,
            },
            TwitterCluster::Transient => OpMix {
                search: 0.30,
                update: 0.30,
                insert: 0.20,
                delete: 0.20,
            },
        }
    }

    /// Paper label.
    pub fn name(&self) -> &'static str {
        match self {
            TwitterCluster::Storage => "STORAGE",
            TwitterCluster::Compute => "COMPUTE",
            TwitterCluster::Transient => "TRANSIENT",
        }
    }

    /// All clusters in figure order.
    pub const ALL: [TwitterCluster; 3] = [
        TwitterCluster::Storage,
        TwitterCluster::Compute,
        TwitterCluster::Transient,
    ];
}

/// A per-client synthetic Twitter trace.
///
/// DELETEs target keys this client previously inserted (short-lived data),
/// so the stream never deletes another client's keys.
pub struct TwitterWorkload {
    mix: OpMix,
    zipf: Zipf,
    rng: StdRng,
    value_len: usize,
    next_insert: u64,
    live_inserted: Vec<u64>,
}

impl TwitterWorkload {
    /// Builds the stream for `client` over `keys` preloaded keys.
    pub fn new(
        cluster: TwitterCluster,
        keys: u64,
        theta: f64,
        value_len: usize,
        client: u32,
        seed: u64,
    ) -> Self {
        TwitterWorkload {
            mix: cluster.mix(),
            zipf: Zipf::new(keys, theta),
            rng: StdRng::seed_from_u64(seed ^ 0x7717 ^ ((client as u64) << 20)),
            value_len,
            next_insert: keys + ((client as u64 + 1) << 40),
            live_inserted: Vec::new(),
        }
    }
}

impl Iterator for TwitterWorkload {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let mut op = self.mix.sample(&mut self.rng);
        if op == Op::Delete && self.live_inserted.is_empty() {
            op = Op::Insert; // Nothing of ours to delete yet.
        }
        let key = match op {
            Op::Insert => {
                let id = self.next_insert;
                self.next_insert += 1;
                self.live_inserted.push(id);
                key_bytes(id)
            }
            Op::Delete => {
                let i = self.rng.gen_range(0..self.live_inserted.len());
                let id = self.live_inserted.swap_remove(i);
                key_bytes(id)
            }
            _ => key_bytes(self.zipf.sample(&mut self.rng)),
        };
        Some(Request {
            op,
            key,
            value_len: self.value_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_is_read_dominated() {
        let w = TwitterWorkload::new(TwitterCluster::Storage, 100, 0.99, 64, 0, 1);
        let reads = w.take(10_000).filter(|r| r.op == Op::Search).count();
        assert!(reads > 9_000, "reads={reads}");
    }

    #[test]
    fn compute_is_write_heavy() {
        let w = TwitterWorkload::new(TwitterCluster::Compute, 100, 0.99, 64, 0, 1);
        let writes = w.take(10_000).filter(|r| r.op != Op::Search).count();
        assert!(writes > 5_000, "writes={writes}");
    }

    #[test]
    fn transient_deletes_only_own_inserts() {
        let w = TwitterWorkload::new(TwitterCluster::Transient, 100, 0.99, 64, 0, 1);
        let mut inserted = std::collections::HashSet::new();
        for r in w.take(10_000) {
            match r.op {
                Op::Insert => {
                    assert!(inserted.insert(r.key));
                }
                Op::Delete => {
                    assert!(inserted.remove(&r.key), "delete of key never inserted");
                }
                _ => {}
            }
        }
    }
}
