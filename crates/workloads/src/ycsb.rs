//! YCSB core workloads A–D (paper §4.1/§4.3).
//!
//! * A — 50% SEARCH, 50% UPDATE
//! * B — 95% SEARCH, 5% UPDATE
//! * C — 100% SEARCH
//! * D — 95% SEARCH, 5% INSERT
//!
//! One million keys by default, Zipfian θ = 0.99, as in the paper.

use crate::zipf::Zipf;
use crate::{key_bytes, Op, OpMix, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which YCSB core workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YcsbKind {
    /// 50/50 read/update.
    A,
    /// 95/5 read/update.
    B,
    /// Read-only.
    C,
    /// 95/5 read/insert (reads skew to recent keys; approximated with the
    /// same Zipfian over the growing keyspace, as common in re-implementations).
    D,
}

impl YcsbKind {
    /// The op mix of this workload.
    pub fn mix(&self) -> OpMix {
        match self {
            YcsbKind::A => OpMix {
                search: 0.5,
                update: 0.5,
                insert: 0.0,
                delete: 0.0,
            },
            YcsbKind::B => OpMix {
                search: 0.95,
                update: 0.05,
                insert: 0.0,
                delete: 0.0,
            },
            YcsbKind::C => OpMix {
                search: 1.0,
                update: 0.0,
                insert: 0.0,
                delete: 0.0,
            },
            YcsbKind::D => OpMix {
                search: 0.95,
                update: 0.0,
                insert: 0.05,
                delete: 0.0,
            },
        }
    }

    /// Paper label.
    pub fn name(&self) -> &'static str {
        match self {
            YcsbKind::A => "YCSB-A",
            YcsbKind::B => "YCSB-B",
            YcsbKind::C => "YCSB-C",
            YcsbKind::D => "YCSB-D",
        }
    }

    /// All four workloads in figure order.
    pub const ALL: [YcsbKind; 4] = [YcsbKind::A, YcsbKind::B, YcsbKind::C, YcsbKind::D];
}

/// A per-client YCSB request stream.
pub struct YcsbWorkload {
    mix: OpMix,
    zipf: Zipf,
    rng: StdRng,
    value_len: usize,
    next_insert: u64,
}

impl YcsbWorkload {
    /// Builds the stream for `client` over `keys` preloaded keys.
    pub fn new(
        kind: YcsbKind,
        keys: u64,
        theta: f64,
        value_len: usize,
        client: u32,
        seed: u64,
    ) -> Self {
        YcsbWorkload {
            mix: kind.mix(),
            zipf: Zipf::new(keys, theta),
            rng: StdRng::seed_from_u64(seed ^ 0xFACE ^ ((client as u64) << 24)),
            value_len,
            // Inserted keys are fresh and partitioned per client.
            next_insert: keys + ((client as u64 + 1) << 40),
        }
    }

    /// The dense preload key ids all clients share.
    pub fn preload_keys(keys: u64) -> impl Iterator<Item = Vec<u8>> {
        (0..keys).map(key_bytes)
    }
}

impl Iterator for YcsbWorkload {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let op = self.mix.sample(&mut self.rng);
        let key = match op {
            Op::Insert => {
                let id = self.next_insert;
                self.next_insert += 1;
                key_bytes(id)
            }
            _ => key_bytes(self.zipf.sample(&mut self.rng)),
        };
        Some(Request {
            op,
            key,
            value_len: self.value_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_c_is_read_only() {
        let w = YcsbWorkload::new(YcsbKind::C, 100, 0.99, 64, 0, 1);
        for r in w.take(1000) {
            assert_eq!(r.op, Op::Search);
        }
    }

    #[test]
    fn workload_a_is_half_updates() {
        let w = YcsbWorkload::new(YcsbKind::A, 100, 0.99, 64, 0, 1);
        let ups = w.take(10_000).filter(|r| r.op == Op::Update).count();
        assert!((4_500..5_500).contains(&ups), "ups={ups}");
    }

    #[test]
    fn workload_d_inserts_fresh_keys() {
        let w = YcsbWorkload::new(YcsbKind::D, 100, 0.99, 64, 2, 1);
        let inserted: Vec<_> = w
            .take(10_000)
            .filter(|r| r.op == Op::Insert)
            .map(|r| r.key)
            .collect();
        assert!(!inserted.is_empty());
        let preloaded: std::collections::HashSet<_> = YcsbWorkload::preload_keys(100).collect();
        for k in &inserted {
            assert!(!preloaded.contains(k));
        }
        let unique: std::collections::HashSet<_> = inserted.iter().collect();
        assert_eq!(unique.len(), inserted.len());
    }

    #[test]
    fn clients_get_different_streams() {
        let a: Vec<_> = YcsbWorkload::new(YcsbKind::A, 100, 0.99, 64, 0, 1)
            .take(20)
            .collect();
        let b: Vec<_> = YcsbWorkload::new(YcsbKind::A, 100, 0.99, 64, 1, 1)
            .take(20)
            .collect();
        assert_ne!(a, b);
    }
}
