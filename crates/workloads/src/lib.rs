//! Workload generators for the Aceso evaluation (paper §4.1).
//!
//! Three families, matching the paper:
//!
//! * **Microbenchmarks** — single-op-type streams where keys are unique per
//!   client, so there are no concurrent conflicts.
//! * **YCSB core workloads** A–D over 1 M keys with the default Zipfian
//!   skew (θ = 0.99).
//! * **Twitter cluster mixes** — synthetic stand-ins for the production
//!   traces of [Yang et al., ToS'21]: STORAGE is read-dominated, COMPUTE is
//!   modification-heavy, TRANSIENT churns short-lived keys with frequent
//!   inserts and deletes. The real traces are not redistributable; the
//!   generators reproduce the op mixes the paper describes
//!   (see `DESIGN.md`, substitutions).
//!
//! Everything is deterministic under a seed.

#![forbid(unsafe_code)]

pub mod trace;
pub mod twitter;
pub mod ycsb;
pub mod zipf;

pub use twitter::TwitterCluster;
pub use ycsb::YcsbWorkload;
pub use zipf::Zipf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A KV operation kind, in workload terms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Insert a fresh key.
    Insert,
    /// Update an existing key.
    Update,
    /// Point lookup.
    Search,
    /// Delete a key.
    Delete,
}

/// One generated request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// Operation to perform.
    pub op: Op,
    /// Key bytes.
    pub key: Vec<u8>,
    /// Value length in bytes (ignored for SEARCH/DELETE).
    pub value_len: usize,
}

/// Renders key number `id` as a YCSB-style key (`user` + zero-padded id).
pub fn key_bytes(id: u64) -> Vec<u8> {
    format!("user{id:012}").into_bytes()
}

/// Renders a per-client-unique microbenchmark key.
pub fn micro_key(client: u32, seq: u64) -> Vec<u8> {
    format!("cli{client:04}-{seq:012}").into_bytes()
}

/// Deterministic value bytes for a key at a given version (tests verify
/// store contents against this).
pub fn value_for(key: &[u8], version: u64, len: usize) -> Vec<u8> {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ version.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (0..len)
        .map(|i| {
            let x = h.wrapping_mul(i as u64 + 1);
            ((x >> 32) ^ x) as u8
        })
        .collect()
}

/// An operation mix: fractions summing to 1.
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// SEARCH fraction.
    pub search: f64,
    /// UPDATE fraction.
    pub update: f64,
    /// INSERT fraction.
    pub insert: f64,
    /// DELETE fraction.
    pub delete: f64,
}

impl OpMix {
    /// Pure single-op mixes.
    pub fn only(op: Op) -> Self {
        let mut m = OpMix {
            search: 0.0,
            update: 0.0,
            insert: 0.0,
            delete: 0.0,
        };
        match op {
            Op::Search => m.search = 1.0,
            Op::Update => m.update = 1.0,
            Op::Insert => m.insert = 1.0,
            Op::Delete => m.delete = 1.0,
        }
        m
    }

    /// Samples an op kind.
    pub fn sample(&self, rng: &mut impl Rng) -> Op {
        let x: f64 = rng.gen();
        if x < self.search {
            Op::Search
        } else if x < self.search + self.update {
            Op::Update
        } else if x < self.search + self.update + self.insert {
            Op::Insert
        } else {
            Op::Delete
        }
    }
}

/// Microbenchmark stream: one op type, per-client-unique keys
/// (paper §4.2: "keys across different clients are unique, ensuring no
/// concurrent conflicts").
pub struct MicroWorkload {
    client: u32,
    op: Op,
    keys: u64,
    value_len: usize,
    seq: u64,
}

impl MicroWorkload {
    /// A stream of `op` over `keys` per-client keys with `value_len` values.
    pub fn new(client: u32, op: Op, keys: u64, value_len: usize) -> Self {
        MicroWorkload {
            client,
            op,
            keys,
            value_len,
            seq: 0,
        }
    }

    /// The key ids this client will touch (for preloading).
    pub fn preload_keys(&self) -> impl Iterator<Item = Vec<u8>> + '_ {
        (0..self.keys).map(move |i| micro_key(self.client, i))
    }
}

impl Iterator for MicroWorkload {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let key = micro_key(self.client, self.seq % self.keys);
        self.seq += 1;
        Some(Request {
            op: self.op,
            key,
            value_len: self.value_len,
        })
    }
}

/// A generic mixed stream over a Zipfian keyspace (used for the
/// update-ratio sweep of Figure 15).
pub struct MixedWorkload {
    mix: OpMix,
    zipf: Zipf,
    rng: StdRng,
    value_len: usize,
    next_insert: u64,
}

impl MixedWorkload {
    /// Builds a stream over `keys` preloaded keys with the given mix; new
    /// inserts take ids from `keys` upward, partitioned by client.
    pub fn new(
        mix: OpMix,
        keys: u64,
        theta: f64,
        value_len: usize,
        client: u32,
        seed: u64,
    ) -> Self {
        MixedWorkload {
            mix,
            zipf: Zipf::new(keys, theta),
            rng: StdRng::seed_from_u64(seed ^ ((client as u64) << 32)),
            value_len,
            next_insert: keys + ((client as u64 + 1) << 40),
        }
    }
}

impl Iterator for MixedWorkload {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let op = self.mix.sample(&mut self.rng);
        let key = match op {
            Op::Insert => {
                let id = self.next_insert;
                self.next_insert += 1;
                key_bytes(id)
            }
            _ => key_bytes(self.zipf.sample(&mut self.rng)),
        };
        Some(Request {
            op,
            key,
            value_len: self.value_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_keys_unique_per_client() {
        let a: Vec<_> = MicroWorkload::new(1, Op::Update, 10, 64).take(10).collect();
        let b: Vec<_> = MicroWorkload::new(2, Op::Update, 10, 64).take(10).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x.key, y.key);
            assert_eq!(x.op, Op::Update);
        }
    }

    #[test]
    fn micro_wraps_around() {
        let reqs: Vec<_> = MicroWorkload::new(0, Op::Search, 3, 64).take(7).collect();
        assert_eq!(reqs[0].key, reqs[3].key);
        assert_eq!(reqs[2].key, reqs[5].key);
        assert_ne!(reqs[0].key, reqs[1].key);
    }

    #[test]
    fn value_is_deterministic_and_version_sensitive() {
        assert_eq!(value_for(b"k", 1, 32), value_for(b"k", 1, 32));
        assert_ne!(value_for(b"k", 1, 32), value_for(b"k", 2, 32));
        assert_ne!(value_for(b"k", 1, 32), value_for(b"j", 1, 32));
    }

    #[test]
    fn opmix_sampling_respects_fractions() {
        let mix = OpMix {
            search: 0.5,
            update: 0.5,
            insert: 0.0,
            delete: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut searches = 0;
        for _ in 0..10_000 {
            match mix.sample(&mut rng) {
                Op::Search => searches += 1,
                Op::Update => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!((4_500..5_500).contains(&searches));
    }

    #[test]
    fn mixed_workload_inserts_use_fresh_keys() {
        let mix = OpMix {
            search: 0.0,
            update: 0.0,
            insert: 1.0,
            delete: 0.0,
        };
        let keys: Vec<_> = MixedWorkload::new(mix, 100, 0.99, 64, 3, 7)
            .take(50)
            .map(|r| r.key)
            .collect();
        let unique: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len());
    }
}
