//! Geometry-parameterized tests: coding groups other than n = 5, unusual
//! block sizes, and parallel recovery — the store must be correct for any
//! prime group size X-Code supports.

use aceso_core::{recover_mn, AcesoConfig, AcesoStore};
use std::sync::Arc;

fn store_n(n: usize) -> Arc<AcesoStore> {
    AcesoStore::launch(AcesoConfig {
        num_mns: n,
        num_arrays: 6,
        num_delta: 24,
        index_groups: 512,
        ..AcesoConfig::small()
    })
    .unwrap()
}

fn roundtrip_and_recover(store: &Arc<AcesoStore>, tag: &str, kill_col: usize) {
    let mut c = store.client().unwrap();
    let val = vec![0xEEu8; 700];
    for i in 0..400u32 {
        let key = format!("{tag}-{i}");
        c.insert(key.as_bytes(), &val).unwrap();
    }
    c.close_open_blocks().unwrap();
    store.checkpoint_tick().unwrap();
    store.kill_mn(kill_col);
    recover_mn(store, kill_col).unwrap();
    let mut fresh = store.client().unwrap();
    for i in (0..400u32).step_by(17) {
        let key = format!("{tag}-{i}");
        assert_eq!(
            fresh.search(key.as_bytes()).unwrap().as_deref(),
            Some(&val[..]),
            "{key}"
        );
    }
}

/// A 3-MN coding group (the smallest prime): one data row per column.
#[test]
fn coding_group_of_three() {
    let store = store_n(3);
    roundtrip_and_recover(&store, "n3", 1);
    store.shutdown();
}

/// A 7-MN coding group: five data rows per column, wider parity chains.
#[test]
fn coding_group_of_seven() {
    let store = store_n(7);
    roundtrip_and_recover(&store, "n7", 4);
    store.shutdown();
}

/// Two failures in a 7-MN group.
#[test]
fn two_failures_in_group_of_seven() {
    let store = store_n(7);
    let mut c = store.client().unwrap();
    let val = vec![0x42u8; 700];
    for i in 0..400u32 {
        c.insert(format!("n7x2-{i}").as_bytes(), &val).unwrap();
    }
    c.close_open_blocks().unwrap();
    store.checkpoint_tick().unwrap();
    store.kill_mn(1);
    store.kill_mn(5);
    recover_mn(&store, 1).unwrap();
    recover_mn(&store, 5).unwrap();
    let mut fresh = store.client().unwrap();
    for i in (0..400u32).step_by(13) {
        let key = format!("n7x2-{i}");
        assert_eq!(
            fresh.search(key.as_bytes()).unwrap().as_deref(),
            Some(&val[..]),
            "{key}"
        );
    }
    store.shutdown();
}

/// Parallel recovery workers produce the same recovered state as one.
#[test]
fn parallel_recovery_is_equivalent() {
    for workers in [1usize, 3] {
        let store = AcesoStore::launch(AcesoConfig {
            recovery_workers: workers,
            num_arrays: 6,
            ..AcesoConfig::small()
        })
        .unwrap();
        let mut c = store.client().unwrap();
        let val = vec![0x77u8; 700];
        for i in 0..500u32 {
            c.insert(format!("pw-{i}").as_bytes(), &val).unwrap();
        }
        c.close_open_blocks().unwrap();
        store.checkpoint_tick().unwrap();
        store.checkpoint_tick().unwrap();
        store.kill_mn(0);
        recover_mn(&store, 0).unwrap();
        let mut fresh = store.client().unwrap();
        for i in (0..500u32).step_by(19) {
            let key = format!("pw-{i}");
            assert_eq!(
                fresh.search(key.as_bytes()).unwrap().as_deref(),
                Some(&val[..]),
                "workers={workers} {key}"
            );
        }
        store.shutdown();
    }
}

/// Unusual block sizes (non-power-of-two multiple of 64) still work.
#[test]
fn odd_block_size() {
    let store = AcesoStore::launch(AcesoConfig {
        block_size: 24_576, // 24 KiB.
        num_arrays: 16,
        ..AcesoConfig::small()
    })
    .unwrap();
    let mut c = store.client().unwrap();
    for i in 0..300u32 {
        let key = format!("odd-{i}");
        c.insert(key.as_bytes(), key.as_bytes()).unwrap();
    }
    for i in (0..300u32).step_by(23) {
        let key = format!("odd-{i}");
        assert_eq!(
            c.search(key.as_bytes()).unwrap().as_deref(),
            Some(key.as_bytes())
        );
    }
    store.shutdown();
}
