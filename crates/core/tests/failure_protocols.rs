//! Edge-case tests of the failure-handling protocols: Meta-lock breaking,
//! mixed crashes, degraded paths, checkpoint/write races, and resource
//! exhaustion errors.

use aceso_core::client::CrashPoint;
use aceso_core::{
    recover_cn, recover_mixed, recover_mn, recover_mn_with, AcesoConfig, AcesoStore, ClientTuning,
    StoreError,
};
use std::sync::Arc;

fn small() -> Arc<AcesoStore> {
    AcesoStore::launch(AcesoConfig::small()).unwrap()
}

/// A client that crashes while holding a slot's Meta lock must not block
/// other writers forever: they break the lock by re-locking at the next
/// odd epoch (§3.2.2, remark 2).
#[test]
fn meta_lock_break_after_holder_crash() {
    use aceso_index::{fingerprint, RemoteIndex, SlotMeta};

    let store = small();
    let mut a = store.client().unwrap();
    a.insert(b"locked-key", b"v0").unwrap();

    // Find the slot and lock its Meta by hand (simulating a client that
    // died between Algorithm 1's lines 9 and 20).
    let key = b"locked-key";
    let col = (aceso_index::route_hash(key) % 5) as usize;
    let node = store.directory().node_of(col);
    let index = RemoteIndex::new(node, store.map.index);
    let dm = store.cluster.background_client();
    let scan = index.scan(&dm, key, fingerprint(key)).unwrap();
    let slot = scan.matches[0];
    let locked = SlotMeta {
        len64: slot.meta.len64,
        epoch: slot.meta.epoch + 1,
    };
    assert_eq!(
        index.cas_meta(&dm, slot.addr, slot.meta, locked).unwrap(),
        slot.meta
    );

    // Another client updates the same key: it must spin, break the lock,
    // and commit.
    let mut b = store.client().unwrap();
    b.update(key, b"v1").unwrap();
    assert_eq!(b.search(key).unwrap().as_deref(), Some(&b"v1"[..]));

    // The Meta must be unlocked (even epoch) afterwards.
    let after = index.read_slot(&dm, slot.addr).unwrap();
    assert!(
        !after.meta.is_locked(),
        "meta left locked: {:?}",
        after.meta
    );
    // And the epoch moved past the broken lock.
    assert!(after.meta.epoch > locked.epoch);
    store.shutdown();
}

/// A holder killed *at* `CrashPoint::WhileMetaLocked` (mid-rollover, lock
/// taken, nothing written yet) leaves the Meta at an odd epoch; a second
/// client must spin out its 50-read budget, break the lock by re-locking
/// at the next odd epoch, and release it even (§3.2.2 remark 2).
#[test]
fn lock_break_after_holder_killed_while_locked() {
    use aceso_index::{fingerprint, RemoteIndex};

    let store = small();
    let key = b"lb-rollover";
    let mut a = store.client().unwrap();
    a.insert(key, b"v0").unwrap();

    let col = (aceso_index::route_hash(key) % 5) as usize;
    let index = RemoteIndex::new(store.directory().node_of(col), store.map.index);
    let dm = store.cluster.background_client();
    let slot_addr = {
        let scan = index.scan(&dm, key, fingerprint(key)).unwrap();
        scan.matches[0].addr
    };

    // Drive the slot version to 0xFF so the next mutation takes the
    // rollover lock (Algorithm 1 lines 7–13).
    loop {
        let s = index.read_slot(&dm, slot_addr).unwrap();
        if s.atomic.ver == 0xFF {
            break;
        }
        a.update(key, b"spin").unwrap();
    }

    a.crash_point = Some(CrashPoint::WhileMetaLocked);
    assert!(a.update(key, b"torn").is_err());
    drop(a);
    let locked = index.read_slot(&dm, slot_addr).unwrap().meta;
    assert!(locked.is_locked(), "holder died without the lock: {locked:?}");
    assert_eq!(locked.epoch % 2, 1);

    // The second client breaks the abandoned lock and commits.
    let mut b = store.client().unwrap();
    b.update(key, b"vb").unwrap();
    let after = index.read_slot(&dm, slot_addr).unwrap().meta;
    assert!(!after.is_locked(), "meta left locked: {after:?}");
    // Break path parity: re-lock at locked+2 (odd), unlock at +1 (even).
    assert_eq!(after.epoch, locked.epoch + 3);
    assert_eq!(after.epoch % 2, 0);
    assert_eq!(b.search(key).unwrap().as_deref(), Some(&b"vb"[..]));
    store.shutdown();
}

/// A holder killed between its rollover lock and commit CAS leaves an
/// *in-flight* KV behind the abandoned lock. The lock-breaker's commit
/// wins the slot; CN recovery of the dead holder must invalidate the
/// torn KV, never resurrect it.
#[test]
fn broken_holder_torn_kv_not_resurrected() {
    use aceso_index::{fingerprint, RemoteIndex};

    let store = small();
    let key = b"lb-torn";
    let mut a = store.client().unwrap();
    a.insert(key, b"v0").unwrap();

    let col = (aceso_index::route_hash(key) % 5) as usize;
    let index = RemoteIndex::new(store.directory().node_of(col), store.map.index);
    let dm = store.cluster.background_client();
    let slot_addr = {
        let scan = index.scan(&dm, key, fingerprint(key)).unwrap();
        scan.matches[0].addr
    };
    loop {
        let s = index.read_slot(&dm, slot_addr).unwrap();
        if s.atomic.ver == 0xFF {
            break;
        }
        a.update(key, b"spin").unwrap();
    }

    // Crash after the KV write but before the commit CAS: the lock is
    // held AND a torn KV exists in the Block Area.
    a.crash_point = Some(CrashPoint::BeforeCommit);
    assert!(a.update(key, b"torn").is_err());
    let aid = a.id();
    drop(a);
    let locked = index.read_slot(&dm, slot_addr).unwrap().meta;
    assert!(locked.is_locked(), "holder died without the lock: {locked:?}");

    let mut b = store.client().unwrap();
    b.update(key, b"vb").unwrap();
    let after = index.read_slot(&dm, slot_addr).unwrap().meta;
    assert!(!after.is_locked());
    assert_eq!(after.epoch, locked.epoch + 3);

    // Revive the holder: recovery must retire the torn KV (Slot Version
    // invalidation), leaving the breaker's value in place.
    let mut revived = store.client_with_id(aid);
    recover_cn(&store, &mut revived).unwrap();
    assert_eq!(revived.search(key).unwrap().as_deref(), Some(&b"vb"[..]));
    let mut fresh = store.client().unwrap();
    assert_eq!(fresh.search(key).unwrap().as_deref(), Some(&b"vb"[..]));
    store.shutdown();
}

/// Mixed crash (§3.4.3): a client dies mid-write AND an MN dies; recovery
/// restores client consistency first, then the MN.
#[test]
fn mixed_cn_and_mn_crash() {
    let store = small();
    let mut c = store.client().unwrap();
    for i in 0..400u32 {
        let key = format!("mx-{i}");
        c.insert(key.as_bytes(), key.as_bytes()).unwrap();
    }
    store.checkpoint_tick().unwrap();
    let cli_id = c.id();
    c.crash_point = Some(CrashPoint::BeforeCommit);
    assert!(c.update(b"mx-0", b"torn").is_err());
    drop(c);

    store.kill_mn(3);
    let mut revived = store.client_with_id(cli_id);
    let reports = recover_mixed(&store, &[3], &mut [&mut revived]).unwrap();
    assert_eq!(reports.len(), 1);

    for i in (0..400u32).step_by(23) {
        let key = format!("mx-{i}");
        assert_eq!(
            revived.search(key.as_bytes()).unwrap().as_deref(),
            Some(key.as_bytes())
        );
    }
    store.shutdown();
}

/// Index-tier-only recovery leaves old blocks lost; a fresh client must
/// still read everything via degraded SEARCH, and a later Block-tier pass
/// restores normal reads.
#[test]
fn degraded_then_full_recovery() {
    let store = small();
    let mut c = store.client().unwrap();
    // ~1 KB values so the data spans many blocks across all five columns.
    let val = vec![0x5Au8; 900];
    for i in 0..300u32 {
        let key = format!("dg2-{i}");
        c.insert(key.as_bytes(), &val).unwrap();
    }
    c.close_open_blocks().unwrap();
    store.checkpoint_tick().unwrap();
    store.checkpoint_tick().unwrap();
    store.kill_mn(2);
    let r = recover_mn_with(&store, 2, false).unwrap();
    assert!(r.old_lblock_count == 0 || r.recover_old_lblock_ms == 0.0);

    // Degraded reads: every key, fresh client (no stale cache).
    let mut fresh = store.client().unwrap();
    for i in 0..300u32 {
        let key = format!("dg2-{i}");
        assert_eq!(
            fresh.search(key.as_bytes()).unwrap().as_deref(),
            Some(&val[..]),
            "degraded {key}"
        );
    }

    // Degraded reads cost more verbs than normal ones.
    let profile = fresh.dm.take_ops();
    let avg_verbs: f64 =
        profile.records.iter().map(|r| r.verbs as f64).sum::<f64>() / profile.records.len() as f64;
    assert!(
        avg_verbs > 3.0,
        "degraded searches should read parity chains: {avg_verbs}"
    );
    store.shutdown();
}

/// Checkpoint rounds running concurrently with committing writers must
/// never capture a torn slot (Atomic/Meta words are snapshotted whole).
#[test]
fn checkpoint_concurrent_with_writes_is_consistent() {
    let store = small();
    let mut setup = store.client().unwrap();
    for i in 0..200u32 {
        setup.insert(format!("ck-{i}").as_bytes(), b"x").unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = store.client().unwrap();
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let key = format!("ck-{}", i % 200);
                c.update(key.as_bytes(), &i.to_le_bytes()).unwrap();
                i += 1;
            }
        })
    };
    for _ in 0..20 {
        store.checkpoint_tick().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();

    // Crash + recover using the last checkpoint: everything must be
    // readable and committed (no torn state resurrected).
    let mut c = store.client().unwrap();
    c.close_open_blocks().ok();
    store.kill_mn(0);
    recover_mn(&store, 0).unwrap();
    let mut fresh = store.client().unwrap();
    for i in (0..200u32).step_by(11) {
        let key = format!("ck-{i}");
        assert!(fresh.search(key.as_bytes()).unwrap().is_some(), "{key}");
    }
    store.shutdown();
}

/// The auto-checkpoint background loop runs and advances Index Versions.
#[test]
fn auto_checkpoint_loop() {
    let cfg = AcesoConfig {
        auto_checkpoint: true,
        ckpt_interval_ms: 20,
        ..AcesoConfig::small()
    };
    let store = AcesoStore::launch(cfg).unwrap();
    let mut c = store.client().unwrap();
    c.insert(b"auto", b"v").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    let server = store.server(0);
    let iv = server.index.local_index_version(&server.node.region);
    assert!(
        iv > 2,
        "background rounds should have advanced the IV: {iv}"
    );
    store.shutdown();
}

/// Value-only cache tuning (the factor-analysis +CKPT configuration) is
/// still fully correct, just costlier.
#[test]
fn value_only_cache_is_correct() {
    let store = small();
    let tuning = ClientTuning {
        use_cache: true,
        cache_slot_addr: false,
        ..ClientTuning::default()
    };
    let mut a = store.client_with(tuning).unwrap();
    let mut b = store.client().unwrap();
    a.insert(b"vk", b"v1").unwrap();
    assert_eq!(a.search(b"vk").unwrap().as_deref(), Some(&b"v1"[..]));
    // Foreign update invalidates a's cached address.
    b.update(b"vk", b"v2").unwrap();
    assert_eq!(a.search(b"vk").unwrap().as_deref(), Some(&b"v2"[..]));
    a.update(b"vk", b"v3").unwrap();
    assert_eq!(b.search(b"vk").unwrap().as_deref(), Some(&b"v3"[..]));
    store.shutdown();
}

/// Cache-disabled tuning (ORIGIN-style) works too.
#[test]
fn no_cache_tuning_is_correct() {
    let store = small();
    let tuning = ClientTuning {
        use_cache: false,
        cache_slot_addr: false,
        ..ClientTuning::default()
    };
    let mut c = store.client_with(tuning).unwrap();
    c.insert(b"nc", b"v1").unwrap();
    assert_eq!(c.search(b"nc").unwrap().as_deref(), Some(&b"v1"[..]));
    c.update(b"nc", b"v2").unwrap();
    assert_eq!(c.search(b"nc").unwrap().as_deref(), Some(&b"v2"[..]));
    store.shutdown();
}

/// Exhausting the Block Area surfaces `OutOfBlocks`, not a hang or panic.
#[test]
fn out_of_blocks_is_reported() {
    let cfg = AcesoConfig {
        num_arrays: 1, // 3 data blocks per MN, 15 total, 64 KiB each.
        num_delta: 8,
        reclaim_free_ratio: 0.0, // Never reclaim.
        ..AcesoConfig::small()
    };
    let store = AcesoStore::launch(cfg).unwrap();
    let mut c = store.client().unwrap();
    let val = vec![0u8; 900];
    let mut err = None;
    for i in 0..5_000u32 {
        if let Err(e) = c.insert(format!("of-{i}").as_bytes(), &val) {
            err = Some(e);
            break;
        }
    }
    assert_eq!(err, Some(StoreError::OutOfBlocks));
    store.shutdown();
}

/// Overfilling one bucket group surfaces `IndexFull`.
#[test]
fn index_full_is_reported() {
    let cfg = AcesoConfig {
        index_groups: 1, // 24 slots total.
        ..AcesoConfig::small()
    };
    let store = AcesoStore::launch(cfg).unwrap();
    let mut c = store.client().unwrap();
    let mut err = None;
    for i in 0..200u32 {
        if let Err(e) = c.insert(format!("if-{i}").as_bytes(), b"v") {
            err = Some(e);
            break;
        }
    }
    assert_eq!(err, Some(StoreError::IndexFull));
    store.shutdown();
}

/// CN recovery with nothing torn is a no-op that reports zero repairs.
#[test]
fn cn_recovery_of_clean_client() {
    let store = small();
    let mut c = store.client().unwrap();
    for i in 0..50u32 {
        c.insert(format!("clean-{i}").as_bytes(), b"v").unwrap();
    }
    let id = c.id();
    drop(c);
    let mut revived = store.client_with_id(id);
    let r = recover_cn(&store, &mut revived).unwrap();
    assert_eq!(r.slots_repaired, 0);
    assert!(r.slots_kept > 0);
    store.shutdown();
}

/// Two clients crash; both recover; data stays consistent.
#[test]
fn two_crashed_clients_recover() {
    let store = small();
    let mut a = store.client().unwrap();
    let mut b = store.client().unwrap();
    a.insert(b"two-a", b"va").unwrap();
    b.insert(b"two-b", b"vb").unwrap();
    let (ida, idb) = (a.id(), b.id());
    a.crash_point = Some(CrashPoint::AfterKvWrite);
    b.crash_point = Some(CrashPoint::BeforeCommit);
    assert!(a.update(b"two-a", b"xa").is_err());
    assert!(b.update(b"two-b", b"xb").is_err());
    drop((a, b));

    let mut ra = store.client_with_id(ida);
    let mut rb = store.client_with_id(idb);
    recover_cn(&store, &mut ra).unwrap();
    recover_cn(&store, &mut rb).unwrap();
    assert_eq!(ra.search(b"two-a").unwrap().as_deref(), Some(&b"va"[..]));
    assert_eq!(rb.search(b"two-b").unwrap().as_deref(), Some(&b"vb"[..]));
    store.shutdown();
}
