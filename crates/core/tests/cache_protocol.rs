//! Client index-cache protocol tests (PR 10): the capacity bound under
//! churn, and the deferred-invalidation queue surviving failed doorbell
//! batches.
//!
//! The invalidation tests drive the exact bug class this PR fixes: a
//! speculation loss defers three inline invalidation writes (Slot
//! Version ← −1 plus two XOR delta fix-ups), and any error path that
//! drops the taken queue leaves the lost-race KV readable forever. The
//! oracle is `AcesoStore::memory_usage().valid` with bitmap flushes held
//! back: a decodable, non-invalidated orphan counts as valid bytes.

use aceso_core::{AcesoConfig, AcesoStore, ClientTuning, StoreError};
use aceso_rdma::{FaultAction, FaultPlan, FaultRule, RdmaError, VerbKind};
use std::sync::Arc;

fn launch() -> Arc<AcesoStore> {
    AcesoStore::launch(AcesoConfig::small()).unwrap()
}

/// The cache never exceeds `cache_capacity`, no matter how many distinct
/// keys an insert/search/update churn pushes through it, and shrinking
/// the bound at runtime evicts down immediately. Before PR 10 the cache
/// was an unbounded `HashMap` — a long-lived client scanning a large
/// keyspace grew it without limit.
#[test]
fn cache_stays_bounded_under_churn() {
    let store = launch();
    let mut cli = store
        .client_with(ClientTuning {
            cache_capacity: 8,
            ..ClientTuning::default()
        })
        .unwrap();

    let keys: Vec<Vec<u8>> = (0..200)
        .map(|i| format!("churn-key-{i}").into_bytes())
        .collect();
    for k in &keys {
        cli.insert(k, b"churn-value").unwrap();
        assert!(cli.cache_len() <= 8, "insert churn broke the bound");
    }
    assert_eq!(cli.cache_len(), 8, "steady state should sit at capacity");

    for (i, k) in keys.iter().enumerate() {
        cli.search(k).unwrap();
        if i % 3 == 0 {
            cli.update(k, b"churn-value-2").unwrap();
        }
        assert!(cli.cache_len() <= 8, "search/update churn broke the bound");
    }

    // Runtime shrink evicts down; runtime grow keeps what is cached.
    cli.set_tuning(ClientTuning {
        cache_capacity: 3,
        ..ClientTuning::default()
    });
    assert!(cli.cache_len() <= 3, "shrink must evict down to the bound");
    cli.set_tuning(ClientTuning {
        cache_capacity: 0,
        ..ClientTuning::default()
    });
    assert_eq!(cli.cache_len(), 0, "capacity 0 disables caching");
    cli.search(&keys[0]).unwrap();
    assert_eq!(cli.cache_len(), 0, "capacity 0 must not re-fill");
    store.shutdown();
}

/// Failed doorbell batches must not drop deferred invalidations.
///
/// Client A holds a stale cache entry for a key client B has since
/// updated, so A's pipelined update loses its speculation: the first
/// batch writes a full KV image (the orphan) whose invalidation is
/// deferred into the redo batch. An injected fault fails the redo batch
/// at its first invalidation write, and a second injected fault fails
/// the end-of-op `flush_invals` drain too. Both paths used to drop the
/// taken queue (`write_kv`/`redo_pipelined` restored it only on epoch
/// fences; `flush_invals` never restored it) — the orphan then stayed a
/// decodable, valid-versioned KV forever. With the queue restored, the
/// next successful batch carries the stamps for free.
#[test]
fn failed_batches_do_not_drop_deferred_invalidations() {
    let store = launch();
    let mut a = store.client().unwrap();
    let mut b = store.client().unwrap();
    let k = b"inval-key";

    a.insert(k, b"v1").unwrap();
    let one_slot = store.memory_usage().valid;
    b.update(k, b"v2").unwrap();
    // B's obsolete mark for v1's slot stays buffered (no bitmap flush),
    // so `valid` sees both images: the byte size of one KV slot is the
    // difference, and every assertion below is phrased in those units.
    let baseline = store.memory_usage().valid;
    let slot_bytes = baseline - one_slot;
    assert!(slot_bytes > 0);

    // A's update speculates on its cached (now stale) slot words.
    // Batch 1 (KV write + two delta copies = writes 1..=3) lands the
    // orphan; the redo batch's first verb-4 write is the orphan's
    // invalidation stamp — fail it, then fail the first write of the
    // end-of-op drain as well. Both rules skip 3 matches: a firing rule
    // returns before later rules' counters advance, so rule 2 never
    // observes the write rule 1 killed and trips on the drain's first
    // write instead.
    let plan = FaultPlan::with_rules(vec![
        FaultRule::new(FaultAction::Fail).on_kind(VerbKind::Write).after(3),
        FaultRule::new(FaultAction::Fail).on_kind(VerbKind::Write).after(3),
    ]);
    a.dm.install_fault_plan(Arc::clone(&plan));
    let r = a.update(k, b"v3");
    assert!(
        matches!(r, Err(StoreError::Rdma(RdmaError::Injected { .. }))),
        "update must surface the injected fault: {r:?}"
    );
    assert_eq!(plan.fired_count(), 2, "both injected faults must fire");

    // The orphan KV landed with a valid slot version and its stamps are
    // still queued: exactly one extra slot's bytes are (transiently)
    // valid.
    assert_eq!(store.memory_usage().valid, baseline + slot_bytes);

    // The next successful operation drains the restored queue in its own
    // write batch: v4 commits (one new valid slot) and the orphan is
    // stamped invalid (one slot leaves), so `valid` grows by exactly one
    // slot over the baseline. Before the fix it grew by two — the orphan
    // stayed readable-valid forever.
    a.update(k, b"v4").unwrap();
    assert_eq!(
        store.memory_usage().valid,
        baseline + slot_bytes,
        "deferred invalidation was dropped: the lost-race orphan is still valid"
    );
    assert_eq!(a.search(k).unwrap().as_deref(), Some(&b"v4"[..]));

    // The invalidation triplet (KV stamp + both delta fix-ups) rode one
    // batch, so parity stayed linear throughout.
    let report = aceso_core::scrub(&store).unwrap();
    assert!(report.is_clean(), "inval fix-ups broke parity: {report:?}");
    store.shutdown();
}
