//! White-box tests of the Index Version protocol (§3.2.3): block stamps,
//! checkpoint labels, and the old/new classification recovery relies on.

use aceso_blockalloc::{BlockRecord, Role};
use aceso_core::proto::{ServerReq, ServerResp};
use aceso_core::{AcesoConfig, AcesoStore};
use std::sync::Arc;

fn store() -> Arc<AcesoStore> {
    AcesoStore::launch(AcesoConfig::small()).unwrap()
}

fn data_records(store: &Arc<AcesoStore>, col: usize) -> Vec<(u32, BlockRecord)> {
    let dm = store.cluster.background_client();
    let ServerResp::Records { list } = dm
        .rpc(
            store.directory().node_of(col),
            &store.directory().rpc_of(col),
            ServerReq::ListDataBlocks,
            16,
        )
        .unwrap()
    else {
        panic!()
    };
    list.into_iter()
        .map(|(id, b)| (id, BlockRecord::decode(&b, store.map.blocks.block_size)))
        .collect()
}

/// Index Versions start at 1, tick in lockstep across columns, and blocks
/// are stamped with the IV current at fill time.
#[test]
fn index_versions_tick_in_lockstep_and_stamp_blocks() {
    let store = store();
    // All partitions start at IV 1.
    for col in 0..5 {
        let s = store.server(col);
        assert_eq!(s.index.local_index_version(&s.node.region), 1);
    }
    let mut c = store.client().unwrap();
    let val = vec![1u8; 900];
    for i in 0..200u32 {
        c.insert(format!("iv-a-{i}").as_bytes(), &val).unwrap();
    }
    c.close_open_blocks().unwrap(); // Stamped with IV 1.

    let r1 = store.checkpoint_tick().unwrap();
    assert!(r1.iter().all(|r| r.index_version == 1));
    for col in 0..5 {
        let s = store.server(col);
        assert_eq!(s.index.local_index_version(&s.node.region), 2);
    }

    for i in 0..200u32 {
        c.insert(format!("iv-b-{i}").as_bytes(), &val).unwrap();
    }
    c.close_open_blocks().unwrap(); // Stamped with IV 2.

    let mut stamps: Vec<u64> = Vec::new();
    for col in 0..5 {
        for (_, rec) in data_records(&store, col) {
            if rec.role == Role::Data && rec.index_version != 0 {
                stamps.push(rec.index_version);
            }
        }
    }
    assert!(
        stamps.contains(&1),
        "first batch stamped at IV 1: {stamps:?}"
    );
    assert!(
        stamps.contains(&2),
        "second batch stamped at IV 2: {stamps:?}"
    );
    assert!(stamps.iter().all(|&s| s == 1 || s == 2));
    store.shutdown();
}

/// Unfilled blocks keep Index Version 0 — the marker recovery uses to scan
/// them unconditionally.
#[test]
fn open_blocks_have_version_zero() {
    let store = store();
    let mut c = store.client().unwrap();
    c.insert(b"open-block-key", &[7u8; 900]).unwrap();
    // Do NOT close: the open block must be unstamped.
    let mut zeros = 0;
    for col in 0..5 {
        for (_, rec) in data_records(&store, col) {
            if rec.index_version == 0 {
                zeros += 1;
            }
        }
    }
    assert!(zeros >= 1, "the client's open block must carry IV 0");
    store.shutdown();
}

/// Checkpoint labels equal the IV *before* the round's bump: round k ships
/// a checkpoint labeled k while the live index moves to k+1 — recovery
/// then skips exactly the blocks stamped `< k`.
#[test]
fn checkpoint_label_lags_live_version_by_one() {
    let store = store();
    for round in 1..=4u64 {
        let reps = store.checkpoint_tick().unwrap();
        for r in &reps {
            assert_eq!(r.index_version, round);
        }
        for col in 0..5 {
            let s = store.server(col);
            assert_eq!(s.index.local_index_version(&s.node.region), round + 1);
        }
    }
    // The neighbour's stored checkpoint carries the last label.
    let dm = store.cluster.background_client();
    let ServerResp::Checkpoint { index_version, .. } = dm
        .rpc(
            store.directory().node_of(1),
            &store.directory().rpc_of(1),
            ServerReq::GetCheckpoint { of_column: 0 },
            16,
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(index_version, 4);
    store.shutdown();
}
