//! Direct tests of the MN server's RPC protocol: allocation, delta
//! registration, offline encoding, bitmap flushes and replication.

use aceso_blockalloc::{BlockRecord, Role};
use aceso_core::config::unpack_col;
use aceso_core::proto::{ServerReq, ServerResp};
use aceso_core::{AcesoConfig, AcesoStore};
use std::sync::Arc;

fn store() -> Arc<AcesoStore> {
    AcesoStore::launch(AcesoConfig::small()).unwrap()
}

fn rpc(store: &Arc<AcesoStore>, col: usize, req: ServerReq) -> ServerResp {
    let dm = store.cluster.background_client();
    dm.rpc(
        store.directory().node_of(col),
        &store.directory().rpc_of(col),
        req,
        64,
    )
    .unwrap()
}

#[test]
fn alloc_data_then_delta_then_encode() {
    let store = store();
    let bs = store.map.blocks.block_size;

    // Allocate a DATA block on column 0.
    let ServerResp::DataAllocated {
        block,
        array,
        row,
        reused,
        old_bitmap,
    } = rpc(
        &store,
        0,
        ServerReq::AllocData {
            cli_id: 9,
            slot_len64: 4,
        },
    )
    else {
        panic!("alloc failed")
    };
    assert!(!reused);
    assert!(old_bitmap.is_none());

    // The record reflects the allocation.
    let ServerResp::Record { bytes } = rpc(&store, 0, ServerReq::GetRecord { block }) else {
        panic!()
    };
    let rec = BlockRecord::decode(&bytes, bs);
    assert_eq!(rec.role, Role::Data);
    assert_eq!(rec.cli_id, 9);
    assert_eq!(rec.slot_len64, 4);
    assert_eq!(rec.index_version, 0);
    assert_eq!(rec.stripe_array, array);
    assert_eq!(rec.xor_id as usize, row);

    // Allocate a DELTA on one of the parity columns and check registration.
    let xcode = aceso_erasure::XCode::new(5).unwrap();
    let ((prow, pcol), _) = xcode.parity_cells_for(row, 0);
    let ServerResp::DeltaAllocated { block: dblock } = rpc(
        &store,
        pcol,
        ServerReq::AllocDelta {
            cli_id: 9,
            slot_len64: 4,
            array,
            row,
            parity_row: prow,
        },
    ) else {
        panic!()
    };
    let pid = store.map.blocks.cell_block_id(array, prow);
    let ServerResp::Record { bytes } = rpc(&store, pcol, ServerReq::GetRecord { block: pid })
    else {
        panic!()
    };
    let prec = BlockRecord::decode(&bytes, bs);
    assert_eq!(prec.role, Role::Parity);
    let (dcol, doff) = unpack_col(prec.delta_addr[row]);
    assert_eq!(dcol, pcol);
    assert_eq!(doff, store.map.blocks.block_offset(dblock));
    assert_eq!(prec.xor_map & (1 << row), 0, "not encoded yet");

    // Write some bytes into the data block and the same bytes into the
    // delta (a fresh block's delta equals its content), then encode.
    let payload = vec![0xABu8; 256];
    let dm = store.cluster.background_client();
    dm.write(
        aceso_rdma::GlobalAddr::new(
            store.directory().node_of(0),
            store.map.blocks.block_offset(block),
        ),
        &payload,
    )
    .unwrap();
    dm.write(
        aceso_rdma::GlobalAddr::new(store.directory().node_of(dcol), doff),
        &payload,
    )
    .unwrap();
    rpc(&store, 0, ServerReq::DataFilled { block });
    rpc(
        &store,
        pcol,
        ServerReq::EncodeDelta {
            array,
            row,
            parity_row: prow,
        },
    );

    // Parity now contains the payload (XOR with zeros), the delta addr is
    // cleared and the xor_map bit set.
    let ServerResp::Record { bytes } = rpc(&store, pcol, ServerReq::GetRecord { block: pid })
    else {
        panic!()
    };
    let prec = BlockRecord::decode(&bytes, bs);
    assert_ne!(prec.xor_map & (1 << row), 0);
    assert_eq!(prec.delta_addr[row], 0);
    let parity = dm
        .read_vec(
            aceso_rdma::GlobalAddr::new(
                store.directory().node_of(pcol),
                store.map.blocks.block_offset(pid),
            ),
            256,
        )
        .unwrap();
    assert_eq!(parity, payload);

    // DataFilled stamped the Index Version.
    let ServerResp::Record { bytes } = rpc(&store, 0, ServerReq::GetRecord { block }) else {
        panic!()
    };
    assert!(BlockRecord::decode(&bytes, bs).index_version > 0);
    store.shutdown();
}

#[test]
fn encode_delta_is_idempotent() {
    let store = store();
    let ServerResp::DataAllocated { array, row, .. } = rpc(
        &store,
        1,
        ServerReq::AllocData {
            cli_id: 1,
            slot_len64: 4,
        },
    ) else {
        panic!()
    };
    let xcode = aceso_erasure::XCode::new(5).unwrap();
    let ((prow, pcol), _) = xcode.parity_cells_for(row, 1);
    rpc(
        &store,
        pcol,
        ServerReq::AllocDelta {
            cli_id: 1,
            slot_len64: 4,
            array,
            row,
            parity_row: prow,
        },
    );
    // Encoding twice must not double-apply the delta.
    rpc(
        &store,
        pcol,
        ServerReq::EncodeDelta {
            array,
            row,
            parity_row: prow,
        },
    );
    let resp = rpc(
        &store,
        pcol,
        ServerReq::EncodeDelta {
            array,
            row,
            parity_row: prow,
        },
    );
    assert!(matches!(resp, ServerResp::Ok));
    store.shutdown();
}

#[test]
fn bitmap_flush_accumulates_and_triggers_reuse() {
    let cfg = AcesoConfig {
        reclaim_free_ratio: 1.1,
        ..AcesoConfig::small()
    };
    let store = AcesoStore::launch(cfg).unwrap();
    let bs = store.map.blocks.block_size;
    let ServerResp::DataAllocated { block, .. } = rpc(
        &store,
        2,
        ServerReq::AllocData {
            cli_id: 5,
            slot_len64: 1,
        },
    ) else {
        panic!()
    };
    rpc(&store, 2, ServerReq::DataFilled { block });
    // Mark >75% of the slots obsolete in two flushes.
    let slots = (bs / 64) as u32;
    let first: Vec<u32> = (0..slots / 2).collect();
    let second: Vec<u32> = (slots / 2..slots * 4 / 5).collect();
    rpc(
        &store,
        2,
        ServerReq::BitmapFlush {
            updates: vec![(block, first)],
        },
    );
    rpc(
        &store,
        2,
        ServerReq::BitmapFlush {
            updates: vec![(block, second)],
        },
    );
    let ServerResp::Record { bytes } = rpc(&store, 2, ServerReq::GetRecord { block }) else {
        panic!()
    };
    let rec = BlockRecord::decode(&bytes, bs);
    assert!(rec.bitmap.count_ones() as u32 >= slots * 3 / 4);
    // The server should now hand this block out again once fresh blocks run
    // out — verified indirectly through the allocator's candidate queue.
    assert!(store.server(2).alloc.lock().reuse_count() >= 1);
    store.shutdown();
}

#[test]
fn meta_replication_lands_on_two_neighbours() {
    let store = store();
    let ServerResp::DataAllocated { block, .. } = rpc(
        &store,
        3,
        ServerReq::AllocData {
            cli_id: 2,
            slot_len64: 2,
        },
    ) else {
        panic!()
    };
    // Replication is asynchronous (fire-and-forget cast): give the server
    // threads a moment to drain.
    std::thread::sleep(std::time::Duration::from_millis(100));
    for neighbour in [4usize, 0] {
        let ServerResp::MetaReplica { records } = rpc(
            &store,
            neighbour,
            ServerReq::GetMetaReplica { of_column: 3 },
        ) else {
            panic!()
        };
        assert!(
            records.iter().any(|(id, _)| *id == block),
            "column {neighbour} should replicate column 3's record for block {block}"
        );
    }
    store.shutdown();
}

#[test]
fn query_client_blocks_filters_by_owner_and_fill() {
    let store = store();
    let ServerResp::DataAllocated { block: b1, .. } = rpc(
        &store,
        0,
        ServerReq::AllocData {
            cli_id: 7,
            slot_len64: 2,
        },
    ) else {
        panic!()
    };
    let ServerResp::DataAllocated { block: b2, .. } = rpc(
        &store,
        0,
        ServerReq::AllocData {
            cli_id: 8,
            slot_len64: 2,
        },
    ) else {
        panic!()
    };
    rpc(&store, 0, ServerReq::DataFilled { block: b2 });

    let ServerResp::Records { list } = rpc(&store, 0, ServerReq::QueryClientBlocks { cli_id: 7 })
    else {
        panic!()
    };
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].0, b1);
    // Client 8's block is filled, so it no longer appears.
    let ServerResp::Records { list } = rpc(&store, 0, ServerReq::QueryClientBlocks { cli_id: 8 })
    else {
        panic!()
    };
    assert!(list.is_empty());
    store.shutdown();
}
