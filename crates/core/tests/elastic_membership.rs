//! Elastic membership integration tests: online MN join/drain with live
//! re-encoding, stale-placement clients, aborts, and the per-column
//! degraded-window bookkeeping shared with recovery.

use aceso_core::{
    recover_mn, recover_mn_with, AcesoConfig, AcesoStore, ElasticKind, ElasticStep,
};
use std::sync::Arc;

fn launch() -> Arc<AcesoStore> {
    AcesoStore::launch(AcesoConfig::small()).unwrap()
}

fn preload(store: &Arc<AcesoStore>, n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut cli = store.client().unwrap();
    let kvs: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
        .map(|i| {
            (
                format!("elastic-key-{i}").into_bytes(),
                format!("value-{i}-{}", "x".repeat(i % 80)).into_bytes(),
            )
        })
        .collect();
    for (k, v) in &kvs {
        cli.insert(k, v).unwrap();
    }
    cli.flush_bitmaps().unwrap();
    kvs
}

fn assert_all(store: &Arc<AcesoStore>, kvs: &[(Vec<u8>, Vec<u8>)]) {
    let mut cli = store.client().unwrap();
    for (k, v) in kvs {
        assert_eq!(
            cli.search(k).unwrap().as_deref(),
            Some(v.as_slice()),
            "key {:?} lost",
            String::from_utf8_lossy(k)
        );
    }
}

/// A full join migration, stepped one boundary at a time with live client
/// traffic between the steps: every KV stays readable, the placement epoch
/// is strictly monotone, and the column ends up served by the new node.
#[test]
fn join_migration_preserves_data_under_live_traffic() {
    let store = launch();
    let kvs = preload(&store, 120);
    let col = 1;
    let old_node = store.directory().node_of(col);

    let mut mig = store.begin_join(col).unwrap();
    assert_eq!(mig.kind(), ElasticKind::Join);
    let mut cli = store.client().unwrap();
    let mut epoch = store.placement().epoch();
    let mut steps = Vec::new();
    let mut i = 0usize;
    loop {
        let step = mig.step().unwrap();
        if step == ElasticStep::Done {
            break;
        }
        steps.push(step);
        let e = store.placement().epoch();
        assert!(e > epoch, "placement epoch must advance at {step}: {e}");
        epoch = e;
        // Interleave live traffic at every boundary: updates (stale
        // placement must bounce off the fences and refresh, never write
        // through) and reads (mid-migration blocks stay readable).
        for _ in 0..4 {
            let (k, _) = &kvs[i % kvs.len()];
            let v2 = format!("rewritten-{i}").into_bytes();
            cli.update(k, &v2).unwrap();
            assert_eq!(cli.search(k).unwrap(), Some(v2));
            cli.insert(format!("mid-mig-{i}").as_bytes(), b"fresh").unwrap();
            i += 1;
        }
    }
    assert!(steps.contains(&ElasticStep::Announce));
    assert!(steps.contains(&ElasticStep::Reencode));
    assert!(steps.contains(&ElasticStep::Publish));
    assert!(steps.contains(&ElasticStep::Free));
    assert!(
        steps.iter().filter(|s| matches!(s, ElasticStep::CopyBatch(_))).count()
            == store.cfg.elastic_groups,
        "one copy batch per placement group: {steps:?}"
    );

    // The column moved: new node serves it, the old one is drained.
    let new_node = store.directory().node_of(col);
    assert_ne!(new_node, old_node);
    assert_eq!(mig.to_node(), Some(new_node));
    assert!(store.cluster.node(old_node).is_err(), "old node still up");
    assert!(store.placement().snapshot().migration.is_none());
    assert!(store.placement().snapshot().retired.contains(&old_node));
    assert!(
        !store.degraded_columns().contains(&col),
        "degraded window must close at publish"
    );

    // Every KV — preloaded, rewritten, and inserted mid-migration — is
    // readable through fresh clients (nothing depends on the retired node).
    let mut check = store.client().unwrap();
    for n in 0..i {
        assert_eq!(
            check.search(format!("mid-mig-{n}").as_bytes()).unwrap().as_deref(),
            Some(&b"fresh"[..])
        );
    }
    for (idx, (k, _)) in kvs.iter().enumerate() {
        let got = check.search(k).unwrap();
        assert!(got.is_some(), "key {idx} unreadable after join");
    }
    store.shutdown();
}

/// A drain is the same machine with the other label; run it end to end and
/// then recover an *unrelated* column to prove normal failure handling
/// still works after the membership changed.
#[test]
fn drain_then_unrelated_recovery() {
    let store = launch();
    let kvs = preload(&store, 60);
    let col = 3;
    let mut mig = store.begin_drain(col).unwrap();
    assert_eq!(mig.kind(), ElasticKind::Drain);
    let report = mig.run().unwrap();
    assert_eq!(report.batches as usize, store.cfg.elastic_groups);
    assert!(report.blocks_moved > 0);
    assert_eq!(report.aborts, 0);
    assert_all(&store, &kvs);

    // An ordinary MN failure after the drain: kill and recover column 0.
    store.kill_mn(0);
    recover_mn(&store, 0).unwrap();
    assert_all(&store, &kvs);
    store.shutdown();
}

/// Satellite: a client holding a pre-migration placement snapshot must
/// fail its access on the epoch fence and re-resolve — never read or
/// write through the stale placement.
#[test]
fn stale_placement_client_refreshes_and_commits() {
    let store = launch();
    let reg = Arc::new(aceso_obs::Registry::new());
    store.install_recorder(Arc::clone(&reg));
    let kvs = preload(&store, 80);

    // The stale client: created (and epoch-stamped) before any migration.
    let mut stale = store.client().unwrap();
    for (k, v) in kvs.iter().take(10) {
        assert_eq!(stale.search(k).unwrap().as_deref(), Some(v.as_slice()));
    }

    // Move every placement group of column 2 (fences installed on the old
    // node), but stop before the publish.
    let col = 2;
    let mut mig = store.begin_join(col).unwrap();
    mig.step().unwrap(); // announce
    for _ in 0..store.cfg.elastic_groups {
        assert!(matches!(mig.step().unwrap(), ElasticStep::CopyBatch(_)));
    }

    // The stale client still holds the pre-migration snapshot. Updating
    // every key forces it through the moved column: the fence rejects the
    // stale write, the client refreshes, and the commit lands on the new
    // placement.
    for (n, (k, _)) in kvs.iter().enumerate() {
        stale.update(k, format!("stale-redo-{n}").as_bytes()).unwrap();
    }
    assert_eq!(
        stale.dm.placement_epoch(),
        store.placement().epoch(),
        "client must have adopted the current placement epoch"
    );
    assert!(
        reg.counter("client.retry.attempts").get() > 0,
        "the unified retry policy must have fielded the fence bounces"
    );

    // Finish the migration; everything the stale client wrote survives the
    // publish (the writes really went to the target, not the stale side).
    mig.run().unwrap();
    let mut check = store.client().unwrap();
    for (n, (k, _)) in kvs.iter().enumerate() {
        assert_eq!(
            check.search(k).unwrap(),
            Some(format!("stale-redo-{n}").into_bytes()),
            "key {n} lost its post-fence update"
        );
    }
    store.shutdown();
}

/// Aborting an unpublished migration reverts cleanly: the directory stays
/// authoritative (the dual-write mirror kept the source fresh), the fences
/// drop, and the half-filled target is retired unused.
#[test]
fn abort_mid_copy_is_clean() {
    let store = launch();
    let kvs = preload(&store, 40);
    let col = 4;
    let node_before = store.directory().node_of(col);

    let mut mig = store.begin_join(col).unwrap();
    mig.step().unwrap(); // announce
    mig.step().unwrap(); // first copy batch
    let mut cli = store.client().unwrap();
    cli.update(&kvs[0].0, b"written-during-migration").unwrap();
    mig.abort();
    assert_eq!(mig.report().aborts, 1);
    assert_eq!(mig.step().unwrap(), ElasticStep::Done);

    assert_eq!(store.directory().node_of(col), node_before);
    assert!(store.placement().snapshot().migration.is_none());
    assert!(!store.degraded_columns().contains(&col));
    let mut check = store.client().unwrap();
    assert_eq!(
        check.search(&kvs[0].0).unwrap().as_deref(),
        Some(&b"written-during-migration"[..])
    );
    assert_all(&store, &kvs[1..]);
    store.shutdown();
}

/// Satellite regression: finishing one recovery must not clear *other*
/// columns' degraded windows. An index-tier-only recovery of column 1 is
/// still degraded while a full recovery of column 2 completes.
#[test]
fn overlapping_recoveries_keep_foreign_degraded_windows() {
    let store = launch();
    let _kvs = preload(&store, 30);

    // Column 1: index tier only — its old blocks stay lost, the column
    // must remain flagged degraded.
    store.kill_mn(1);
    recover_mn_with(&store, 1, false).unwrap();
    assert!(store.degraded_columns().contains(&1));

    // Column 2: full recovery. With every column alive again it rebuilds
    // parity and closes *its own* window.
    store.kill_mn(2);
    recover_mn(&store, 2).unwrap();

    let degraded = store.degraded_columns();
    assert!(
        degraded.contains(&1),
        "column 2's recovery must not clear column 1's degraded window: {degraded:?}"
    );
    assert!(!degraded.contains(&2), "column 2 finished: {degraded:?}");

    // Completing column 1's block tier closes the remaining window.
    recover_mn_with(&store, 1, true).unwrap();
    assert!(!store.degraded_columns().contains(&1));
    store.shutdown();
}

/// Regression: a client that refreshed *mid-copy* holds a snapshot in
/// which moved groups resolve to the target as primary and the source as
/// dual-write mirror. After the publish such a client must bounce off the
/// target's publish fence before any byte lands — without that fence its
/// primary write landed, the mirror leg aborted the batch on the source
/// fence, and the retry re-placed the KV into a fresh slot, orphaning a
/// half-written delta pair (one copy with data, the other still zero).
#[test]
fn publish_fences_stale_mid_migration_snapshots() {
    let store = launch();
    let kvs = preload(&store, 80);
    let col = 2;

    let mut mig = store.begin_join(col).unwrap();
    mig.step().unwrap(); // announce
    for _ in 0..store.cfg.elastic_groups {
        mig.step().unwrap(); // copy batches
    }
    mig.step().unwrap(); // reencode
    // This client's snapshot shows the whole column moved with the
    // migration still open: primaries resolve to the target, the
    // dual-write mirror points at the source.
    let mut stale = store.client().unwrap();
    for (k, v) in kvs.iter().take(20) {
        stale.update(k, v).unwrap();
    }
    // Publish and free behind the client's back.
    while mig.step().unwrap() != ElasticStep::Done {}

    // Every post-publish write through the stale view must re-resolve and
    // land on both delta copies, never half-commit.
    for (n, (k, _)) in kvs.iter().enumerate() {
        stale.update(k, format!("post-publish-{n}").as_bytes()).unwrap();
    }
    stale.flush_bitmaps().unwrap();
    let report = aceso_core::scrub(&store).unwrap();
    assert!(
        report.is_clean(),
        "stale-snapshot writes diverged the delta copies: {report:?}"
    );
    let mut check = store.client().unwrap();
    for (n, (k, _)) in kvs.iter().enumerate() {
        assert_eq!(
            check.search(k).unwrap(),
            Some(format!("post-publish-{n}").into_bytes())
        );
    }
    store.shutdown();
}

/// The placement map rejects concurrent migrations and the epoch sequence
/// spans membership *and* placement events.
#[test]
fn single_migration_at_a_time() {
    let store = launch();
    let mut a = store.begin_join(0).unwrap();
    a.step().unwrap(); // announce: migration now open
    assert!(store.begin_drain(1).is_err());
    a.abort();
    // After the abort a new migration may start.
    let mut b = store.begin_drain(1).unwrap();
    b.step().unwrap();
    b.abort();
    store.shutdown();
}

/// `NodeId` sanity for the retired list: completing a join retires exactly
/// the source node, once.
#[test]
fn retired_list_tracks_sources() {
    let store = launch();
    preload(&store, 10);
    let src0 = store.directory().node_of(0);
    store.begin_join(0).unwrap().run().unwrap();
    assert_eq!(store.placement().snapshot().retired, vec![src0]);
    let src3 = store.directory().node_of(3);
    store.begin_drain(3).unwrap().run().unwrap();
    assert_eq!(
        store.placement().snapshot().retired,
        vec![src0, src3],
        "retired accumulates across migrations"
    );
    store.shutdown();
}

/// Regression: the KV slot and its two delta copies live on three
/// different columns, so a migration fence can reject a later verb of the
/// op's doorbell batch after an earlier one already landed (first delta
/// copy in a group that has not moved, second in the group that just
/// did). The op retries into a fresh slot; the abandoned one must be
/// rolled back, or it keeps one delta copy with data and the other zero —
/// a divergence no recovery ever repairs, because nothing crashed. Heavy
/// mixed traffic from several clients between every migrator step makes
/// at least one op straddle a fence this way.
#[test]
fn fence_abort_mid_batch_rolls_back_the_abandoned_slot() {
    let store = launch();
    let kvs = preload(&store, 160);
    let mut clients: Vec<_> = (0..4).map(|_| store.client().unwrap()).collect();
    for kind in [ElasticKind::Join, ElasticKind::Drain] {
        let col = if kind == ElasticKind::Join { 1 } else { 3 };
        let mut mig = match kind {
            ElasticKind::Join => store.begin_join(col).unwrap(),
            ElasticKind::Drain => store.begin_drain(col).unwrap(),
        };
        let mut i = 0usize;
        loop {
            let step = mig.step().unwrap();
            if step == ElasticStep::Done {
                break;
            }
            for _ in 0..120 {
                let c = i % clients.len();
                let (k, _) = &kvs[i % kvs.len()];
                match i % 3 {
                    0 => clients[c]
                        .update(k, format!("{kind}-{i}").as_bytes())
                        .unwrap(),
                    1 => clients[c]
                        .insert(format!("{kind}-fresh-{i}").as_bytes(), b"mid-mig")
                        .unwrap(),
                    _ => {
                        clients[c].search(k).unwrap();
                    }
                }
                i += 1;
            }
        }
    }
    for c in &mut clients {
        c.flush_bitmaps().unwrap();
    }
    let report = aceso_core::scrub(&store).unwrap();
    assert!(
        report.is_clean(),
        "a fence-aborted batch left a half-written slot behind: {report:?}"
    );
    store.shutdown();
}

/// Regression test (PR 10): `refresh_placement` must purge cached index
/// entries by *placement epoch*, not just by retired node. A client that
/// refreshes mid-migration sees an empty `retired` list — the source node
/// is only retired at `Free` — yet its cached entries for the migrating
/// column already name physical locations that may move under it. Once
/// the client's session epoch catches up to the published epoch, the
/// fences (which reject only *older* epochs) no longer protect those
/// entries; the old retired-only purge would have kept every one of them.
#[test]
fn mid_migration_refresh_purges_migrating_column_entries() {
    let store = launch();
    let kvs = preload(&store, 40);

    // Warm a dedicated client's cache over every key.
    let mut warm = store.client().unwrap();
    for (k, v) in &kvs {
        assert_eq!(warm.search(k).unwrap().as_deref(), Some(v.as_slice()));
        assert!(warm.cache_contains(k), "search must fill the cache");
    }

    let col = 2;
    let n = store.cfg.num_mns as u64;
    let routed: Vec<&Vec<u8>> = kvs
        .iter()
        .map(|(k, _)| k)
        .filter(|k| (aceso_index::route_hash(k) % n) as usize == col)
        .collect();
    assert!(
        !routed.is_empty(),
        "test needs at least one key indexed on the migrating column"
    );

    // Advance the placement mid-migration: announce + all copy batches.
    // Nothing is retired yet — that is the whole point of the regression.
    let mut mig = store.begin_join(col).unwrap();
    assert_eq!(mig.step().unwrap(), ElasticStep::Announce);
    for _ in 0..store.cfg.elastic_groups {
        assert!(matches!(mig.step().unwrap(), ElasticStep::CopyBatch(_)));
    }
    assert!(
        store.placement().snapshot().retired.is_empty(),
        "mid-migration there must be no retired node — the old \
         purge-by-retirement would have kept every stale entry"
    );

    let before = warm.cache_len();
    warm.force_refresh_placement();
    let after = warm.cache_len();
    assert!(
        after < before,
        "epoch purge dropped nothing ({before} -> {after})"
    );
    for k in &routed {
        assert!(
            !warm.cache_contains(k),
            "entry indexed on migrating column {col} survived the refresh: {:?}",
            String::from_utf8_lossy(k)
        );
    }
    assert!(
        warm.cache_len() > 0,
        "entries untouched by the migration must survive the purge"
    );

    // Finish the migration; the purged client re-resolves on the slow
    // path and every key stays readable through it.
    while mig.step().unwrap() != ElasticStep::Done {}
    for (k, v) in &kvs {
        assert_eq!(warm.search(k).unwrap().as_deref(), Some(v.as_slice()));
    }
    store.shutdown();
}
