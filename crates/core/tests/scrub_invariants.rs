//! Scrub-based invariant tests: after any workload or recovery, every
//! parity equation must hold and every delta pair must agree — i.e. the
//! store is always decodable without actually failing a node.

use aceso_core::{recover_mn, scrub, AcesoConfig, AcesoStore};
use std::sync::Arc;

fn small() -> Arc<AcesoStore> {
    AcesoStore::launch(AcesoConfig::small()).unwrap()
}

#[test]
fn scrub_clean_after_bulk_insert() {
    let store = small();
    let mut c = store.client().unwrap();
    let val = vec![3u8; 700];
    for i in 0..500u32 {
        c.insert(format!("sc-{i}").as_bytes(), &val).unwrap();
    }
    // Mixed state: some blocks closed (encoded), some still open (deltas).
    let r = scrub(&store).unwrap();
    assert!(r.is_clean(), "{r:?}");
    assert!(r.arrays_checked > 0);

    c.close_open_blocks().unwrap();
    let r = scrub(&store).unwrap();
    assert!(r.is_clean(), "{r:?}");
    assert!(
        r.parity_ok > 0,
        "closed blocks must have live parity: {r:?}"
    );
    store.shutdown();
}

#[test]
fn scrub_clean_after_updates_and_deletes() {
    let store = small();
    let mut c = store.client().unwrap();
    let val = vec![9u8; 700];
    for i in 0..300u32 {
        c.insert(format!("sd-{i}").as_bytes(), &val).unwrap();
    }
    for i in 0..300u32 {
        c.update(format!("sd-{i}").as_bytes(), &vec![1u8; 700])
            .unwrap();
    }
    for i in (0..300u32).step_by(3) {
        c.delete(format!("sd-{i}").as_bytes()).unwrap();
    }
    c.flush_bitmaps().unwrap();
    let r = scrub(&store).unwrap();
    assert!(r.is_clean(), "{r:?}");
    store.shutdown();
}

#[test]
fn scrub_clean_after_reclamation() {
    let mut cfg = AcesoConfig::small();
    cfg.num_arrays = 2;
    cfg.reclaim_free_ratio = 1.1;
    let store = AcesoStore::launch(cfg).unwrap();
    let mut c = store.client().unwrap();
    let val = vec![7u8; 180];
    for i in 0..500u32 {
        c.insert(format!("sr-{i}").as_bytes(), &val).unwrap();
    }
    for round in 0..8u32 {
        for i in 0..500u32 {
            c.update(format!("sr-{i}").as_bytes(), &[round as u8; 180])
                .unwrap();
        }
        c.flush_bitmaps().unwrap();
    }
    // Reclamation has rewritten obsolete slots and patched parity via
    // deltas: every equation must still hold.
    let r = scrub(&store).unwrap();
    assert!(r.is_clean(), "{r:?}");
    store.shutdown();
}

#[test]
fn scrub_clean_after_mn_recovery() {
    let store = small();
    let mut c = store.client().unwrap();
    let val = vec![5u8; 700];
    for i in 0..400u32 {
        c.insert(format!("sm-{i}").as_bytes(), &val).unwrap();
    }
    c.close_open_blocks().unwrap();
    store.checkpoint_tick().unwrap();
    store.checkpoint_tick().unwrap();
    store.kill_mn(1);
    recover_mn(&store, 1).unwrap();
    // Full recovery (incl. parity + delta rebuild): all equations hold on
    // the replacement node too.
    let r = scrub(&store).unwrap();
    assert!(r.is_clean(), "{r:?}");
    assert!(r.parity_ok > 0);
    store.shutdown();
}
