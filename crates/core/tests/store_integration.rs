//! End-to-end tests of the Aceso store: API semantics, concurrency,
//! checkpointing, erasure coding, reclamation, and every recovery path.

use aceso_core::{recover_cn, recover_mn, AcesoConfig, AcesoStore, StoreError};
use std::sync::Arc;

fn small_store() -> Arc<AcesoStore> {
    AcesoStore::launch(AcesoConfig::small()).unwrap()
}

#[test]
fn basic_crud() {
    let store = small_store();
    let mut c = store.client().unwrap();

    assert_eq!(c.search(b"nothing").unwrap(), None);
    c.insert(b"alpha", b"one").unwrap();
    c.insert(b"beta", b"two").unwrap();
    assert_eq!(c.search(b"alpha").unwrap().as_deref(), Some(&b"one"[..]));
    assert_eq!(c.search(b"beta").unwrap().as_deref(), Some(&b"two"[..]));

    c.update(b"alpha", b"uno").unwrap();
    assert_eq!(c.search(b"alpha").unwrap().as_deref(), Some(&b"uno"[..]));

    assert!(c.delete(b"alpha").unwrap());
    assert_eq!(c.search(b"alpha").unwrap(), None);
    assert!(!c.delete(b"alpha").unwrap()); // Tombstoned: gone.
    assert_eq!(c.search(b"beta").unwrap().as_deref(), Some(&b"two"[..]));

    // Re-insert after delete reuses the tombstoned slot.
    c.insert(b"alpha", b"again").unwrap();
    assert_eq!(c.search(b"alpha").unwrap().as_deref(), Some(&b"again"[..]));
    store.shutdown();
}

#[test]
fn update_of_missing_key_is_not_found() {
    let store = small_store();
    let mut c = store.client().unwrap();
    assert_eq!(c.update(b"ghost", b"x"), Err(StoreError::NotFound));
    store.shutdown();
}

#[test]
fn values_of_many_sizes_roundtrip() {
    let store = small_store();
    let mut c = store.client().unwrap();
    for len in [0usize, 1, 31, 47, 64, 100, 255, 500, 1000, 2000] {
        let key = format!("size-{len}");
        let val: Vec<u8> = (0..len).map(|i| (i * 7 + len) as u8).collect();
        c.insert(key.as_bytes(), &val).unwrap();
        assert_eq!(c.search(key.as_bytes()).unwrap().as_deref(), Some(&val[..]));
    }
    store.shutdown();
}

#[test]
fn value_size_class_can_change_across_updates() {
    let store = small_store();
    let mut c = store.client().unwrap();
    c.insert(b"grow", b"small").unwrap();
    let big = vec![0xABu8; 1500];
    c.update(b"grow", &big).unwrap();
    assert_eq!(c.search(b"grow").unwrap().as_deref(), Some(&big[..]));
    let tiny = b"t".to_vec();
    c.update(b"grow", &tiny).unwrap();
    assert_eq!(c.search(b"grow").unwrap().as_deref(), Some(&tiny[..]));
    store.shutdown();
}

#[test]
fn many_keys_fill_multiple_blocks() {
    let store = small_store();
    let mut c = store.client().unwrap();
    let val = vec![7u8; 200];
    for i in 0..2000u32 {
        c.insert(format!("bulk-{i}").as_bytes(), &val).unwrap();
    }
    for i in (0..2000u32).step_by(97) {
        assert_eq!(
            c.search(format!("bulk-{i}").as_bytes()).unwrap().as_deref(),
            Some(&val[..]),
            "key bulk-{i}"
        );
    }
    store.shutdown();
}

#[test]
fn cache_serves_repeated_reads_and_sees_foreign_updates() {
    let store = small_store();
    let mut a = store.client().unwrap();
    let mut b = store.client().unwrap();
    a.insert(b"shared", b"v1").unwrap();
    assert_eq!(b.search(b"shared").unwrap().as_deref(), Some(&b"v1"[..]));
    // b now has it cached. a updates behind b's back.
    a.update(b"shared", b"v2").unwrap();
    assert_eq!(
        b.search(b"shared").unwrap().as_deref(),
        Some(&b"v2"[..]),
        "cached read must validate the slot and chase the new pointer"
    );
    store.shutdown();
}

#[test]
fn concurrent_updates_to_one_key_are_linearizable() {
    let store = small_store();
    let mut c0 = store.client().unwrap();
    c0.insert(b"contended", &0u64.to_le_bytes()).unwrap();

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut c = store.client().unwrap();
                for i in 0..200u64 {
                    let v = (t * 1000 + i).to_le_bytes();
                    c.update(b"contended", &v).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // The final value must be one of the written values (not torn).
    let v = c0.search(b"contended").unwrap().unwrap();
    let x = u64::from_le_bytes(v.try_into().unwrap());
    let t = x / 1000;
    let i = x % 1000;
    assert!(t < 4 && i < 200, "final value {x} was never written");
    store.shutdown();
}

#[test]
fn concurrent_inserts_of_distinct_keys_all_land() {
    let store = small_store();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut c = store.client().unwrap();
                for i in 0..150u32 {
                    let key = format!("t{t}-k{i}");
                    c.insert(key.as_bytes(), key.as_bytes()).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut c = store.client().unwrap();
    for t in 0..4 {
        for i in 0..150u32 {
            let key = format!("t{t}-k{i}");
            assert_eq!(
                c.search(key.as_bytes()).unwrap().as_deref(),
                Some(key.as_bytes()),
                "{key}"
            );
        }
    }
    store.shutdown();
}

#[test]
fn slot_version_rollover_survives_300_updates() {
    // 300 updates to one key crosses the 8-bit version rollover (§3.2.2).
    let store = small_store();
    let mut c = store.client().unwrap();
    c.insert(b"roll", &0u32.to_le_bytes()).unwrap();
    for i in 1..=300u32 {
        c.update(b"roll", &i.to_le_bytes()).unwrap();
    }
    assert_eq!(
        c.search(b"roll").unwrap().as_deref(),
        Some(&300u32.to_le_bytes()[..])
    );
    store.shutdown();
}

#[test]
fn checkpoint_rounds_advance_index_versions() {
    let store = small_store();
    let mut c = store.client().unwrap();
    c.insert(b"k", b"v").unwrap();
    let r1 = store.checkpoint_tick().unwrap();
    assert_eq!(r1.len(), 5);
    for rep in &r1 {
        assert_eq!(rep.index_version, 1);
        assert!(rep.raw_len > 0);
    }
    let r2 = store.checkpoint_tick().unwrap();
    for rep in &r2 {
        assert_eq!(rep.index_version, 2);
        // Nothing changed since round 1: the delta is a single long zero
        // match (length extensions cost ~raw/255 bytes).
        assert!(
            rep.compressed_len < rep.raw_len / 100,
            "delta {} of raw {}",
            rep.compressed_len,
            rep.raw_len
        );
    }
    store.shutdown();
}

#[test]
fn mn_crash_recovery_preserves_all_data() {
    let store = small_store();
    let mut c = store.client().unwrap();
    let keys: Vec<String> = (0..600).map(|i| format!("pre-{i}")).collect();
    for k in &keys {
        c.insert(k.as_bytes(), k.as_bytes()).unwrap();
    }
    store.checkpoint_tick().unwrap();
    // Writes after the checkpoint must be recovered via versioning.
    let late: Vec<String> = (0..150).map(|i| format!("post-{i}")).collect();
    for k in &late {
        c.insert(k.as_bytes(), k.as_bytes()).unwrap();
    }
    for k in keys.iter().take(100) {
        c.update(k.as_bytes(), b"updated").unwrap();
    }
    c.close_open_blocks().unwrap();

    store.kill_mn(2);
    let report = recover_mn(&store, 2).unwrap();
    assert!(report.kv_count > 0);

    let mut fresh = store.client().unwrap();
    for k in keys.iter().take(100) {
        assert_eq!(
            fresh.search(k.as_bytes()).unwrap().as_deref(),
            Some(&b"updated"[..]),
            "{k}"
        );
    }
    for k in keys.iter().skip(100) {
        assert_eq!(
            fresh.search(k.as_bytes()).unwrap().as_deref(),
            Some(k.as_bytes()),
            "{k}"
        );
    }
    for k in &late {
        assert_eq!(
            fresh.search(k.as_bytes()).unwrap().as_deref(),
            Some(k.as_bytes()),
            "{k}"
        );
    }
    store.shutdown();
}

#[test]
fn degraded_search_works_before_block_tier() {
    // Like above, but the stale client keeps reading while blocks on the
    // dead MN are still unrecovered — exercising degraded SEARCH paths —
    // by killing the node and recovering only meta+index by hand is
    // internal; instead we verify post-recovery reads from the *old*
    // client whose cache still points at the dead node.
    let store = small_store();
    let mut c = store.client().unwrap();
    let keys: Vec<String> = (0..400).map(|i| format!("dg-{i}")).collect();
    for k in &keys {
        c.insert(k.as_bytes(), k.as_bytes()).unwrap();
    }
    c.close_open_blocks().unwrap();
    store.checkpoint_tick().unwrap();
    store.kill_mn(1);
    recover_mn(&store, 1).unwrap();
    // The old client's cache still holds pre-crash slot addresses.
    for k in &keys {
        assert_eq!(
            c.search(k.as_bytes()).unwrap().as_deref(),
            Some(k.as_bytes()),
            "{k}"
        );
    }
    store.shutdown();
}

#[test]
fn two_mn_crashes_recover() {
    let store = small_store();
    let mut c = store.client().unwrap();
    let keys: Vec<String> = (0..400).map(|i| format!("two-{i}")).collect();
    for k in &keys {
        c.insert(k.as_bytes(), k.as_bytes()).unwrap();
    }
    c.close_open_blocks().unwrap();
    store.checkpoint_tick().unwrap();

    store.kill_mn(0);
    store.kill_mn(3);
    recover_mn(&store, 0).unwrap();
    recover_mn(&store, 3).unwrap();

    let mut fresh = store.client().unwrap();
    for k in &keys {
        assert_eq!(
            fresh.search(k.as_bytes()).unwrap().as_deref(),
            Some(k.as_bytes()),
            "{k}"
        );
    }
    store.shutdown();
}

#[test]
fn cn_crash_before_commit_rolls_back() {
    let store = small_store();
    let mut c = store.client().unwrap();
    c.insert(b"victim", b"committed").unwrap();
    let cli_id = c.id();

    // Crash mid-write: KV written, deltas written, CAS never issued.
    c.crash_point = Some(aceso_core::client::CrashPoint::BeforeCommit);
    assert!(matches!(
        c.update(b"victim", b"torn"),
        Err(StoreError::Shutdown)
    ));
    drop(c);

    let mut revived = store.client_with_id(cli_id);
    let report = recover_cn(&store, &mut revived).unwrap();
    assert!(report.blocks_checked > 0);
    // The committed value survives; the torn write never surfaces.
    assert_eq!(
        revived.search(b"victim").unwrap().as_deref(),
        Some(&b"committed"[..])
    );
    store.shutdown();
}

#[test]
fn cn_crash_after_kv_only_write_rolls_back() {
    let store = small_store();
    let mut c = store.client().unwrap();
    c.insert(b"victim2", b"committed").unwrap();
    let cli_id = c.id();

    c.crash_point = Some(aceso_core::client::CrashPoint::AfterKvWrite);
    assert!(matches!(
        c.update(b"victim2", b"half-written"),
        Err(StoreError::Shutdown)
    ));
    drop(c);

    let mut revived = store.client_with_id(cli_id);
    let report = recover_cn(&store, &mut revived).unwrap();
    assert!(
        report.slots_repaired > 0,
        "the torn slot must be rolled back"
    );
    assert_eq!(
        revived.search(b"victim2").unwrap().as_deref(),
        Some(&b"committed"[..])
    );
    store.shutdown();
}

#[test]
fn memory_usage_accounts_parity_fraction() {
    let store = small_store();
    let mut c = store.client().unwrap();
    let val = vec![1u8; 200];
    for i in 0..1500u32 {
        c.insert(format!("mem-{i}").as_bytes(), &val).unwrap();
    }
    c.close_open_blocks().unwrap();
    let usage = store.memory_usage();
    assert!(usage.valid > 0);
    assert!(usage.redundancy > 0);
    // X-Code at n=5: parity : data-cells = 2 : 3 per array.
    let ratio = usage.redundancy as f64 / usage.data_allocated.max(1) as f64;
    assert!(ratio > 0.1, "parity should be material: {ratio}");
    store.shutdown();
}

#[test]
fn space_reclamation_reuses_blocks() {
    // Overwrite heavily with a small pool so reclamation must trigger.
    let mut cfg = AcesoConfig::small();
    cfg.num_arrays = 2; // 6 data blocks per MN → 30 total of 64 KB.
    cfg.reclaim_free_ratio = 1.1; // Always allowed to reclaim.
    let store = AcesoStore::launch(cfg).unwrap();
    let mut c = store.client().unwrap();
    let val = vec![3u8; 180]; // 256 B class → 256 slots per 64 KB block.
                              // 600 keys, then update each several times: obsolete slots accumulate
                              // and blocks must be reused rather than running out.
    for i in 0..600u32 {
        c.insert(format!("rc-{i}").as_bytes(), &val).unwrap();
    }
    for round in 0..20u32 {
        for i in 0..600u32 {
            let v = vec![(round + 1) as u8; 180];
            c.update(format!("rc-{i}").as_bytes(), &v).unwrap();
        }
        c.flush_bitmaps().unwrap();
    }
    for i in (0..600u32).step_by(53) {
        let got = c.search(format!("rc-{i}").as_bytes()).unwrap().unwrap();
        assert_eq!(got, vec![20u8; 180], "rc-{i}");
    }
    store.shutdown();
}

#[test]
fn mn_recovery_after_reclamation_still_correct() {
    let mut cfg = AcesoConfig::small();
    cfg.num_arrays = 2;
    cfg.reclaim_free_ratio = 1.1;
    let store = AcesoStore::launch(cfg).unwrap();
    let mut c = store.client().unwrap();
    let val = vec![9u8; 180];
    for i in 0..500u32 {
        c.insert(format!("rr-{i}").as_bytes(), &val).unwrap();
    }
    for round in 0..10u32 {
        for i in 0..500u32 {
            c.update(format!("rr-{i}").as_bytes(), &[round as u8 + 1; 180])
                .unwrap();
        }
        c.flush_bitmaps().unwrap();
    }
    c.close_open_blocks().unwrap();
    store.checkpoint_tick().unwrap();
    store.kill_mn(4);
    recover_mn(&store, 4).unwrap();
    let mut fresh = store.client().unwrap();
    for i in (0..500u32).step_by(41) {
        assert_eq!(
            fresh.search(format!("rr-{i}").as_bytes()).unwrap().unwrap(),
            vec![10u8; 180],
            "rr-{i}"
        );
    }
    store.shutdown();
}
