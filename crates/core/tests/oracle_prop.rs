//! Property-based oracle test: arbitrary operation sequences against a
//! `HashMap` model, including mid-sequence checkpoints and an optional MN
//! crash + recovery, must always agree.

use aceso_core::{recover_mn, AcesoConfig, AcesoStore, StoreError};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum OpSpec {
    Insert(u8, u8),
    Update(u8, u8),
    Delete(u8),
    Search(u8),
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| OpSpec::Insert(k, v)),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| OpSpec::Update(k, v)),
        1 => any::<u8>().prop_map(OpSpec::Delete),
        3 => any::<u8>().prop_map(OpSpec::Search),
        1 => Just(OpSpec::Checkpoint),
    ]
}

fn key_of(k: u8) -> Vec<u8> {
    format!("oracle-key-{k:03}").into_bytes()
}

fn value_of(k: u8, v: u8) -> Vec<u8> {
    // Variable lengths cross size-class boundaries.
    let len = 1 + (k as usize * 7 + v as usize * 13) % 300;
    (0..len).map(|i| (i as u8) ^ v).collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_ops_match_hashmap_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        crash_col in 0usize..5,
        do_crash: bool,
    ) {
        let store = AcesoStore::launch(AcesoConfig::small()).unwrap();
        let mut client = store.client().unwrap();
        let mut oracle: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

        let split = ops.len() / 2;
        for (i, op) in ops.iter().enumerate() {
            match op {
                OpSpec::Insert(k, v) => {
                    client.insert(&key_of(*k), &value_of(*k, *v)).unwrap();
                    oracle.insert(key_of(*k), value_of(*k, *v));
                }
                OpSpec::Update(k, v) => {
                    match client.update(&key_of(*k), &value_of(*k, *v)) {
                        Ok(()) => {
                            prop_assert!(oracle.contains_key(&key_of(*k)));
                            oracle.insert(key_of(*k), value_of(*k, *v));
                        }
                        Err(StoreError::NotFound) => {
                            prop_assert!(!oracle.contains_key(&key_of(*k)));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                OpSpec::Delete(k) => {
                    let existed = client.delete(&key_of(*k)).unwrap();
                    prop_assert_eq!(existed, oracle.remove(&key_of(*k)).is_some());
                }
                OpSpec::Search(k) => {
                    let got = client.search(&key_of(*k)).unwrap();
                    prop_assert_eq!(&got, &oracle.get(&key_of(*k)).cloned());
                }
                OpSpec::Checkpoint => {
                    store.checkpoint_tick().unwrap();
                }
            }
            // Optionally crash an MN halfway through and keep going.
            if do_crash && i == split {
                client.flush_bitmaps().unwrap();
                store.checkpoint_tick().unwrap();
                store.kill_mn(crash_col);
                recover_mn(&store, crash_col).unwrap();
            }
        }
        // Final sweep: every oracle key must be present with its value,
        // from a fresh client (no cache).
        let mut fresh = store.client().unwrap();
        for (k, v) in &oracle {
            let got = fresh.search(k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        store.shutdown();
    }
}
