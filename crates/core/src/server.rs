//! The MN server: coarse-grained management running next to each memory
//! node (paper §3.1).
//!
//! Each MN runs one server handling space allocation, index checkpointing
//! and erasure coding. The paper dedicates four MN CPU cores to RPC
//! serving, erasure coding, checkpoint sending and checkpoint receiving;
//! here one thread executes all four roles but *meters* them separately
//! ([`BusyMeters`]), which is what Table 3 reports.

use crate::ckpt::{CkptReceiver, CkptReport, CkptSender};
use crate::config::{pack_col, unpack_col, MemoryMap};
use crate::proto::{ServerReq, ServerResp};
use aceso_blockalloc::{Allocator, Bitmap, BlockId, BlockRecord, CellKind, Role};
use aceso_index::RemoteIndex;
use aceso_rdma::{DmClient, GlobalAddr, MemoryNode, NodeId, RpcClient, RpcServer};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Column → (physical node, RPC endpoint) map, shared by clients, servers
/// and the recovery orchestrator. Updated when a failed MN is replaced.
pub struct Directory {
    inner: RwLock<Vec<(NodeId, RpcClient<ServerReq, ServerResp>)>>,
}

impl Directory {
    /// Creates a directory over the initial column assignment.
    pub fn new(cols: Vec<(NodeId, RpcClient<ServerReq, ServerResp>)>) -> Self {
        Directory {
            inner: RwLock::new(cols),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Physical node currently serving `col`.
    pub fn node_of(&self, col: usize) -> NodeId {
        self.inner.read()[col].0
    }

    /// RPC endpoint of `col`'s server.
    pub fn rpc_of(&self, col: usize) -> RpcClient<ServerReq, ServerResp> {
        self.inner.read()[col].1.clone()
    }

    /// Replaces a column's node + endpoint (recovery publishing step).
    pub fn replace(&self, col: usize, node: NodeId, rpc: RpcClient<ServerReq, ServerResp>) {
        self.inner.write()[col] = (node, rpc);
    }
}

/// Wall-clock busy time per logical MN core (paper Table 3).
#[derive(Default)]
pub struct BusyMeters {
    /// RPC serving.
    pub rpc_ns: AtomicU64,
    /// Erasure coding.
    pub ec_ns: AtomicU64,
    /// Checkpoint sending.
    pub ckpt_send_ns: AtomicU64,
    /// Checkpoint receiving.
    pub ckpt_recv_ns: AtomicU64,
}

impl BusyMeters {
    fn add(&self, which: &AtomicU64, dur: Duration) {
        which.fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Snapshot of `(rpc, ec, send, recv)` busy nanoseconds.
    pub fn snapshot(&self) -> [u64; 4] {
        [
            self.rpc_ns.load(Ordering::Relaxed),
            self.ec_ns.load(Ordering::Relaxed),
            self.ckpt_send_ns.load(Ordering::Relaxed),
            self.ckpt_recv_ns.load(Ordering::Relaxed),
        ]
    }

    /// Resets all meters.
    pub fn reset(&self) {
        for m in [
            &self.rpc_ns,
            &self.ec_ns,
            &self.ckpt_send_ns,
            &self.ckpt_recv_ns,
        ] {
            m.store(0, Ordering::Relaxed);
        }
    }
}

/// Elastic-migration context installed on a server whose column is being
/// moved to another node. While present, reclamation is suppressed (reuse
/// would mutate blocks behind the copier's back) and every server-side
/// block-area write is applied to *both* regions so neither side goes
/// stale before the final publish.
pub struct MigrationCtx {
    /// The target node the column is moving onto.
    pub target: Arc<MemoryNode>,
    /// Parity primaries have flipped to the target (post-`MigrateParity`):
    /// delta encoding must read parity content from the target.
    pub parity_moved: bool,
}

/// State of one MN server, shared between its thread, the store and the
/// recovery orchestrator.
pub struct MnServer {
    /// The column this server serves.
    pub column: usize,
    /// The physical memory node.
    pub node: Arc<MemoryNode>,
    /// The shared memory map.
    pub map: MemoryMap,
    /// This column's index partition handle.
    pub index: RemoteIndex,
    /// Authoritative in-memory metadata records (mirrored to the Meta Area
    /// and replicated to the right neighbour).
    pub records: Mutex<Vec<BlockRecord>>,
    /// Free lists.
    pub alloc: Mutex<Allocator>,
    /// Local backups of reused blocks, kept until they refill (§3.3.3).
    pub old_copies: Mutex<HashMap<BlockId, Vec<u8>>>,
    /// Checkpoint sender state.
    pub sender: Mutex<CkptSender>,
    /// Checkpoints held for other columns (receiver side).
    pub received: Mutex<HashMap<usize, CkptReceiver>>,
    /// Meta-Area replicas held for other columns.
    pub meta_replicas: Mutex<HashMap<usize, HashMap<BlockId, Vec<u8>>>>,
    /// Logical-core busy meters.
    pub meters: BusyMeters,
    /// Reclamation trigger: obsolete ratio threshold.
    pub reclaim_obsolete: f64,
    /// Reclamation trigger: free ratio threshold.
    pub reclaim_free: f64,
    /// Server liveness (cleared on kill/shutdown).
    pub alive: Arc<AtomicBool>,
    /// In-flight elastic migration of this column, if any.
    pub migration: Mutex<Option<MigrationCtx>>,
}

impl MnServer {
    /// Creates the server state for `column` on `node`.
    pub fn new(
        column: usize,
        node: Arc<MemoryNode>,
        map: MemoryMap,
        reclaim_obsolete: f64,
        reclaim_free: f64,
    ) -> Arc<Self> {
        let blocks = map.blocks.blocks_per_node() as usize;
        let index_bytes = (map.index.num_groups * 384) as usize;
        let s = MnServer {
            column,
            index: RemoteIndex::new(node.id, map.index),
            node,
            map,
            records: Mutex::new(vec![BlockRecord::free(); blocks]),
            alloc: Mutex::new(Allocator::new(map.blocks)),
            old_copies: Mutex::new(HashMap::new()),
            sender: Mutex::new(CkptSender::new(index_bytes)),
            received: Mutex::new(HashMap::new()),
            meta_replicas: Mutex::new(HashMap::new()),
            meters: BusyMeters::default(),
            reclaim_obsolete,
            reclaim_free,
            alive: Arc::new(AtomicBool::new(true)),
            migration: Mutex::new(None),
        };
        // Launch starts every partition at Index Version 1 so that "0"
        // unambiguously means "unfilled block" in records.
        s.index.local_set_index_version(&s.node.region, 1);
        Arc::new(s)
    }

    /// Right-neighbour column (checkpoint + meta replica target).
    pub fn neighbour(&self) -> usize {
        (self.column + 1) % self.map.blocks.n
    }

    /// Installs or clears the elastic-migration context. Called by the
    /// in-process migrator: RPC payloads cannot carry the target region
    /// handle, so it is set out-of-band before the `Migrate*` requests.
    pub fn set_migration(&self, ctx: Option<MigrationCtx>) {
        *self.migration.lock() = ctx;
    }

    /// Applies a block-area write to the local region and, while a
    /// migration is in flight, to the same offset on the target region
    /// (dual-write: neither side may go stale before the publish).
    fn mig_write(&self, off: u64, bytes: &[u8]) {
        self.node.region.write(off, bytes).expect("block write");
        if let Some(ctx) = self.migration.lock().as_ref() {
            ctx.target.region.write(off, bytes).expect("target write");
        }
    }

    /// Like [`mig_write`](Self::mig_write) for zeroing.
    fn mig_zero(&self, off: u64, len: usize) {
        self.node.region.zero(off, len).expect("block zero");
        if let Some(ctx) = self.migration.lock().as_ref() {
            ctx.target.region.zero(off, len).expect("target zero");
        }
    }

    /// Persists a record to the local Meta Area and replicates it to the
    /// next *two* neighbours (the Meta Area's fault tolerance, §3.1 — two
    /// copies are required to match the coding group's two-failure
    /// tolerance).
    fn persist_record(&self, dm: &DmClient, dir: &Directory, id: BlockId) {
        let bytes = self.records.lock()[id as usize].encode();
        self.node
            .region
            .write(self.map.blocks.record_offset(id), &bytes)
            .expect("meta area write");
        let n = self.map.blocks.n;
        for ncol in [(self.column + 1) % n, (self.column + 2) % n] {
            let _ = dm.rpc_cast(
                dir.node_of(ncol),
                &dir.rpc_of(ncol),
                ServerReq::ReplicateRecord {
                    from_column: self.column,
                    block: id,
                    bytes: bytes.clone(),
                },
                aceso_blockalloc::RECORD_BYTES as usize,
            );
        }
    }

    /// Handles one request. `dm` is this server's background fabric client.
    ///
    /// The single server thread plays all four of the paper's MN cores;
    /// time spent in erasure coding or checkpoint work is metered to those
    /// roles and *excluded* from the RPC-serving meter.
    pub fn handle(&self, req: ServerReq, dm: &DmClient, dir: &Directory) -> ServerResp {
        let t0 = Instant::now();
        let mut role_time = Duration::ZERO;
        let resp = match req {
            ServerReq::AllocData { cli_id, slot_len64 } => {
                self.handle_alloc_data(cli_id, slot_len64, dm, dir)
            }
            ServerReq::AllocDelta {
                cli_id,
                slot_len64,
                array,
                row,
                parity_row,
            } => self.handle_alloc_delta(cli_id, slot_len64, array, row, parity_row, dm, dir),
            ServerReq::DataFilled { block } => {
                let iv = self.index.local_index_version(&self.node.region);
                {
                    let mut recs = self.records.lock();
                    let rec = &mut recs[block as usize];
                    rec.index_version = iv;
                }
                self.old_copies.lock().remove(&block);
                self.persist_record(dm, dir, block);
                ServerResp::Ok
            }
            ServerReq::EncodeDelta {
                array,
                row,
                parity_row,
            } => {
                let t = Instant::now();
                let r = self.handle_encode_delta(array, row, parity_row, dm, dir);
                role_time = t.elapsed();
                self.meters.add(&self.meters.ec_ns, role_time);
                r
            }
            ServerReq::BitmapFlush { updates } => self.handle_bitmap_flush(updates, dm, dir),
            ServerReq::GetRecord { block } => ServerResp::Record {
                bytes: self.records.lock()[block as usize].encode(),
            },
            ServerReq::GetOldCopy { block } => ServerResp::OldCopy {
                bytes: self.old_copies.lock().get(&block).cloned(),
            },
            ServerReq::ListDataBlocks => {
                let recs = self.records.lock();
                ServerResp::Records {
                    list: recs
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.role == Role::Data)
                        .map(|(i, r)| (i as BlockId, r.encode()))
                        .collect(),
                }
            }
            ServerReq::QueryClientBlocks { cli_id } => {
                let recs = self.records.lock();
                ServerResp::Records {
                    list: recs
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| {
                            r.cli_id == cli_id
                                && r.index_version == 0
                                && matches!(r.role, Role::Data | Role::Delta)
                        })
                        .map(|(i, r)| (i as BlockId, r.encode()))
                        .collect(),
                }
            }
            ServerReq::CkptRound => {
                let t = Instant::now();
                let r = self.checkpoint_round(dm, dir);
                role_time = t.elapsed();
                self.meters.add(&self.meters.ckpt_send_ns, role_time);
                match r {
                    Ok(report) => ServerResp::CkptDone { report },
                    Err(e) => ServerResp::Err(e),
                }
            }
            ServerReq::CkptDelta {
                from_column,
                compressed,
                raw_len,
                index_version,
            } => {
                let t = Instant::now();
                let mut recv = self.received.lock();
                let rx = recv
                    .entry(from_column)
                    .or_insert_with(|| CkptReceiver::new(raw_len));
                let r = rx.apply(&compressed, raw_len, index_version);
                role_time = t.elapsed();
                self.meters.add(&self.meters.ckpt_recv_ns, role_time);
                match r {
                    Ok((decompress_us, xor_us)) => ServerResp::CkptApplied {
                        decompress_us,
                        xor_us,
                    },
                    Err(e) => ServerResp::Err(format!("ckpt delta: {e}")),
                }
            }
            ServerReq::ReplicateRecord {
                from_column,
                block,
                bytes,
            } => {
                self.meta_replicas
                    .lock()
                    .entry(from_column)
                    .or_default()
                    .insert(block, bytes);
                ServerResp::Ok
            }
            ServerReq::GetMetaReplica { of_column } => ServerResp::MetaReplica {
                records: self
                    .meta_replicas
                    .lock()
                    .get(&of_column)
                    .map(|m| m.iter().map(|(k, v)| (*k, v.clone())).collect())
                    .unwrap_or_default(),
            },
            ServerReq::GetCheckpoint { of_column } => {
                let recv = self.received.lock();
                match recv.get(&of_column) {
                    Some(rx) => ServerResp::Checkpoint {
                        data: rx.data.clone(),
                        index_version: rx.index_version,
                    },
                    None => ServerResp::Err(format!("no checkpoint for column {of_column}")),
                }
            }
            ServerReq::ResetReplication => {
                self.sender.lock().reset_to_full();
                let ids: Vec<BlockId> = (0..self.records.lock().len() as BlockId).collect();
                for id in ids {
                    self.persist_record(dm, dir, id);
                }
                ServerResp::Ok
            }
            ServerReq::MigrateBatch { ranges } => self.handle_migrate_batch(&ranges),
            ServerReq::MigrateParity => {
                let t = Instant::now();
                let r = self.handle_migrate_parity(dm, dir);
                role_time = t.elapsed();
                self.meters.add(&self.meters.ec_ns, role_time);
                r
            }
            ServerReq::MigrateFinish => self.handle_migrate_finish(),
        };
        self.meters
            .add(&self.meters.rpc_ns, t0.elapsed().saturating_sub(role_time));
        resp
    }

    fn handle_alloc_data(
        &self,
        cli_id: u32,
        slot_len64: u8,
        dm: &DmClient,
        dir: &Directory,
    ) -> ServerResp {
        if slot_len64 == 0 {
            return ServerResp::Err("size class 0".into());
        }
        let slots = (self.map.blocks.block_size / (slot_len64 as u64 * 64)) as usize;
        if slots == 0 || slots > aceso_blockalloc::record::MAX_SLOTS {
            return ServerResp::Err(format!("unsupported size class {slot_len64}"));
        }
        // Pull an allocation; skip reuse candidates of a different class.
        let picked = {
            let mut alloc = self.alloc.lock();
            let mut tries = alloc.reuse_count() + 1;
            loop {
                match alloc.alloc_data() {
                    None => break None,
                    Some(d) if !d.reused => break Some(d),
                    Some(d) => {
                        let recs = self.records.lock();
                        if recs[d.id as usize].slot_len64 == slot_len64 {
                            break Some(d);
                        }
                        alloc.push_reuse_candidate(d.id);
                        tries -= 1;
                        if tries == 0 {
                            break None;
                        }
                    }
                }
            }
        };
        let Some(d) = picked else {
            return ServerResp::Err("out of data blocks".into());
        };
        let CellKind::Data { array, row } = self.map.blocks.kind_of(d.id) else {
            unreachable!("allocator returned a non-data block");
        };
        let old_bitmap = if d.reused {
            // Back up the whole old block locally in case the client fails
            // mid-overwrite (§3.3.3 / §3.4.2).
            let bytes = self
                .node
                .region
                .read_vec(
                    self.map.blocks.block_offset(d.id),
                    self.map.blocks.block_size as usize,
                )
                .expect("block read");
            self.old_copies.lock().insert(d.id, bytes);
            let mut recs = self.records.lock();
            let rec = &mut recs[d.id as usize];
            let old = rec.bitmap.as_bytes().to_vec();
            rec.bitmap.clear();
            rec.index_version = 0;
            rec.cli_id = cli_id;
            Some(old)
        } else {
            let mut recs = self.records.lock();
            let rec = &mut recs[d.id as usize];
            rec.role = Role::Data;
            rec.valid = true;
            rec.xor_id = row as u8;
            rec.slot_len64 = slot_len64;
            rec.cli_id = cli_id;
            rec.index_version = 0;
            rec.stripe_array = array;
            rec.bitmap = Bitmap::new(slots);
            None
        };
        self.persist_record(dm, dir, d.id);
        ServerResp::DataAllocated {
            block: d.id,
            array,
            row,
            reused: d.reused,
            old_bitmap,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_alloc_delta(
        &self,
        cli_id: u32,
        slot_len64: u8,
        array: u64,
        row: usize,
        parity_row: usize,
        dm: &DmClient,
        dir: &Directory,
    ) -> ServerResp {
        let Some(id) = self.alloc.lock().alloc_delta() else {
            return ServerResp::Err("out of delta blocks".into());
        };
        // Delta blocks must start zeroed (they accumulate XOR images).
        self.mig_zero(
            self.map.blocks.block_offset(id),
            self.map.blocks.block_size as usize,
        );
        let pid = self.map.blocks.cell_block_id(array, parity_row);
        {
            let mut recs = self.records.lock();
            let rec = &mut recs[id as usize];
            rec.role = Role::Delta;
            rec.valid = true;
            rec.xor_id = row as u8;
            rec.slot_len64 = slot_len64;
            rec.cli_id = cli_id;
            rec.stripe_array = array;
            let prec = &mut recs[pid as usize];
            if prec.role == Role::Free {
                prec.role = Role::Parity;
                prec.valid = true;
                prec.xor_id = parity_row as u8;
                prec.stripe_array = array;
            }
            prec.delta_addr[row] = pack_col(self.column, self.map.blocks.block_offset(id));
        }
        self.persist_record(dm, dir, id);
        self.persist_record(dm, dir, pid);
        ServerResp::DeltaAllocated { block: id }
    }

    fn handle_encode_delta(
        &self,
        array: u64,
        row: usize,
        parity_row: usize,
        dm: &DmClient,
        dir: &Directory,
    ) -> ServerResp {
        let pid = self.map.blocks.cell_block_id(array, parity_row);
        let daddr = {
            let recs = self.records.lock();
            recs[pid as usize].delta_addr[row]
        };
        if daddr == 0 {
            return ServerResp::Ok; // Already encoded (idempotent under retries).
        }
        let (dcol, doff) = unpack_col(daddr);
        debug_assert_eq!(
            dcol, self.column,
            "delta must be local to the parity holder"
        );
        let bs = self.map.blocks.block_size as usize;
        let delta = self.node.region.read_vec(doff, bs).expect("delta read");
        let poff = self.map.blocks.block_offset(pid);
        // During a migration the parity primary may already live on the
        // target node (post-`MigrateParity`); read content from wherever
        // clients currently read it, write the result to both sides.
        let parity_src = {
            let g = self.migration.lock();
            match g.as_ref() {
                Some(ctx) if ctx.parity_moved => Arc::clone(&ctx.target),
                _ => Arc::clone(&self.node),
            }
        };
        let mut parity = parity_src.region.read_vec(poff, bs).expect("parity read");
        aceso_erasure::XCode::fold_delta(&mut parity, &delta).expect("delta length");
        self.mig_write(poff, &parity);

        let delta_id = self.map.blocks.locate(doff).expect("delta offset").0;
        {
            let mut recs = self.records.lock();
            let prec = &mut recs[pid as usize];
            prec.xor_map |= 1 << row;
            prec.delta_addr[row] = 0;
            let drec = &mut recs[delta_id as usize];
            *drec = BlockRecord::free();
        }
        // Physically free the delta (zero so a future reuse starts clean).
        self.mig_zero(doff, bs);
        self.alloc.lock().free_delta(delta_id);
        self.persist_record(dm, dir, pid);
        self.persist_record(dm, dir, delta_id);
        ServerResp::Ok
    }

    fn handle_bitmap_flush(
        &self,
        updates: Vec<(BlockId, Vec<u32>)>,
        dm: &DmClient,
        dir: &Directory,
    ) -> ServerResp {
        let mut touched = Vec::new();
        {
            let mut recs = self.records.lock();
            for (block, slots) in updates {
                let Some(rec) = recs.get_mut(block as usize) else {
                    continue;
                };
                if rec.role != Role::Data {
                    continue;
                }
                for s in slots {
                    if (s as usize) < rec.bitmap.len() {
                        rec.bitmap.set(s as usize, true);
                    }
                }
                touched.push(block);
            }
        }
        // Reclamation trigger (§3.3.3): obsolete ratio over threshold AND
        // free space below threshold.
        let free_ratio = self.alloc.lock().free_data_ratio();
        for block in &touched {
            let (ratio_ok, filled) = {
                let recs = self.records.lock();
                let rec = &recs[*block as usize];
                let slots = rec.slots(self.map.blocks.block_size).max(1);
                (
                    rec.bitmap.count_ones() as f64 / slots as f64 >= self.reclaim_obsolete,
                    rec.index_version != 0,
                )
            };
            // Reuse is suppressed while the column migrates: reclamation
            // rewrites block contents behind the copier's back and the
            // target would resurrect the pre-reuse bytes.
            if ratio_ok && filled && free_ratio < self.reclaim_free && self.migration.lock().is_none()
            {
                self.alloc.lock().push_reuse_candidate(*block);
            }
            self.persist_record(dm, dir, *block);
        }
        ServerResp::Ok
    }

    /// Copies block-area byte ranges onto the migration target. Running in
    /// the server thread serializes the copy against every other
    /// server-side mutation; concurrent *client* writes are excluded by
    /// the epoch fences the migrator installs first.
    fn handle_migrate_batch(&self, ranges: &[(u64, usize)]) -> ServerResp {
        let g = self.migration.lock();
        let Some(ctx) = g.as_ref() else {
            return ServerResp::Err("no migration in progress".into());
        };
        for &(off, len) in ranges {
            let bytes = self.node.region.read_vec(off, len).expect("source read");
            ctx.target.region.write(off, &bytes).expect("target write");
        }
        ServerResp::Ok
    }

    /// Moves this column's PARITY cells onto the migration target.
    ///
    /// A stripe with no registered delta is *quiescent* — every covered
    /// data cell is either encoded-and-immutable or untouched zeros — so
    /// its parity is re-encoded from the live data cells via
    /// [`aceso_erasure::XCode::reencode_cell`]. Busy stripes (a delta is
    /// registered, so a client holds the cell open or is overwriting a
    /// reused block) are byte-copied: the maintained parity is
    /// authoritative there. Afterwards parity primaries are flipped to the
    /// target: clients read parity there and
    /// [`EncodeDelta`](ServerReq::EncodeDelta) folds into it.
    fn handle_migrate_parity(&self, dm: &DmClient, dir: &Directory) -> ServerResp {
        let target = {
            let g = self.migration.lock();
            match g.as_ref() {
                Some(ctx) => Arc::clone(&ctx.target),
                None => return ServerResp::Err("no migration in progress".into()),
            }
        };
        let n = self.map.blocks.n;
        let bs = self.map.blocks.block_size as usize;
        let xcode = aceso_erasure::XCode::new(n).expect("prime n");
        for array in 0..self.map.blocks.num_arrays {
            for prow in [n - 2, n - 1] {
                let pid = self.map.blocks.cell_block_id(array, prow);
                let poff = self.map.blocks.block_offset(pid);
                let (allocated, quiescent) = {
                    let recs = self.records.lock();
                    let rec = &recs[pid as usize];
                    (
                        rec.role == Role::Parity,
                        (0..n - 2).all(|r| rec.delta_addr[r] == 0),
                    )
                };
                if allocated && quiescent {
                    let fetch = |r: usize, c: usize| -> Option<Vec<u8>> {
                        let off = self.map.blocks.block_offset(self.map.blocks.cell_block_id(array, r));
                        if c == self.column {
                            self.node.region.read_vec(off, bs).ok()
                        } else {
                            dm.read_vec(GlobalAddr::new(dir.node_of(c), off), bs).ok()
                        }
                    };
                    if let Ok(bytes) = xcode.reencode_cell(prow, self.column, fetch) {
                        target.region.write(poff, &bytes).expect("parity write");
                        continue;
                    }
                }
                let bytes = self.node.region.read_vec(poff, bs).expect("parity read");
                target.region.write(poff, &bytes).expect("parity write");
            }
        }
        if let Some(ctx) = self.migration.lock().as_mut() {
            ctx.parity_moved = true;
        }
        ServerResp::Ok
    }

    /// Copies the Index + Meta areas onto the migration target and stops
    /// serving. The migrator then clones the in-memory server state onto a
    /// fresh [`MnServer`] for the target and republishes the column; stale
    /// clients fail their next verb against the whole-region fence and
    /// re-resolve.
    fn handle_migrate_finish(&self) -> ServerResp {
        {
            let g = self.migration.lock();
            let Some(ctx) = g.as_ref() else {
                return ServerResp::Err("no migration in progress".into());
            };
            let len = self.map.blocks.block_base as usize;
            let bytes = self.node.region.read_vec(0, len).expect("index+meta read");
            ctx.target.region.write(0, &bytes).expect("index+meta write");
        }
        self.alive.store(false, Ordering::Release);
        ServerResp::Ok
    }

    fn checkpoint_round(&self, dm: &DmClient, dir: &Directory) -> Result<CkptReport, String> {
        let snapshot = self.index.snapshot(&self.node.region);
        let iv = self.index.local_index_version(&self.node.region);
        let (compressed, raw_len, copy_xor_us, compress_us) = self.sender.lock().round(snapshot);
        let compressed_len = compressed.len();
        let ncol = self.neighbour();
        let resp = dm
            .rpc(
                dir.node_of(ncol),
                &dir.rpc_of(ncol),
                ServerReq::CkptDelta {
                    from_column: self.column,
                    compressed,
                    raw_len,
                    index_version: iv,
                },
                compressed_len,
            )
            .map_err(|e| format!("ckpt send: {e}"))?;
        let (decompress_us, apply_xor_us) = match resp {
            ServerResp::CkptApplied {
                decompress_us,
                xor_us,
            } => (decompress_us, xor_us),
            other => return Err(format!("ckpt send: unexpected {other:?}")),
        };
        self.index
            .local_set_index_version(&self.node.region, iv + 1);
        Ok(CkptReport {
            raw_len,
            compressed_len,
            copy_xor_us,
            compress_us,
            decompress_us,
            apply_xor_us,
            index_version: iv,
        })
    }

    /// The server thread body: serve RPCs until killed or shut down.
    pub fn run(
        self: Arc<Self>,
        rpc: RpcServer<ServerReq, ServerResp>,
        dm: DmClient,
        dir: Arc<Directory>,
    ) {
        while self.alive.load(Ordering::Acquire) && self.node.is_alive() {
            match rpc.recv_timeout(Duration::from_millis(20)) {
                Ok(env) => {
                    let (req, responder) = env.into_parts();
                    let resp = self.handle(req, &dm, &dir);
                    responder.send(resp);
                }
                Err(aceso_rdma::RdmaError::RpcTimeout) => continue,
                Err(_) => break,
            }
        }
    }
}
